"""Setup shim.

This environment has no ``wheel`` package, so ``pip install -e .`` cannot
use the PEP-517 editable path (it needs ``bdist_wheel``).  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy ``setup.py develop`` flow.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
