"""Packaging metadata.

This environment has no ``wheel`` package, so ``pip install -e .`` cannot
use the PEP-517 editable path (it needs ``bdist_wheel``).  Install with
``pip install -e . --no-use-pep517 --no-build-isolation`` to fall back to
the legacy ``setup.py develop`` flow, or just export ``PYTHONPATH=src``.
"""

from pathlib import Path

from setuptools import find_packages, setup

_readme = Path(__file__).with_name("README.md")

setup(
    name="repro-workflow-provenance-agents",
    version="0.1.0",
    description=(
        "Reproduction of 'LLM Agents for Interactive Workflow Provenance: "
        "Reference Architecture and Evaluation Methodology' (SC Workshops '25)"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["provlint=repro.analysis.__main__:main"],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
