"""Live interaction with the chemistry BDE workflow (paper §5.3).

Runs ethanol's bond-dissociation-energy workflow on simulated Frontier
nodes, then replays the paper's ten queries Q1-Q10 against the agent and
prints each answer, the generated query code, and whether the outcome
matches the paper's verdict.

Run:  python examples/chemistry_bde_interaction.py
"""

from repro.evaluation.live_demo import run_live_demo


def main() -> None:
    print("running the BDE workflow for ethanol (CCO) ...\n")
    demo = run_live_demo(model="gpt-4", smiles="CCO")

    report = demo.report
    print(f"parent: {report.parent_formula}  ({report.parent_n_atoms} atoms, "
          f"charge {report.parent_charge}, multiplicity {report.parent_multiplicity})")
    print(f"functional: {report.functional}/{report.basis_set}")
    print(f"tasks captured: {report.n_tasks}")
    print("\nper-bond energetics (kcal/mol):")
    for b in report.bonds:
        print(
            f"  {b.bond_id:8s} E={b.bd_energy:7.2f}  H={b.bd_enthalpy:7.2f}  "
            f"G={b.bd_free_energy:7.2f}   ({b.fragment1_formula} + {b.fragment2_formula})"
        )
    print("\n" + "=" * 72)

    for o in demo.outcomes:
        verdict = "correct" if o.correct else "INCORRECT"
        agree = "matches paper" if o.matches_paper else "DIFFERS from paper"
        print(f"\n{o.qid}: {o.nl}")
        print(f"  -> {verdict} ({agree}; paper: {o.paper_outcome})")
        if o.reply.code:
            print(f"  query: {o.reply.code}")
        print(f"  agent: {o.reply.text[:160]}")
        if o.reply.chart and o.qid == "Q7":
            print(o.reply.chart)

    print("\n" + "=" * 72)
    print(
        f"accuracy: {demo.accuracy():.0%} fully/partially correct "
        f"(paper: over 80%); outcome agreement with paper: "
        f"{demo.paper_agreement():.0%}"
    )


if __name__ == "__main__":
    main()
