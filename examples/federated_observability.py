"""Federated hubs + non-intrusive observability adapters (paper §2.3).

Simulates an Edge-Cloud-HPC deployment: a Mofka-like broker inside the
HPC fabric, a Redis-like broker for edge services, federated behind one
facade; provenance arrives both from instrumented code (HPC side) and
from passive adapters watching a SQLite results file and an MLflow-style
run log (edge side) — no application changes.

Run:  python examples/federated_observability.py
"""

import json
import sqlite3
import tempfile
from pathlib import Path

from repro.agent.agent import ProvenanceAgent
from repro.capture.adapters.mlflow_like import MLFlowLikeAdapter
from repro.capture.adapters.sqlite import SQLiteAdapter
from repro.capture.context import CaptureContext
from repro.capture.instrumentation import flow_task
from repro.messaging.broker import InProcessBroker, MOFKA_LIKE, REDIS_LIKE
from repro.messaging.federation import FederatedHub
from repro.provenance.keeper import ProvenanceKeeper


def main() -> None:
    # --- federated streaming hub -----------------------------------------
    edge_broker = InProcessBroker(profile=REDIS_LIKE)
    hpc_broker = InProcessBroker(profile=MOFKA_LIKE)
    hub = FederatedHub(default=edge_broker)
    hub.add_route("provenance", hpc_broker)  # provenance.* -> HPC fabric

    ctx = CaptureContext(broker=hub, hostname="frontier01024")
    keeper = ProvenanceKeeper(hub)
    keeper.start()
    agent = ProvenanceAgent(ctx, model="gpt-4")

    # --- HPC side: instrumented simulation steps --------------------------
    @flow_task("simulate_timestep")
    def simulate(step: int):
        return {"residual": 1.0 / (step + 1), "step": step}

    for step in range(12):
        simulate(step, _ctx=ctx)
    ctx.flush()

    # --- edge side: passive observability ---------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "results.db"
        con = sqlite3.connect(db_path)
        con.execute("CREATE TABLE measurements (sensor TEXT, reading REAL)")
        con.executemany(
            "INSERT INTO measurements VALUES (?, ?)",
            [("beamline-1", 0.93), ("beamline-1", 0.95), ("beamline-2", 0.41)],
        )
        con.commit()
        con.close()

        log_path = Path(tmp) / "runs.jsonl"
        log_path.write_text(
            "\n".join(
                json.dumps(
                    {"run_id": f"r{i}", "params": {"lr": 0.01 * (i + 1)},
                     "metrics": {"loss": 1.0 / (i + 1)}}
                )
                for i in range(3)
            )
        )

        sqlite_adapter = SQLiteAdapter(db_path, "measurements", ctx)
        mlflow_adapter = MLFlowLikeAdapter(log_path, ctx)
        print(f"sqlite adapter observed: {sqlite_adapter.poll()} rows")
        print(f"mlflow adapter observed: {mlflow_adapter.poll()} runs")

    print(f"\nHPC broker published:  {hpc_broker.published_count} messages "
          f"(simulated cost {hpc_broker.simulated_cost_s * 1e3:.2f} ms)")
    print(f"edge broker published: {edge_broker.published_count} messages")
    print(f"keeper persisted:      {len(keeper.database)} records")

    # --- one agent over everything ----------------------------------------
    for question in (
        "How many tasks were executed per activity?",
        "What is the minimum residual reached?",
    ):
        reply = agent.chat(question)
        print(f"\nyou>   {question}")
        print(f"agent> {reply.text}")
        if reply.table is not None and len(reply.table) <= 8:
            print(reply.table.to_string())


if __name__ == "__main__":
    main()
