"""Full §5.2 evaluation campaign: every table and figure, paper-vs-measured.

Runs the synthetic campaign (100 inputs), sweeps five models x seven
configurations x twenty queries x three repetitions, judges each answer
with two LLM judges, and prints the data behind Table 1, Figure 6,
Figure 7, Figure 8, Figure 9, and the response-time analysis.

Run:  python examples/evaluation_campaign.py
"""

from repro.agent.context_manager import ContextManager
from repro.capture.context import CaptureContext
from repro.evaluation.configs import FIGURE8_ORDER
from repro.evaluation.query_set import build_query_set
from repro.evaluation.reporting import (
    fig6_judge_comparison,
    fig7_per_class,
    fig8_context_vs_tokens,
    fig9_datatype_impact,
    response_time_table,
    table1_distribution,
)
from repro.evaluation.runner import ExperimentRunner
from repro.llm.profiles import MODEL_ORDER, get_profile
from repro.viz.ascii import boxplot_rows, scatter, series_table
from repro.workflows.synthetic import run_synthetic_campaign

JUDGES = ("gpt-judge", "claude-judge")


def main() -> None:
    print("running synthetic campaign (100 inputs) ...")
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    run_synthetic_campaign(ctx, n_inputs=100)
    queries = build_query_set(cm.to_frame())
    runner = ExperimentRunner(cm, queries)

    # ---------------- Table 1 ----------------
    print("\nTable 1 — query distribution (paper: CF 4/3, DF 3/4, SC 3/5, TE 4/5)")
    print(series_table(table1_distribution(queries), ["data_type", "olap", "oltp", "total"]))

    # ---------------- Figures 6/7 (Full config, all models) ----------------
    print("\nsweeping 5 models x Full config x 20 queries x 3 reps ...")
    full_records = runner.run(models=MODEL_ORDER, configs=["Full"], n_reps=3)

    cmp = fig6_judge_comparison(full_records, JUDGES)
    rows = [
        {
            "model": get_profile(m).display_name,
            "GPT judge": round(cmp[m]["gpt-judge"], 3),
            "Claude judge": round(cmp[m]["claude-judge"], 3),
        }
        for m in MODEL_ORDER
    ]
    print("\nFigure 6 — two judges (paper: GPT judge gpt 0.972 / claude 0.970; "
          "Claude judge claude 0.94 / gpt 0.91)")
    print(series_table(rows, ["model", "GPT judge", "Claude judge"]))

    per_class = fig7_per_class(full_records, queries, JUDGES)
    print("\nFigure 7 — per-class score distributions (GPT judge)")
    for workload in ("OLTP", "OLAP"):
        groups = {}
        for dtype in ("Control Flow", "Dataflow", "Scheduling", "Telemetry"):
            vals = []
            for (j, w, _m, d), scores in per_class.items():
                if j == "gpt-judge" and w == workload and d == dtype:
                    vals.extend(scores)
            groups[dtype] = vals
        print(f"-- {workload} --")
        print(boxplot_rows(groups))

    # ---------------- Figures 8/9 (GPT across configs) ----------------
    print("\nsweeping GPT x 6 configurations ...")
    gpt_records = runner.run(models=["gpt-4"], configs=FIGURE8_ORDER, n_reps=3)

    f8 = fig8_context_vs_tokens(gpt_records, judge="gpt-judge", configs=FIGURE8_ORDER)
    print("\nFigure 8 — context vs performance/tokens "
          "(paper: 0.06 -> 0.97, 293 -> 4300 tokens)")
    print(series_table(
        [
            {
                "config": r["config"],
                "score": round(r["mean_score"], 3),
                "tokens": round(r["mean_tokens"]),
            }
            for r in f8
        ],
        ["config", "score", "tokens"],
    ))
    print(scatter(
        [r["mean_tokens"] for r in f8],
        [r["mean_score"] for r in f8],
        labels=[r["config"] for r in f8],
    ))

    f9 = fig9_datatype_impact(gpt_records, queries, judge="gpt-judge", configs=FIGURE8_ORDER)
    print("\nFigure 9 — context impact per data type")
    dts = ("Control Flow", "Dataflow", "Scheduling", "Telemetry")
    print(series_table(
        [{"config": c, **{d: round(f9[c].get(d, 0.0), 2) for d in dts}} for c in FIGURE8_ORDER],
        ["config", *dts],
    ))

    # ---------------- Response times ----------------
    rt = response_time_table(full_records, queries)
    print("\nResponse times (paper: ~2 s interactive bound)")
    print(series_table(
        [
            {
                "model": r["model"],
                "workload": r["workload"],
                "mean_s": round(r["mean_latency_s"], 2),
            }
            for r in rt
        ],
        ["model", "workload", "mean_s"],
    ))


if __name__ == "__main__":
    main()
