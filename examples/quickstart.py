"""Quickstart: instrument a function, stream provenance, chat with the agent.

Run:  python examples/quickstart.py
"""

from repro.agent.agent import ProvenanceAgent
from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI


def main() -> None:
    # 1. a capture context: broker + buffering + clock + telemetry
    ctx = CaptureContext(hostname="laptop-0")

    # 2. a keeper persisting everything the hub sees
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()

    # 3. the provenance agent, watching the same hub
    agent = ProvenanceAgent(ctx, model="gpt-4", query_api=QueryAPI(keeper.database))

    # 4. instrument ordinary functions with one decorator
    @flow_task()
    def prepare(n: int):
        return {"values": list(range(n)), "n": n}

    @flow_task()
    def reduce_sum(n: int):
        return {"total": n * (n - 1) // 2}

    with WorkflowRun("quickstart_workflow", ctx):
        for n in (10, 20, 30):
            prepare(n, _ctx=ctx)
            reduce_sum(n, _ctx=ctx)
    ctx.flush()

    print(f"tasks persisted: {keeper.database.count({'type': 'task'})}")
    print(f"schema fields:   {agent.context_manager.schema.dataflow_fields}")
    print()

    # 5. talk to your provenance
    for question in (
        "hello!",
        "How many tasks have finished?",
        "What is the average duration per activity?",
    ):
        reply = agent.chat(question)
        print(f"you>   {question}")
        print(f"agent> {reply.text}")
        if reply.code:
            print(f"       [query: {reply.code}]")
        if reply.table is not None:
            print(reply.table.to_string())
        print()


if __name__ == "__main__":
    main()
