"""Interactive provenance chat REPL — the terminal analog of the paper's GUI.

Starts a background campaign (synthetic or chemistry), then drops you
into a chat loop with the provenance agent.  Shows the generated query
code with every answer, exactly like the paper's Streamlit interface.

Run:  python examples/agent_repl.py [--chemistry] [--model MODEL]
"""

from __future__ import annotations

import argparse
import sys

from repro.agent.agent import ProvenanceAgent
from repro.capture.context import CaptureContext
from repro.llm.profiles import MODEL_ORDER
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI

BANNER = """\
provenance agent — ask about running/completed tasks, their data,
telemetry, and placement. Examples:
  How many tasks have finished?
  What is the average duration per activity?
  Plot a bar graph of the average duration per activity.
  use the field <name> to ...        (adds a session guideline)
Type 'quit' to exit.
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chemistry", action="store_true",
                        help="run the ethanol BDE workflow instead of the synthetic campaign")
    parser.add_argument("--model", default="gpt-4", choices=MODEL_ORDER)
    args = parser.parse_args(argv)

    ctx = CaptureContext(hostname="workstation-0")
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    agent = ProvenanceAgent(ctx, model=args.model, query_api=QueryAPI(keeper.database))

    if args.chemistry:
        from repro.evaluation.live_demo import register_demo_intents
        from repro.workflows.chemistry import run_bde_workflow

        register_demo_intents()
        print("running the ethanol BDE workflow ...")
        run_bde_workflow("CCO", ctx, n_conformers=2)
    else:
        from repro.workflows.synthetic import run_synthetic_campaign

        print("running 25 synthetic workflow instances ...")
        run_synthetic_campaign(ctx, n_inputs=25)

    print(f"\n{keeper.database.count({'type': 'task'})} tasks captured; "
          f"model = {args.model}\n")
    print(BANNER)

    while True:
        try:
            line = input("you> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line.lower() in ("quit", "exit", "q"):
            return 0
        reply = agent.chat(line)
        print(f"agent> {reply.text}")
        if reply.code:
            print(f"query> {reply.code}")
        if reply.error:
            print(f"error> {reply.error}")
        if reply.table is not None and len(reply.table) <= 15:
            print(reply.table.to_string())
        if reply.chart:
            print(reply.chart)
        print()


if __name__ == "__main__":
    sys.exit(main())
