"""Tests for deterministic seed derivation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.seeding import derive_rng, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_parts_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_part_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_int_vs_string_distinct(self):
        assert stable_hash(1) != stable_hash("1")

    def test_none_is_hashable_part(self):
        assert stable_hash(None) == stable_hash(None)

    def test_returns_64_bit_unsigned(self):
        h = stable_hash("x")
        assert 0 <= h < 2**64


class TestDeriveRng:
    def test_same_coordinates_same_stream(self):
        a = derive_rng("llm", "gpt-4", "q01", 0)
        b = derive_rng("llm", "gpt-4", "q01", 0)
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_rep_different_stream(self):
        a = derive_rng("llm", "gpt-4", "q01", 0)
        b = derive_rng("llm", "gpt-4", "q01", 1)
        assert a.random(5).tolist() != b.random(5).tolist()

    def test_seed_differs_from_hash_domain(self):
        # derive_seed namespaces under "repro-seed"
        assert derive_seed("x") != stable_hash("x")

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=4))
    def test_property_reproducible_for_any_parts(self, parts):
        assert derive_seed(*parts) == derive_seed(*parts)
