"""Tests for the clock abstraction."""

from __future__ import annotations

import threading

import pytest

from repro.utils.clock import SystemClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_given_epoch(self):
        c = VirtualClock(start=100.0)
        assert c.now() == 100.0

    def test_sleep_advances(self):
        c = VirtualClock(start=0.0)
        c.sleep(2.5)
        assert c.now() == 2.5

    def test_advance_returns_new_time(self):
        c = VirtualClock(start=10.0)
        assert c.advance(5.0) == 15.0

    def test_negative_advance_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance(-1.0)

    def test_thread_safe_advance(self):
        c = VirtualClock(start=0.0)

        def work():
            for _ in range(1000):
                c.advance(0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert abs(c.now() - 4.0) < 1e-6

    def test_default_epoch_matches_paper_listing(self):
        # Listing 1 timestamps are around 1753457858.95
        c = VirtualClock()
        assert 1.75e9 < c.now() < 1.76e9


class TestSystemClock:
    def test_now_monotone_nondecreasing(self):
        c = SystemClock()
        a = c.now()
        b = c.now()
        assert b >= a

    def test_zero_sleep_is_noop(self):
        SystemClock().sleep(0)  # must not raise
