"""Tests for identifier generation."""

from __future__ import annotations

import uuid

from repro.utils.ids import new_campaign_id, new_task_id, new_workflow_id


class TestUuidLikeIds:
    def test_random_ids_are_valid_uuid4(self):
        u = uuid.UUID(new_campaign_id())
        assert u.version == 4

    def test_seeded_ids_are_deterministic(self):
        assert new_workflow_id("bench", 1) == new_workflow_id("bench", 1)

    def test_seeded_ids_differ_by_seed(self):
        assert new_workflow_id("bench", 1) != new_workflow_id("bench", 2)

    def test_campaign_and_workflow_streams_are_distinct(self):
        assert new_campaign_id("s", 1) != new_workflow_id("s", 1)

    def test_seeded_id_is_valid_uuid(self):
        u = uuid.UUID(new_campaign_id("x"))
        assert u.version == 4


class TestTaskIds:
    def test_matches_paper_format(self):
        tid = new_task_id(1753457858.952133, 0, 3, 973)
        assert tid == "1753457858.952133_0_3_973"

    def test_no_discriminators(self):
        assert new_task_id(12.5) == "12.5"

    def test_integral_timestamp_keeps_decimal(self):
        tid = new_task_id(100.0, 1)
        assert tid.startswith("100.0_")
