"""Shared evaluation fixtures: a small campaign + the golden query set.

Module-scoped to keep the evaluation test suite fast: the campaign and
query-set construction are deterministic, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro.agent.context_manager import ContextManager
from repro.capture.context import CaptureContext
from repro.evaluation.query_set import build_query_set
from repro.evaluation.runner import ExperimentRunner
from repro.workflows.synthetic import run_synthetic_campaign


@pytest.fixture(scope="package")
def eval_env():
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    run_synthetic_campaign(ctx, n_inputs=10)
    queries = build_query_set(cm.to_frame())
    runner = ExperimentRunner(cm, queries)
    return ctx, cm, queries, runner
