"""Tests for the experiment runner and figure aggregation.

These assert the *reproduction targets* from DESIGN.md: orderings and
shapes of every figure, produced mechanically by the pipeline.
"""

from __future__ import annotations

import pytest

from repro.evaluation.configs import CONFIGURATIONS, FIGURE8_ORDER
from repro.evaluation.reporting import (
    fig6_judge_comparison,
    fig8_context_vs_tokens,
    fig9_datatype_impact,
    response_time_table,
    table1_distribution,
)
from repro.evaluation.runner import median_by


@pytest.fixture(scope="module")
def gpt_sweep(eval_env):
    _, _, _, runner = eval_env
    return runner.run(models=["gpt-4"], configs=FIGURE8_ORDER, n_reps=3)


@pytest.fixture(scope="module")
def full_all_models(eval_env):
    _, _, _, runner = eval_env
    return runner.run(
        models=[
            "llama3-8b",
            "llama3-70b",
            "gemini-2.5-flash-lite",
            "gpt-4",
            "claude-opus-4",
        ],
        configs=["Full"],
        n_reps=3,
    )


class TestRunnerMechanics:
    def test_record_count(self, gpt_sweep):
        assert len(gpt_sweep) == 6 * 20 * 3  # configs x queries x reps

    def test_determinism(self, eval_env):
        _, _, _, runner = eval_env
        a = runner.run(models=["gpt-4"], configs=["Full"], n_reps=1)
        b = runner.run(models=["gpt-4"], configs=["Full"], n_reps=1)
        assert [r.generated_code for r in a] == [r.generated_code for r in b]

    def test_median_by(self, gpt_sweep):
        med = median_by(gpt_sweep, judge="gpt-judge")
        assert len(med) == 6 * 20


class TestTable1:
    def test_rows_match_paper(self, eval_env):
        _, _, queries, _ = eval_env
        rows = {r["data_type"]: r for r in table1_distribution(queries)}
        assert rows["Control Flow"]["olap"] == 4
        assert rows["Control Flow"]["oltp"] == 3
        assert rows["Dataflow"]["total"] == 7
        assert rows["Scheduling"]["total"] == 8
        assert rows["Telemetry"]["total"] == 9


class TestFigure8Shape:
    def test_scores_rise_from_baseline_to_full(self, gpt_sweep):
        rows = fig8_context_vs_tokens(
            gpt_sweep, judge="gpt-judge", configs=FIGURE8_ORDER
        )
        by = {r["config"]: r for r in rows}
        assert by["Baseline"]["mean_score"] < 0.25
        assert by["Full"]["mean_score"] > 0.9
        assert (
            by["Baseline"]["mean_score"]
            < by["Baseline+FS"]["mean_score"]
            < by["Baseline+FS+Schema"]["mean_score"]
            <= by["Full"]["mean_score"]
        )

    def test_guidelines_beat_schema_plus_values_with_fewer_tokens(self, gpt_sweep):
        rows = {r["config"]: r for r in fig8_context_vs_tokens(
            gpt_sweep, judge="gpt-judge", configs=FIGURE8_ORDER
        )}
        guide = rows["Baseline+FS+Guidelines"]
        heavy = rows["Baseline+FS+Schema+Values"]
        assert guide["mean_score"] > heavy["mean_score"]
        assert guide["mean_tokens"] < heavy["mean_tokens"]

    def test_token_growth_shape(self, gpt_sweep):
        rows = {r["config"]: r for r in fig8_context_vs_tokens(
            gpt_sweep, judge="gpt-judge", configs=FIGURE8_ORDER
        )}
        assert rows["Full"]["mean_tokens"] > 6 * rows["Baseline"]["mean_tokens"]
        assert rows["Full"]["mean_tokens"] < 8192  # fits the small models... barely


class TestFigure6Shape:
    def test_frontier_models_beat_open_models(self, full_all_models):
        cmp = fig6_judge_comparison(
            full_all_models, ["gpt-judge", "claude-judge"]
        )
        for judge in ("gpt-judge", "claude-judge"):
            assert cmp["gpt-4"][judge] > cmp["llama3-8b"][judge]
            assert cmp["claude-opus-4"][judge] > cmp["llama3-8b"][judge]
            assert cmp["gpt-4"][judge] > cmp["gemini-2.5-flash-lite"][judge]

    def test_gpt_judge_scores_higher_overall(self, full_all_models):
        cmp = fig6_judge_comparison(
            full_all_models, ["gpt-judge", "claude-judge"]
        )
        higher = sum(
            1 for m in cmp if cmp[m]["gpt-judge"] > cmp[m]["claude-judge"]
        )
        assert higher >= 4  # consistently higher, as in the paper

    def test_each_judge_favors_own_model(self, full_all_models):
        cmp = fig6_judge_comparison(
            full_all_models, ["gpt-judge", "claude-judge"]
        )
        # claude judge: claude ahead of gpt by a visible margin
        assert cmp["claude-opus-4"]["claude-judge"] > cmp["gpt-4"]["claude-judge"]
        # gpt judge: gpt and claude within a whisker (paper: "a tie")
        assert abs(cmp["gpt-4"]["gpt-judge"] - cmp["claude-opus-4"]["gpt-judge"]) < 0.04

    def test_largest_judge_gap_for_weak_models(self, full_all_models):
        cmp = fig6_judge_comparison(
            full_all_models, ["gpt-judge", "claude-judge"]
        )
        gaps = {
            m: cmp[m]["gpt-judge"] - cmp[m]["claude-judge"] for m in cmp
        }
        weakest_gap = max(gaps["llama3-8b"], gaps["gemini-2.5-flash-lite"])
        strongest_gap = max(gaps["gpt-4"], gaps["claude-opus-4"])
        assert weakest_gap > strongest_gap


class TestFigure9Shape:
    def test_all_types_benefit_from_context(self, gpt_sweep, eval_env):
        _, _, queries, _ = eval_env
        impact = fig9_datatype_impact(
            gpt_sweep, queries, judge="gpt-judge", configs=FIGURE8_ORDER
        )
        for dt in ("Control Flow", "Dataflow", "Scheduling", "Telemetry"):
            assert impact["Full"][dt] > impact["Baseline"][dt]
            assert impact["Full"][dt] > 0.9

    def test_telemetry_starts_low(self, gpt_sweep, eval_env):
        _, _, queries, _ = eval_env
        impact = fig9_datatype_impact(
            gpt_sweep, queries, judge="gpt-judge", configs=FIGURE8_ORDER
        )
        assert impact["Baseline"]["Telemetry"] < 0.25


class TestResponseTimes:
    def test_interactive_bounds(self, full_all_models, eval_env):
        _, _, queries, _ = eval_env
        rows = response_time_table(full_all_models, queries)
        assert rows
        for row in rows:
            assert row["mean_latency_s"] < 2.5  # the paper's ~2 s bound

    def test_stable_across_workloads(self, full_all_models, eval_env):
        _, _, queries, _ = eval_env
        rows = response_time_table(full_all_models, queries)
        by_model: dict[str, list[float]] = {}
        for r in rows:
            by_model.setdefault(r["model"], []).append(r["mean_latency_s"])
        for model, vals in by_model.items():
            assert max(vals) - min(vals) < 0.5
