"""Tests for the §5.3 live chemistry interaction."""

from __future__ import annotations

import pytest

from repro.evaluation.live_demo import CHEMISTRY_QUERIES, run_live_demo


@pytest.fixture(scope="module")
def demo():
    return run_live_demo()


class TestDemoStructure:
    def test_ten_queries(self):
        assert len(CHEMISTRY_QUERIES) == 10

    def test_outcome_per_query(self, demo):
        assert len(demo.outcomes) == 10

    def test_over_80_percent_correct(self, demo):
        # paper: "correctly or partially correctly answered over 80%"
        assert demo.accuracy() >= 0.8

    def test_full_agreement_with_paper(self, demo):
        assert demo.paper_agreement() == 1.0


class TestSpecificOutcomes:
    def outcome(self, demo, qid):
        return next(o for o in demo.outcomes if o.qid == qid)

    def test_q1_highest_free_energy_is_oh(self, demo):
        o = self.outcome(demo, "Q1")
        assert o.correct
        assert "O-H_1" in (o.reply.text + str(o.reply.table.to_dicts() if o.reply.table else ""))

    def test_q2_functional_is_b3lyp(self, demo):
        assert self.outcome(demo, "Q2").correct

    def test_q5_sums_all_molecules(self, demo):
        o = self.outcome(demo, "Q5")
        assert not o.correct
        assert "81" in o.reply.text  # the paper's exact wrong answer

    def test_q6_enriched_with_chemical_terms(self, demo):
        o = self.outcome(demo, "Q6")
        assert o.correct
        assert "singlet" in o.reply.text or "neutral" in o.reply.text

    def test_q7_chart_has_all_bonds(self, demo):
        o = self.outcome(demo, "Q7")
        assert o.correct
        assert o.reply.chart.count("C-H") == 5

    def test_q8_fails_to_average(self, demo):
        o = self.outcome(demo, "Q8")
        assert not o.correct
        assert o.reply.chart is not None  # a chart was made, just ungrouped

    def test_q9_average_ch_despite_q8(self, demo):
        # the paper highlights that Q9 works even though Q8 failed
        assert self.outcome(demo, "Q9").correct

    def test_q10_fragment_doublet(self, demo):
        assert self.outcome(demo, "Q10").correct


class TestDemoProvenance:
    def test_workflow_report_consistent(self, demo):
        assert demo.report.parent_n_atoms == 9
        assert len(demo.report.bonds) == 8
        assert demo.report.total_atoms_including_fragments() == 81
