"""Tests for the golden query set (Table 1)."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.errors import QuerySetError
from repro.evaluation.query_set import QUERY_SET_SIZE, build_query_set
from repro.evaluation.taxonomy import DataType, Workload
from repro.query.executor import execute_query


class TestDistribution:
    def test_twenty_queries(self, eval_env):
        _, _, queries, _ = eval_env
        assert len(queries) == QUERY_SET_SIZE

    def test_workload_balance(self, eval_env):
        _, _, queries, _ = eval_env
        workloads = [q.workload for q in queries]
        assert workloads.count(Workload.OLAP) == 10
        assert workloads.count(Workload.OLTP) == 10

    def test_table1_totals(self, eval_env):
        _, _, queries, _ = eval_env
        totals = {dt: 0 for dt in DataType}
        for q in queries:
            for dt in q.data_types:
                totals[dt] += 1
        assert totals[DataType.CONTROL_FLOW] == 7
        assert totals[DataType.DATAFLOW] == 7
        assert totals[DataType.SCHEDULING] == 8
        assert totals[DataType.TELEMETRY] == 9

    def test_type_slots_exceed_query_count(self, eval_env):
        _, _, queries, _ = eval_env
        slots = sum(len(q.data_types) for q in queries)
        assert slots == 31 > QUERY_SET_SIZE


class TestGoldQueries:
    def test_all_golds_execute_against_campaign(self, eval_env):
        _, cm, queries, _ = eval_env
        frame = cm.to_frame()
        for q in queries:
            execute_query(q.gold, frame)  # must not raise

    def test_gold_fields_exist_in_schema(self, eval_env):
        _, cm, queries, _ = eval_env
        known = cm.known_fields()
        for q in queries:
            unknown = q.gold.fields_used() - known
            assert not unknown, f"{q.qid} references unknown fields {unknown}"

    def test_targeted_queries_hit_rows(self, eval_env):
        _, cm, queries, _ = eval_env
        frame = cm.to_frame()
        q01 = next(q for q in queries if q.qid == "q01")
        result = execute_query(q01.gold, frame)
        assert len(result) == 1

    def test_intents_registered(self, eval_env):
        from repro.llm.intents import lookup_intent

        _, _, queries, _ = eval_env
        for q in queries:
            assert lookup_intent(q.nl) == q.gold

    def test_unique_qids(self, eval_env):
        _, _, queries, _ = eval_env
        assert len({q.qid for q in queries}) == QUERY_SET_SIZE


class TestValidation:
    def test_empty_frame_rejected(self):
        with pytest.raises(QuerySetError):
            build_query_set(DataFrame())
