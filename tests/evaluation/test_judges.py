"""Tests for rule-based scoring and the simulated LLM judges."""

from __future__ import annotations

import pytest

from repro.evaluation.judges import CLAUDE_JUDGE, GPT_JUDGE, LLMJudge, RuleBasedScorer
from repro.query import parse_query


GOLD = parse_query("df[df['status'] == 'FINISHED']")


class TestRuleBasedScorer:
    def test_exact_match_scores_one(self, task_frame):
        scorer = RuleBasedScorer()
        s = scorer.score(GOLD, "df[df['status'] == 'FINISHED']", frame=task_frame)
        assert s == pytest.approx(1.0)

    def test_syntax_error_scores_zero(self, task_frame):
        assert RuleBasedScorer().score(GOLD, "SELECT * FROM t", frame=task_frame) == 0.0

    def test_partial_credit_between(self, task_frame):
        s = RuleBasedScorer().score(
            GOLD, "df[df['status'] == 'FAILED']", frame=task_frame
        )
        assert 0.0 < s < 1.0


class TestJudgePersonalities:
    def test_gpt_more_lenient_than_claude_midrange(self, task_frame):
        gpt = LLMJudge(GPT_JUDGE)
        claude = LLMJudge(CLAUDE_JUDGE)
        partially_wrong = "df[df['status'] == 'FAILED']"
        s_gpt = gpt.score(GOLD, partially_wrong, frame=task_frame, query_id="x")
        s_claude = claude.score(GOLD, partially_wrong, frame=task_frame, query_id="x")
        assert s_gpt > s_claude

    def test_self_preference(self, task_frame):
        claude = LLMJudge(CLAUDE_JUDGE)
        code = "df[df['status'] == 'FINISHED']"
        s_own = claude.score(
            GOLD, code, frame=task_frame, model_under_test="claude-opus-4", query_id="y"
        )
        s_other = claude.score(
            GOLD, code, frame=task_frame, model_under_test="gpt-4", query_id="y"
        )
        assert s_own >= s_other

    def test_hallucination_penalty_only_for_strict_judge(self, task_frame):
        known = set(task_frame.columns)
        code = "df[df['node'] == 'x']"
        gpt = LLMJudge(GPT_JUDGE).score(
            GOLD, code, frame=task_frame, known_fields=known, query_id="h"
        )
        claude = LLMJudge(CLAUDE_JUDGE).score(
            GOLD, code, frame=task_frame, known_fields=known, query_id="h"
        )
        assert claude <= gpt

    def test_syntax_floor(self, task_frame):
        s = LLMJudge(GPT_JUDGE).score(GOLD, "not a query at all!", frame=task_frame)
        assert 0.0 <= s <= 0.15

    def test_deterministic_per_coordinates(self, task_frame):
        j = LLMJudge(GPT_JUDGE)
        a = j.score(GOLD, "df[df['status'] == 'FAILED']", frame=task_frame,
                    model_under_test="gpt-4", query_id="q", rep=1)
        b = j.score(GOLD, "df[df['status'] == 'FAILED']", frame=task_frame,
                    model_under_test="gpt-4", query_id="q", rep=1)
        assert a == b

    def test_scores_bounded(self, task_frame):
        for judge in (LLMJudge(GPT_JUDGE), LLMJudge(CLAUDE_JUDGE)):
            for code in (
                "df[df['status'] == 'FINISHED']",
                "df[df['node'] == 'x']",
                "garbage(",
            ):
                s = judge.score(GOLD, code, frame=task_frame,
                                known_fields=set(task_frame.columns))
                assert 0.0 <= s <= 1.0
