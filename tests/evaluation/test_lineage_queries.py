"""Tests for the graph-traversal evaluation query set."""

from __future__ import annotations

import pytest

from repro.agent.tools.graph_query import GraphQueryTool
from repro.capture.context import CaptureContext
from repro.errors import QuerySetError
from repro.evaluation.lineage_queries import (
    build_lineage_query_set,
    evaluate_lineage_tool,
)
from repro.evaluation.taxonomy import QueryScope, TraversalOp
from repro.lineage import LineageIndex
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.workflows.synthetic import run_synthetic_campaign


@pytest.fixture(scope="module")
def campaign():
    ctx = CaptureContext()
    index = LineageIndex()
    keeper = ProvenanceKeeper(ctx.broker, lineage_index=index)
    keeper.start()
    run_synthetic_campaign(ctx, n_inputs=6)
    ctx.flush()
    keeper.stop()
    return QueryAPI(keeper.database), index


class TestBuild:
    def test_covers_every_traversal_op(self, campaign):
        api, _ = campaign
        queries = build_lineage_query_set(api)
        assert {q.op for q in queries} == set(TraversalOp)

    def test_all_graph_traversal_scope(self, campaign):
        api, _ = campaign
        for q in build_lineage_query_set(api):
            assert q.query_class.scope == QueryScope.GRAPH_TRAVERSAL
            assert "OLTP" in q.query_class.label() or "OLAP" in q.query_class.label()

    def test_empty_store_rejected(self):
        with pytest.raises(QuerySetError):
            build_lineage_query_set(QueryAPI(ProvenanceKeeper(
                CaptureContext().broker).database))


class TestEvaluate:
    def test_live_index_answers_match_oracle(self, campaign):
        api, index = campaign
        queries = build_lineage_query_set(api)
        report = evaluate_lineage_tool(GraphQueryTool(index), queries)
        failures = [r for r in report["per_query"] if not r["ok"]]
        assert report["accuracy"] == 1.0, failures
        assert report["n"] == len(queries)

    def test_report_shape(self, campaign):
        api, index = campaign
        queries = build_lineage_query_set(api)[:2]
        report = evaluate_lineage_tool(GraphQueryTool(index), queries)
        assert set(report) == {"n", "correct", "accuracy", "per_query"}
        assert all(
            {"qid", "op", "class", "ok", "expected", "got"} <= set(r)
            for r in report["per_query"]
        )
