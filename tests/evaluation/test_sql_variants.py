"""SQL variants of the golden set: same oracles, fourth dialect.

Every gold pipeline renders to SQL and compiles back to the *identical*
IR, so SQL-graded evaluation shares the NL set's oracles — and the
compiled query executes to the same answer over a live campaign frame.
"""

from __future__ import annotations

import pytest

from repro.evaluation.query_set import QUERY_SET_SIZE
from repro.evaluation.sql_variants import (
    SqlEvalQuery,
    build_sql_query_set,
    sql_variant,
)
from repro.query import execute_query
from repro.query.compare import results_equivalent
from repro.sql import compile_sql


@pytest.fixture(scope="module")
def sql_set(eval_env):
    ctx, cm, queries, runner = eval_env
    return build_sql_query_set(cm.to_frame())


class TestSqlVariants:
    def test_all_twenty_have_variants(self, sql_set):
        assert len(sql_set) == QUERY_SET_SIZE
        assert all(isinstance(v, SqlEvalQuery) for v in sql_set)
        assert all(v.qid == v.base.qid for v in sql_set)

    def test_every_variant_compiles_back_to_gold(self, sql_set):
        for variant in sql_set:
            assert compile_sql(variant.sql) == variant.base.gold, variant.qid

    def test_every_variant_executes_to_gold_answer(self, sql_set, eval_env):
        ctx, cm, queries, runner = eval_env
        frame = cm.to_frame()
        for variant in sql_set:
            got = execute_query(compile_sql(variant.sql), frame)
            want = execute_query(variant.base.gold, frame)
            assert results_equivalent(got, want), variant.qid

    def test_variants_are_select_statements(self, sql_set):
        for variant in sql_set:
            assert variant.sql.upper().startswith("SELECT "), variant.qid

    def test_variant_matches_helper(self, sql_set):
        for variant in sql_set:
            assert sql_variant(variant.base) == variant.sql
