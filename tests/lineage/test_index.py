"""Deterministic tests for the incremental lineage index."""

from __future__ import annotations

import pytest

from repro.errors import ProvenanceError
from repro.lineage import LineageIndex
from repro.provenance.graph import ProvenanceGraph


def diamond_docs():
    """a -> b -> d ; a -> c -> d, plus a value link a -> e."""
    return [
        {"task_id": "a", "activity_id": "gen", "workflow_id": "w1",
         "used": {}, "generated": {"conf": "mol-77"}},
        {"task_id": "b", "activity_id": "left", "workflow_id": "w1",
         "used": {"_upstream": ["a"]}, "generated": {}},
        {"task_id": "c", "activity_id": "right", "workflow_id": "w1",
         "used": {"_upstream": ["a"]}, "generated": {}},
        {"task_id": "d", "activity_id": "join", "workflow_id": "w1",
         "used": {"_upstream": ["b", "c"]}, "generated": {}},
        {"task_id": "e", "activity_id": "reader", "workflow_id": "w2",
         "used": {"conf": "mol-77"}, "generated": {}},
    ]


def build(docs):
    idx = LineageIndex()
    idx.apply_many(docs)
    return idx


class TestIncrementalMaintenance:
    def test_traversals_match_scan_graph(self):
        docs = diamond_docs()
        idx = build(docs)
        pg = ProvenanceGraph(docs)
        for t in "abcde":
            assert idx.upstream(t) == pg.upstream(t)
            assert idx.downstream(t) == pg.downstream(t)
            assert set(idx.parents(t)) == set(pg.parents(t))
            assert set(idx.children(t)) == set(pg.children(t))

    def test_out_of_order_arrival_parks_control_edges(self):
        docs = diamond_docs()
        idx = build(reversed(docs))  # every child arrives before its parent
        pg = ProvenanceGraph(docs)
        for t in "abcde":
            assert idx.upstream(t) == pg.upstream(t)
        assert idx.stats()["pending_control"] == 0

    def test_unknown_parent_stays_pending(self):
        idx = build([{"task_id": "x", "used": {"_upstream": ["ghost"]},
                      "generated": {}}])
        assert idx.upstream("x") == set()
        assert idx.stats()["pending_control"] == 1
        idx.apply({"task_id": "ghost", "used": {}, "generated": {}})
        assert idx.upstream("x") == {"ghost"}
        assert idx.stats()["pending_control"] == 0

    def test_reupsert_retracts_old_contributions(self):
        idx = build(diamond_docs())
        assert idx.downstream("a") == {"b", "c", "d", "e"}
        # 'e' stops consuming the shared value: data edge must vanish
        idx.apply({"task_id": "e", "activity_id": "reader",
                   "workflow_id": "w2", "used": {}, "generated": {}})
        assert idx.downstream("a") == {"b", "c", "d"}

    def test_idempotent_redelivery(self):
        docs = diamond_docs()
        idx = build(docs)
        edges = idx.edge_count
        changed = idx.apply_many(docs)  # keeper + service double-feeding
        assert changed == 0
        assert idx.edge_count == edges

    def test_upsert_merges_like_database(self):
        idx = LineageIndex()
        idx.apply({"task_id": "t", "status": "RUNNING",
                   "used": {"_upstream": ["p"]}, "generated": {}})
        idx.apply({"task_id": "p", "used": {}, "generated": {}})
        # FINISHED update without used must not erase the upstream link
        # (None fields merge, present fields replace)
        idx.apply({"task_id": "t", "status": "FINISHED", "used": None,
                   "generated": {"out": "v9"}})
        assert idx.upstream("t") == {"p"}
        assert idx.node("t")["status"] == "FINISHED"

    def test_string_upstream_coerced(self):
        idx = build([
            {"task_id": "p", "used": {}, "generated": {}},
            {"task_id": "q", "used": {"_upstream": "p"}, "generated": {}},
        ])
        assert idx.children("p") == ["q"]

    def test_duplicate_upstream_declarations_collapse(self):
        idx = build([
            {"task_id": "p", "used": {}, "generated": {}},
            {"task_id": "q", "used": {"_upstream": ["p", "p"]}, "generated": {}},
        ])
        assert idx.parents("q") == ["p"]
        assert idx.edge_count == 1

    def test_non_task_records_ignored_by_default(self):
        idx = build([
            {"task_id": "t", "type": "task", "used": {}, "generated": {}},
            {"task_id": "w/run", "type": "workflow", "used": {}, "generated": {}},
            {"task_id": "tool-1", "type": "tool_execution", "used": {},
             "generated": {}},
        ])
        assert len(idx) == 1
        assert "w/run" not in idx

    def test_record_types_none_accepts_everything(self):
        idx = LineageIndex(record_types=None)
        idx.apply({"task_id": "w/run", "type": "workflow", "used": {},
                   "generated": {}})
        assert "w/run" in idx

    def test_workflows_tracked_incrementally(self):
        idx = build(diamond_docs())
        assert set(idx.workflows()) == {"w1", "w2"}
        # re-upsert moving the only w2 task to w1 must retire w2
        idx.apply({"task_id": "e", "activity_id": "reader",
                   "workflow_id": "w1", "used": {}, "generated": {}})
        assert idx.workflows() == ["w1"]


class TestTraversalSurface:
    def test_depth_limited_walks(self):
        idx = build(diamond_docs())
        assert idx.upstream("d", max_depth=1) == {"b", "c"}
        assert idx.upstream("d", max_depth=2) == {"a", "b", "c"}
        assert idx.downstream("a", max_depth=1) == {"b", "c", "e"}

    def test_causal_chain_and_unrelated(self):
        idx = build(diamond_docs())
        chain = idx.causal_chain("a", "d")
        assert chain[0] == "a" and chain[-1] == "d" and len(chain) == 3
        assert idx.causal_chain("e", "d") is None
        assert idx.causal_chain("a", "a") == ["a"]

    def test_roots_and_leaves(self):
        idx = build(diamond_docs())
        assert set(idx.roots()) == {"a"}
        assert set(idx.leaves()) == {"d", "e"}

    def test_critical_path_per_workflow(self):
        idx = build(diamond_docs())
        assert len(idx.critical_path()) == 3  # a -> {b,c} -> d
        assert idx.critical_path(workflow_id="w2") == ["e"]
        assert idx.critical_path(workflow_id="missing") == []

    def test_cycle_rejected_for_critical_path(self):
        idx = build([
            {"task_id": "a", "used": {"_upstream": ["b"]}, "generated": {}},
            {"task_id": "b", "used": {"_upstream": ["a"]}, "generated": {}},
        ])
        assert not idx.is_acyclic()
        with pytest.raises(ProvenanceError):
            idx.critical_path()

    def test_impact_sizes(self):
        idx = build(diamond_docs())
        sizes = idx.impact_sizes()
        assert sizes["a"] == 4 and sizes["d"] == 0

    def test_unknown_task_raises(self):
        idx = build(diamond_docs())
        with pytest.raises(ProvenanceError):
            idx.upstream("ghost")

    def test_empty_index(self):
        idx = LineageIndex()
        assert len(idx) == 0
        assert idx.roots() == [] and idx.leaves() == []
        assert idx.critical_path() == []
        assert idx.is_acyclic()

    def test_snapshot_export_matches_scan_graph(self):
        docs = diamond_docs()
        idx = build(docs)
        pg = ProvenanceGraph(docs)
        snap = idx.to_provenance_graph()
        assert set(snap.graph.nodes) == set(pg.graph.nodes)
        assert set(snap.graph.edges) == set(pg.graph.edges)
        for edge in pg.graph.edges:
            assert snap.graph.edges[edge]["kind"] == pg.graph.edges[edge]["kind"]
        # the export is a full ProvenanceGraph: its API answers identically
        assert snap.upstream("d") == idx.upstream("d")
