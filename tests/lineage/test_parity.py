"""Randomized parity: incremental index == scan-built ProvenanceGraph.

The lineage subsystem's contract is that after any stream of document
arrivals — out-of-order parents, lifecycle re-upserts, shared values,
self-references — the live index answers every traversal exactly as a
:class:`ProvenanceGraph` rebuilt from the merged document set would.
Hypothesis drives randomized streams to hammer that invariant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lineage import LineageIndex
from repro.provenance.graph import ProvenanceGraph

_IDS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]
# small value pool on purpose: collisions create multi-producer links;
# 0/1/True are the trivial values that must never link
_VALUES = st.sampled_from(["v1", "v2", 7, 2.5, 0, 1, True, "shared"])
_NAMES = st.sampled_from(["x", "y", "conf"])


@st.composite
def doc_streams(draw):
    n = draw(st.integers(1, 24))
    docs = []
    for _ in range(n):
        tid = draw(st.sampled_from(_IDS))
        upstream = draw(
            st.lists(st.sampled_from(_IDS + ["ghost"]), max_size=3)
        )
        used = {
            draw(_NAMES): draw(_VALUES)
            for _ in range(draw(st.integers(0, 2)))
        }
        if upstream:
            used["_upstream"] = (
                upstream[0] if draw(st.booleans()) else upstream
            )
        generated = {
            draw(_NAMES): draw(_VALUES)
            for _ in range(draw(st.integers(0, 2)))
        }
        docs.append(
            {
                "task_id": tid,
                "workflow_id": f"w{draw(st.integers(0, 2))}",
                "activity_id": draw(st.sampled_from(["a", "b", "c"])),
                "status": draw(st.sampled_from(["RUNNING", "FINISHED", None])),
                "used": used,
                "generated": generated,
            }
        )
    return docs


def _merged_docs(stream):
    """The document set a keeper-fed database would hold (upsert merge)."""
    merged: dict[str, dict] = {}
    for doc in stream:
        old = merged.get(doc["task_id"])
        if old is None:
            merged[doc["task_id"]] = dict(doc)
        else:
            for k, v in doc.items():
                if v is not None or k not in old:
                    old[k] = v
    return list(merged.values())


@settings(max_examples=150, deadline=None)
@given(doc_streams())
def test_traversals_equal_scan_built_graph(stream):
    idx = LineageIndex()
    for doc in stream:
        idx.apply(doc)
    pg = ProvenanceGraph(_merged_docs(stream))

    assert set(pg.graph.nodes) == {t for t in _IDS + ["ghost"] if t in idx}
    for tid in pg.graph.nodes:
        assert idx.upstream(tid) == pg.upstream(tid), tid
        assert idx.downstream(tid) == pg.downstream(tid), tid
        assert set(idx.parents(tid)) == set(pg.parents(tid)), tid
        assert set(idx.children(tid)) == set(pg.children(tid)), tid
    assert set(idx.roots()) == set(pg.roots())
    assert set(idx.leaves()) == set(pg.leaves())
    assert idx.is_acyclic() == pg.is_acyclic()

    snap = idx.to_provenance_graph()
    assert set(snap.graph.edges) == set(pg.graph.edges)
    for edge in pg.graph.edges:
        assert snap.graph.edges[edge]["kind"] == pg.graph.edges[edge]["kind"]


@settings(max_examples=60, deadline=None)
@given(doc_streams(), doc_streams())
def test_batched_and_single_delivery_converge(stream_a, stream_b):
    one_by_one = LineageIndex()
    for doc in stream_a + stream_b:
        one_by_one.apply(doc)
    batched = LineageIndex()
    batched.apply_many(stream_a)
    batched.apply_many(stream_b)
    assert len(one_by_one) == len(batched)
    for tid in _IDS:
        if tid in one_by_one:
            assert one_by_one.upstream(tid) == batched.upstream(tid)
            assert one_by_one.downstream(tid) == batched.downstream(tid)


@settings(max_examples=60, deadline=None)
@given(doc_streams())
def test_causal_chain_matches_networkx(stream):
    idx = LineageIndex()
    idx.apply_many(stream)
    pg = ProvenanceGraph(_merged_docs(stream))
    nodes = list(pg.graph.nodes)
    for source in nodes[:4]:
        for target in nodes[:4]:
            ours = idx.causal_chain(source, target)
            theirs = pg.causal_chain(source, target)
            if theirs is None:
                assert ours is None, (source, target)
            else:
                assert ours is not None and len(ours) == len(theirs)
                # our chain must be a real path in the scan-built graph
                assert ours[0] == source and ours[-1] == target
                for u, v in zip(ours, ours[1:]):
                    assert pg.graph.has_edge(u, v)
