"""Broker/keeper wiring tests for live lineage maintenance."""

from __future__ import annotations

from repro.capture.context import CaptureContext
from repro.lineage import LineageIndex, LineageService
from repro.messaging.broker import InProcessBroker
from repro.provenance.keeper import TASK_TOPIC, ProvenanceKeeper
from repro.workflows.engine import Ref, TaskSpec, WorkflowEngine


def _msg(tid, upstream=(), **extra):
    doc = {
        "task_id": tid,
        "campaign_id": "c",
        "workflow_id": "w",
        "activity_id": "act",
        "status": "FINISHED",
        "type": "task",
        "used": {"_upstream": list(upstream)} if upstream else {},
        "generated": {},
    }
    doc.update(extra)
    return doc


class TestKeeperHook:
    def test_single_ingest_feeds_index(self):
        broker = InProcessBroker()
        index = LineageIndex()
        with ProvenanceKeeper(broker, lineage_index=index):
            broker.publish(TASK_TOPIC, _msg("a"))
            broker.publish(TASK_TOPIC, _msg("b", upstream=["a"]))
        assert index.downstream("a") == {"b"}

    def test_batch_ingest_feeds_index(self):
        broker = InProcessBroker()
        index = LineageIndex()
        with ProvenanceKeeper(broker, lineage_index=index) as keeper:
            broker.publish_batch(
                TASK_TOPIC,
                [_msg("a"), _msg("b", upstream=["a"]), _msg("c", upstream=["b"])],
            )
            assert keeper.processed_count == 3
        assert index.upstream("c") == {"a", "b"}

    def test_rejected_messages_not_indexed(self):
        broker = InProcessBroker()
        index = LineageIndex()
        with ProvenanceKeeper(broker, lineage_index=index) as keeper:
            broker.publish_batch(
                TASK_TOPIC,
                [_msg("a"), {"task_id": "bad"}, _msg("b", upstream=["a"])],
            )
            assert len(keeper.rejected) == 1
        assert len(index) == 2
        assert "bad" not in index

    def test_index_tracks_database_contents(self):
        broker = InProcessBroker()
        index = LineageIndex()
        with ProvenanceKeeper(broker, lineage_index=index) as keeper:
            broker.publish_batch(TASK_TOPIC, [_msg("a"), _msg("b", upstream=["a"])])
            graph = keeper.database  # scan-built oracle over the same docs
            from repro.provenance.graph import ProvenanceGraph

            oracle = ProvenanceGraph.from_database(graph, {"type": "task"})
            assert index.upstream("b") == oracle.upstream("b")


class TestLineageService:
    def test_subscribes_and_applies_batches(self):
        broker = InProcessBroker()
        with LineageService(broker) as service:
            broker.publish_batch(TASK_TOPIC, [_msg("a"), _msg("b", upstream=["a"])])
            broker.publish(TASK_TOPIC, _msg("c", upstream=["b"]))
        assert service.index.upstream("c") == {"a", "b"}

    def test_keeper_identical_rejection(self):
        broker = InProcessBroker()
        with LineageService(broker) as service:
            broker.publish(TASK_TOPIC, {"task_id": "bad"})  # missing fields
            broker.publish_batch(TASK_TOPIC, [{"nonsense": True}, _msg("ok")])
        assert service.rejected_count == 2
        assert len(service.index) == 1

    def test_replay_catches_up_on_history(self):
        broker = InProcessBroker()
        broker.publish_batch(TASK_TOPIC, [_msg("a"), _msg("b", upstream=["a"])])
        service = LineageService(broker).start(replay=True)
        assert service.index.downstream("a") == {"b"}
        # live traffic after replay keeps flowing into the same index
        broker.publish(TASK_TOPIC, _msg("c", upstream=["b"]))
        assert service.index.downstream("a") == {"b", "c"}
        service.stop()

    def test_double_feeding_with_keeper_is_idempotent(self):
        broker = InProcessBroker()
        index = LineageIndex()
        with ProvenanceKeeper(broker, lineage_index=index):
            with LineageService(broker, index):
                broker.publish_batch(
                    TASK_TOPIC, [_msg("a"), _msg("b", upstream=["a"])]
                )
        assert len(index) == 2
        assert index.edge_count == 1

    def test_stop_unsubscribes(self):
        broker = InProcessBroker()
        service = LineageService(broker).start()
        service.stop()
        broker.publish(TASK_TOPIC, _msg("late"))
        assert len(service.index) == 0


class TestEngineLineage:
    def test_engine_run_builds_live_graph(self):
        ctx = CaptureContext()
        index = LineageIndex()
        with ProvenanceKeeper(ctx.broker, lineage_index=index):
            engine = WorkflowEngine(ctx)
            result = engine.execute(
                [
                    TaskSpec("gen", lambda: {"x": 41.5}),
                    TaskSpec("inc", lambda x: {"y": x + 1},
                             inputs={"x": Ref("gen", "x")}),
                    TaskSpec("dbl", lambda y: {"z": y * 2},
                             inputs={"y": Ref("inc", "y")}),
                ],
                workflow_name="wf",
            )
            ctx.flush()
        chain = [result.task_ids[n] for n in ("gen", "inc", "dbl")]
        assert index.upstream(chain[2]) == set(chain[:2])
        assert index.causal_chain(chain[0], chain[2]) == chain
        assert len(index.critical_path(workflow_id=result.workflow_id)) == 3
