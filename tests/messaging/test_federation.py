"""Tests for the federated hub."""

from __future__ import annotations

import pytest

from repro.errors import TopicError
from repro.messaging.broker import InProcessBroker, MOFKA_LIKE
from repro.messaging.federation import FederatedHub


@pytest.fixture
def hub():
    default = InProcessBroker()
    hpc = InProcessBroker(profile=MOFKA_LIKE)
    fed = FederatedHub(default)
    fed.add_route("hpc", hpc)
    return fed, default, hpc


class TestRouting:
    def test_prefixed_topic_goes_to_route(self, hub):
        fed, default, hpc = hub
        fed.publish("hpc.provenance", {"x": 1})
        assert hpc.published_count == 1
        assert default.published_count == 0

    def test_exact_prefix_match(self, hub):
        fed, default, hpc = hub
        fed.publish("hpc", {"x": 1})
        assert hpc.published_count == 1

    def test_unrouted_goes_to_default(self, hub):
        fed, default, hpc = hub
        fed.publish("edge.provenance", {"x": 1})
        assert default.published_count == 1

    def test_prefix_is_segment_aware(self, hub):
        fed, default, hpc = hub
        fed.publish("hpcx.other", {"x": 1})  # 'hpcx' != 'hpc' prefix
        assert default.published_count == 1
        assert hpc.published_count == 0

    def test_empty_prefix_rejected(self, hub):
        fed, _, _ = hub
        with pytest.raises(TopicError):
            fed.add_route("", InProcessBroker())


class TestFanout:
    def test_subscription_spans_members(self, hub):
        fed, default, hpc = hub
        got = []
        fed.subscribe("#", got.append)
        fed.publish("hpc.task", {"a": 1})
        fed.publish("edge.task", {"b": 2})
        assert len(got) == 2

    def test_unsubscribe_spans_members(self, hub):
        fed, default, hpc = hub
        got = []
        sub = fed.subscribe("#", got.append)
        fed.unsubscribe(sub)
        fed.publish("hpc.task", {})
        fed.publish("edge.task", {})
        assert got == []

    def test_batch_routed(self, hub):
        fed, default, hpc = hub
        fed.publish_batch("hpc.task", [{}, {}, {}])
        assert hpc.published_count == 3

    def test_close_closes_members(self, hub):
        fed, default, hpc = hub
        fed.close()
        assert default.closed and hpc.closed
