"""Tests for the in-process broker."""

from __future__ import annotations

import threading

import pytest

from repro.errors import BrokerClosedError
from repro.messaging.broker import (
    InProcessBroker,
    KAFKA_LIKE,
    MOFKA_LIKE,
    REDIS_LIKE,
)


@pytest.fixture
def broker() -> InProcessBroker:
    return InProcessBroker()


class TestPublishSubscribe:
    def test_delivery_to_matching_subscriber(self, broker):
        got = []
        broker.subscribe("provenance.task", got.append)
        broker.publish("provenance.task", {"x": 1})
        assert len(got) == 1
        assert got[0].payload == {"x": 1}

    def test_no_delivery_to_non_matching(self, broker):
        got = []
        broker.subscribe("provenance.anomaly", got.append)
        broker.publish("provenance.task", {"x": 1})
        assert got == []

    def test_wildcard_subscription(self, broker):
        got = []
        broker.subscribe("provenance.#", got.append)
        broker.publish("provenance.task", {"a": 1})
        broker.publish("provenance.anomaly", {"b": 2})
        assert len(got) == 2

    def test_unsubscribe_stops_delivery(self, broker):
        got = []
        sub = broker.subscribe("provenance.task", got.append)
        broker.unsubscribe(sub)
        broker.publish("provenance.task", {})
        assert got == []

    def test_multiple_subscribers_all_receive(self, broker):
        a, b = [], []
        broker.subscribe("t.x", a.append)
        broker.subscribe("t.#", b.append)
        broker.publish("t.x", {})
        assert len(a) == 1 and len(b) == 1

    def test_headers_carried(self, broker):
        got = []
        broker.subscribe("t.x", got.append)
        broker.publish("t.x", {}, anomaly="cpu-outlier")
        assert got[0].headers["anomaly"] == "cpu-outlier"

    def test_seq_monotone(self, broker):
        got = []
        broker.subscribe("t.#", got.append)
        broker.publish("t.a", {})
        broker.publish("t.b", {})
        assert got[1].seq > got[0].seq


class TestBatchAndCost:
    def test_publish_batch_delivers_all(self, broker):
        got = []
        broker.subscribe("t.x", got.append)
        broker.publish_batch("t.x", [{"i": i} for i in range(10)])
        assert len(got) == 10

    def test_batch_cheaper_than_singles_for_kafka(self):
        payloads = [{"i": i, "blob": "x" * 50} for i in range(100)]
        single = InProcessBroker(profile=KAFKA_LIKE)
        for p in payloads:
            single.publish("t.x", p)
        batched = InProcessBroker(profile=KAFKA_LIKE)
        batched.publish_batch("t.x", payloads)
        assert batched.simulated_cost_s < single.simulated_cost_s

    def test_mofka_cheapest_redis_middle(self):
        payloads = [{"i": i} for i in range(50)]
        costs = {}
        for profile in (REDIS_LIKE, KAFKA_LIKE, MOFKA_LIKE):
            b = InProcessBroker(profile=profile)
            for p in payloads:
                b.publish("t.x", p)
            costs[profile.name] = b.simulated_cost_s
        assert costs["mofka-like"] < costs["redis-like"] < costs["kafka-like"]


class TestResilience:
    def test_subscriber_exception_isolated(self, broker):
        def bad(_env):
            raise RuntimeError("consumer crashed")

        got = []
        broker.subscribe("t.x", bad)
        broker.subscribe("t.x", got.append)
        broker.publish("t.x", {})  # must not raise
        assert len(got) == 1
        assert len(broker.delivery_errors) == 1

    def test_closed_broker_rejects_publish(self, broker):
        broker.close()
        with pytest.raises(BrokerClosedError):
            broker.publish("t.x", {})

    def test_thread_safety_counts(self, broker):
        got = []
        lock = threading.Lock()

        def cb(env):
            with lock:
                got.append(env)

        broker.subscribe("t.#", cb)

        def publish_many(tid):
            for i in range(200):
                broker.publish(f"t.w{tid}", {"i": i})

        threads = [threading.Thread(target=publish_many, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 800
        assert broker.published_count == 800


class TestBatchSubscribers:
    def test_batch_callback_gets_one_call_per_batch(self, broker):
        singles, batches = [], []
        broker.subscribe("t.#", singles.append, batch_callback=batches.append)
        broker.publish_batch("t.a", [{"i": 1}, {"i": 2}, {"i": 3}])
        assert singles == []
        assert len(batches) == 1 and len(batches[0]) == 3
        assert broker.delivered_count == 3

    def test_single_publish_uses_plain_callback(self, broker):
        singles, batches = [], []
        broker.subscribe("t.#", singles.append, batch_callback=batches.append)
        broker.publish("t.a", {"i": 1})
        assert len(singles) == 1 and batches == []

    def test_single_element_batch_still_uses_batch_callback(self, broker):
        singles, batches = [], []
        broker.subscribe("t.#", singles.append, batch_callback=batches.append)
        broker.publish_batch("t.a", [{"i": 1}])
        assert singles == []
        assert len(batches) == 1 and len(batches[0]) == 1

    def test_plain_subscriber_still_gets_per_message_delivery(self, broker):
        singles = []
        broker.subscribe("t.#", singles.append)
        broker.publish_batch("t.a", [{"i": 1}, {"i": 2}])
        assert [e.payload["i"] for e in singles] == [1, 2]

    def test_batch_only_matching_envelopes(self, broker):
        batches = []
        broker.subscribe("t.a", lambda e: None, batch_callback=batches.append)
        broker.publish_batch("t.b", [{"i": 1}, {"i": 2}])
        assert batches == []

    def test_batch_callback_error_is_isolated(self, broker):
        def boom(envs):
            raise RuntimeError("consumer died")

        got = []
        broker.subscribe("t.#", lambda e: None, batch_callback=boom)
        broker.subscribe("t.#", got.append)
        broker.publish_batch("t.a", [{"i": 1}, {"i": 2}])
        assert len(got) == 2  # second subscriber unaffected
        # every envelope of the failed batch is accounted as lost
        assert len(broker.delivery_errors) == 2


class TestHistoryReplay:
    def test_history_filtered_by_pattern(self, broker):
        broker.publish("t.a", {"i": 1})
        broker.publish("t.b", {"i": 2})
        assert len(broker.history("t.a")) == 1
        assert len(broker.history("#")) == 2

    def test_replay_to_late_subscriber(self, broker):
        broker.publish("t.a", {"i": 1})
        got = []
        n = broker.replay("t.#", got.append)
        assert n == 1 and got[0].payload == {"i": 1}


class TestEnvelope:
    def test_json_roundtrip(self, broker):
        env = broker.publish("t.x", {"a": [1, 2], "b": "s"})
        from repro.messaging.message import Envelope

        back = Envelope.from_json(env.to_json())
        assert back.topic == env.topic
        assert back.payload == {"a": [1, 2], "b": "s"}

    def test_size_bytes_positive(self, broker):
        env = broker.publish("t.x", {"a": 1})
        assert env.size_bytes() > 20


class TestOutOfLockDelivery:
    """Publish must not hold the broker lock through subscriber code."""

    def test_slow_subscriber_does_not_convoy_other_publishers(self, broker):
        import time

        started = threading.Event()
        release = threading.Event()

        def slow(env):
            started.set()
            release.wait(5)

        broker.subscribe("slow.#", slow)
        got_fast = []
        broker.subscribe("fast.#", got_fast.append)

        t = threading.Thread(target=lambda: broker.publish("slow.1", {}))
        t.start()
        try:
            assert started.wait(5), "slow delivery never started"
            # pre-refactor this publish blocked on the broker lock until
            # the slow callback returned; now it completes immediately
            t0 = time.perf_counter()
            broker.publish("fast.1", {"i": 1})
            elapsed = time.perf_counter() - t0
            assert elapsed < 2.0, f"publisher convoyed for {elapsed:.1f}s"
            assert len(got_fast) == 1
            assert not release.is_set()
        finally:
            release.set()
            t.join(5)
        assert not t.is_alive()

    def test_racing_publishers_preserve_per_subscription_order(self, broker):
        received = []
        broker.subscribe("t.#", received.append)
        n_each = 300

        def publisher(pid: int) -> None:
            for i in range(n_each):
                broker.publish(f"t.p{pid}", {"pid": pid, "i": i})

        threads = [threading.Thread(target=publisher, args=(p,)) for p in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(received) == 4 * n_each
        assert broker.delivered_count == 4 * n_each
        # delivery order equals the broker's global log order...
        log_keys = [(e.payload["pid"], e.payload["i"]) for e in broker.history("t.#")]
        got_keys = [(e.payload["pid"], e.payload["i"]) for e in received]
        assert got_keys == log_keys
        # ...and therefore each publisher's stream arrives in order
        for pid in range(4):
            stream = [i for p, i in got_keys if p == pid]
            assert stream == list(range(n_each))

    def test_racing_batch_publishers_keep_batches_intact(self, broker):
        batches = []
        broker.subscribe(
            "t.#", lambda e: None, batch_callback=batches.append
        )

        def publisher(pid: int) -> None:
            for i in range(50):
                broker.publish_batch(
                    f"t.p{pid}", [{"pid": pid, "i": i, "k": k} for k in range(4)]
                )

        threads = [threading.Thread(target=publisher, args=(p,)) for p in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(batches) == 200  # one callback per publish_batch call
        assert all(len(b) == 4 for b in batches)
        # batches from one publisher arrive in publish order
        for pid in range(4):
            seq = [b[0].payload["i"] for b in batches if b[0].payload["pid"] == pid]
            assert seq == sorted(seq)
        assert broker.delivered_count == 800

    def test_callback_publishing_reentrantly_still_delivers_in_order(self, broker):
        got = []

        def chain(env):
            got.append(env.topic)
            if env.payload.get("hop", 0) < 3:
                broker.publish("t.chain", {"hop": env.payload.get("hop", 0) + 1})

        broker.subscribe("t.#", chain)
        broker.publish("t.chain", {"hop": 0})
        assert got == ["t.chain"] * 4
