"""Tests for topic matching and validation."""

from __future__ import annotations

import pytest

from repro.errors import TopicError
from repro.messaging.pubsub import topic_matches, validate_pattern, validate_topic


class TestTopicMatches:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("provenance.task", "provenance.task", True),
            ("provenance.task", "provenance.anomaly", False),
            ("provenance.*", "provenance.task", True),
            ("provenance.*", "provenance.task.sub", False),
            ("provenance.#", "provenance.task.sub", True),
            ("#", "anything.at.all", True),
            ("*.task", "provenance.task", True),
            ("*.task", "task", False),
            ("a.b", "a", False),
            ("a", "a.b", False),
        ],
    )
    def test_matrix(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestValidation:
    def test_valid_topic(self):
        validate_topic("provenance.task")

    @pytest.mark.parametrize("topic", ["", "a..b", ".a", "a.", "prov.*", "prov.#"])
    def test_invalid_topics(self, topic):
        with pytest.raises(TopicError):
            validate_topic(topic)

    def test_valid_patterns(self):
        validate_pattern("provenance.*")
        validate_pattern("provenance.#")
        validate_pattern("#")

    @pytest.mark.parametrize("pattern", ["", "a..b", "#.task", "pre*fix.a"])
    def test_invalid_patterns(self, pattern):
        with pytest.raises(TopicError):
            validate_pattern(pattern)
