"""Tests for client-side buffering and flush strategies."""

from __future__ import annotations

import threading

import pytest

from repro.messaging.broker import InProcessBroker
from repro.messaging.buffer import (
    HybridFlush,
    IntervalFlush,
    MessageBuffer,
    SizeFlush,
)
from repro.utils.clock import VirtualClock


@pytest.fixture
def broker():
    return InProcessBroker()


class TestSizeFlush:
    def test_flushes_at_threshold(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(3))
        assert buf.append({"i": 0}) is False
        assert buf.append({"i": 1}) is False
        assert buf.append({"i": 2}) is True
        assert buf.pending == 0
        assert broker.published_count == 3

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SizeFlush(0)


class TestIntervalFlush:
    def test_flushes_when_aged(self, broker):
        clock = VirtualClock(start=0.0)
        buf = MessageBuffer(broker, "t.x", IntervalFlush(5.0), clock=clock)
        buf.append({"i": 0})
        assert broker.published_count == 0
        clock.advance(6.0)
        assert buf.poll() is True
        assert broker.published_count == 1

    def test_poll_before_age_is_noop(self, broker):
        clock = VirtualClock(start=0.0)
        buf = MessageBuffer(broker, "t.x", IntervalFlush(5.0), clock=clock)
        buf.append({"i": 0})
        clock.advance(1.0)
        assert buf.poll() is False

    def test_age_resets_after_flush(self, broker):
        clock = VirtualClock(start=0.0)
        buf = MessageBuffer(broker, "t.x", IntervalFlush(5.0), clock=clock)
        buf.append({"i": 0})
        clock.advance(6.0)
        buf.poll()
        buf.append({"i": 1})
        assert buf.poll() is False  # new epoch, not yet aged

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IntervalFlush(0)


class TestHybridFlush:
    def test_size_triggers_first(self, broker):
        clock = VirtualClock(start=0.0)
        buf = MessageBuffer(broker, "t.x", HybridFlush(2, 100.0), clock=clock)
        buf.append({})
        assert buf.append({}) is True

    def test_age_triggers_when_small(self, broker):
        clock = VirtualClock(start=0.0)
        buf = MessageBuffer(broker, "t.x", HybridFlush(100, 5.0), clock=clock)
        buf.append({})
        clock.advance(10.0)
        assert buf.poll() is True


class TestExplicitFlush:
    def test_flush_returns_count(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(100))
        buf.append({})
        buf.append({})
        assert buf.flush() == 2
        assert buf.flush() == 0

    def test_close_flushes_remainder(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(100))
        buf.append({})
        buf.close()
        assert broker.published_count == 1

    def test_counters(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(2))
        for i in range(5):
            buf.append({"i": i})
        buf.flush()
        assert buf.appended_count == 5
        assert buf.flush_count == 3  # 2 + 2 + 1


class TestLastTaskId:
    def test_none_before_any_append(self, broker):
        assert MessageBuffer(broker, "t.x").last_task_id() is None

    def test_tracks_most_recent_append(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(100))
        buf.append({"task_id": "a"})
        buf.append({"task_id": "b"})
        assert buf.last_task_id() == "b"

    def test_survives_flush(self, broker):
        # the engine reads the id right after emitting; a flush racing in
        # between must not lose it (this replaced peeking at _pending)
        buf = MessageBuffer(broker, "t.x", SizeFlush(1))
        buf.append({"task_id": "a"})  # triggers an immediate flush
        assert buf.pending == 0
        assert buf.last_task_id() == "a"

    def test_payloads_without_task_id_ignored(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(100))
        buf.append({"task_id": "a"})
        buf.append({"other": 1})
        assert buf.last_task_id() == "a"


class TestReentrantDelivery:
    """Flush publishes outside the buffer lock (the provlint
    blocking-call-under-lock finding): a subscriber callback may
    re-enter the buffer without deadlocking on its non-reentrant lock.
    """

    def test_callback_appending_back_does_not_deadlock(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(1))
        echoed = []

        def echo(env):
            # re-enter the buffer from inside delivery; this append
            # itself triggers another flush
            if not env.payload.get("echo"):
                echoed.append(env.payload["i"])
                buf.append({"i": env.payload["i"], "echo": True})

        broker.subscribe("t.x", echo)

        worker = threading.Thread(target=buf.append, args=({"i": 1},))
        worker.start()
        worker.join(timeout=5)
        assert not worker.is_alive(), "re-entrant append deadlocked"
        assert echoed == [1]
        assert broker.published_count == 2  # original + echo
        assert buf.pending == 0

    def test_reentrant_batches_drain_in_order(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(1))
        seen = []

        def record(env):
            seen.append(env.payload["n"])
            n = env.payload["n"]
            if n < 3:
                buf.append({"n": n + 1})

        broker.subscribe("t.x", record)
        done = threading.Event()

        def kick():
            buf.append({"n": 0})
            done.set()

        worker = threading.Thread(target=kick)
        worker.start()
        worker.join(timeout=5)
        assert done.is_set(), "chained re-entrant flushes deadlocked"
        assert seen == [0, 1, 2, 3]

    def test_flush_failure_releases_the_drainer(self, broker):
        buf = MessageBuffer(broker, "t.x", SizeFlush(100))
        calls = []

        def explode(env):
            calls.append(env.payload)
            raise RuntimeError("subscriber bug")

        broker.subscribe("t.x", explode)
        buf.append({"i": 0})
        buf.flush()  # broker contains delivery errors; must not wedge
        assert calls
        # the drainer flag was reset: the next flush still publishes
        buf.append({"i": 1})
        assert buf.flush() == 1
        assert broker.published_count == 2
