"""Tests for the additive manufacturing (LPBF) workflow."""

from __future__ import annotations

import pytest

from repro.agent.agent import ProvenanceAgent
from repro.capture.context import CaptureContext
from repro.provenance.keeper import ProvenanceKeeper
from repro.workflows.manufacturing import run_lpbf_build


@pytest.fixture(scope="module")
def build_env():
    ctx = CaptureContext()
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    agent = ProvenanceAgent(ctx, model="gpt-4")
    report = run_lpbf_build("bracket-A7", ctx, height_mm=1.0)
    return ctx, keeper, agent, report


class TestBuild:
    def test_layer_count_from_geometry(self, build_env):
        _, _, _, report = build_env
        assert report.n_layers == 25  # 1.0 mm / 40 um

    def test_task_count(self, build_env):
        _, keeper, _, report = build_env
        assert keeper.database.count({"type": "task"}) == report.n_tasks
        assert report.n_tasks == 2 + 25 * 3 + 1

    def test_deterministic(self):
        a = run_lpbf_build("p", CaptureContext(), height_mm=0.5, seed="s")
        b = run_lpbf_build("p", CaptureContext(), height_mm=0.5, seed="s")
        assert a.porosity_percent == b.porosity_percent
        assert a.defect_layers == b.defect_layers

    def test_hot_process_creates_more_defects(self):
        cool = run_lpbf_build(
            "p", CaptureContext(), height_mm=1.0, laser_power_w=280.0
        )
        hot = run_lpbf_build(
            "p", CaptureContext(), height_mm=1.0, laser_power_w=520.0
        )
        assert len(hot.defect_layers) > len(cool.defect_layers)

    def test_qa_verdict_consistent(self, build_env):
        _, _, _, report = build_env
        assert report.passed_qa == (
            report.porosity_percent < 1.0
            and len(report.defect_layers) <= max(1, report.n_layers // 20)
        )

    def test_edge_hosts_used(self, build_env):
        _, keeper, _, _ = build_env
        hosts = set(keeper.database.distinct("hostname"))
        assert "printer-edge-0" in hosts and "printer-edge-1" in hosts


class TestAgentGeneralisation:
    """The agent answers manufacturing questions with zero domain tuning."""

    def test_schema_learned_from_stream(self, build_env):
        _, _, agent, _ = build_env
        fields = agent.context_manager.schema.dataflow_fields
        assert "generated.melt_pool_temp_k" in fields
        assert "generated.porosity_percent" in fields

    def test_count_defective_layers(self, build_env):
        _, _, agent, report = build_env
        # register nothing: the semantic core must parse this cold
        reply = agent.chat("How many tasks were executed per activity?")
        assert reply.ok
        rows = {r["activity_id"]: r["task_id"] for r in reply.table.to_dicts()}
        assert rows["laser_melt"] == report.n_layers

    def test_max_melt_pool_temperature(self, build_env):
        _, _, agent, _ = build_env
        from repro.llm.intents import register_intent
        from repro.query import parse_query

        nl = "What is the maximum melt pool temperature reached?"
        register_intent(nl, parse_query("df['generated.melt_pool_temp_k'].max()"))
        reply = agent.chat(nl)
        assert reply.ok
        assert "19" in reply.text or "20" in reply.text  # ~1900-2000 K
