"""Tests for the simulated DFT engine and thermochemistry."""

from __future__ import annotations

import pytest

from repro.errors import ChemistryError
from repro.workflows.chemistry.dft import HARTREE_KCAL, SimulatedDFT
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.smiles import parse_smiles
from repro.workflows.chemistry.thermo import (
    thermochemistry,
    vibrational_frequencies,
)


class TestSimulatedDFT:
    def test_ethanol_energy_near_listing(self):
        # paper Listing 1: e0 = -155.03 hartree
        dft = SimulatedDFT()
        result = dft.run(parse_smiles("CCO", name="parent"))
        assert result.e0_hartree == pytest.approx(-155.0, abs=0.3)

    def test_deterministic(self):
        dft = SimulatedDFT()
        a = dft.run(parse_smiles("CCO", name="x"))
        b = dft.run(parse_smiles("CCO", name="x"))
        assert a.e0_hartree == b.e0_hartree

    def test_different_molecules_differ(self):
        dft = SimulatedDFT()
        a = dft.run(parse_smiles("CCO", name="x"))
        b = dft.run(parse_smiles("CC", name="x"))
        assert a.e0_hartree != b.e0_hartree

    def test_scf_converges_for_small_molecules(self):
        result = SimulatedDFT().run(parse_smiles("C"))
        assert result.converged
        assert 1 <= result.n_scf_iterations <= 50

    def test_open_shell_converges_slower(self):
        dft = SimulatedDFT()
        closed = parse_smiles("CC", name="a")
        radical = parse_smiles("CC", name="a")
        radical.set_radical(0, 1)
        # remove one H to keep valence sane
        h = max(a.index for a in radical.atoms() if a.symbol == "H")
        radical.graph.remove_node(h)
        assert dft.run(radical).n_scf_iterations >= dft.run(closed).n_scf_iterations

    def test_cost_scales_with_size(self):
        dft = SimulatedDFT()
        small = dft.run(parse_smiles("C"))
        large = dft.run(parse_smiles("CCCCCC"))
        assert large.simulated_seconds > small.simulated_seconds

    def test_homo_lumo_gap_positive(self):
        result = SimulatedDFT().run(parse_smiles("CCO"))
        assert result.lumo_ev > result.homo_ev

    def test_empty_molecule_rejected(self):
        with pytest.raises(ChemistryError):
            SimulatedDFT().run(Molecule())

    def test_unparameterised_bond_raises(self):
        mol = Molecule()
        p1 = mol.add_atom("P")
        p2 = mol.add_atom("P")
        mol.add_bond(p1, p2)
        with pytest.raises(ChemistryError):
            SimulatedDFT().run(mol)

    def test_environment_weakens_alpha_ch(self):
        # the C-H bonds on the carbon bonded to O are weaker
        mol = parse_smiles("CCO")
        dft = SimulatedDFT()
        energies = {}
        for label, bond in mol.labeled_bonds():
            if label.startswith("C-H"):
                energies[label] = dft.bond_energy_kcal(mol, bond)
        assert max(energies.values()) - min(energies.values()) > 0.2

    def test_functional_recorded(self):
        result = SimulatedDFT(functional="PBE0").run(parse_smiles("C"))
        assert result.functional == "PBE0"
        assert SimulatedDFT().run(parse_smiles("C")).functional == "B3LYP"


class TestThermo:
    def test_ethanol_matches_listing_scale(self):
        # Listing 1: h0=0.0855, s0=0.0643, z0=0.0803
        mol = parse_smiles("CCO", name="parent")
        th = thermochemistry(mol)
        assert th.zpe_hartree == pytest.approx(0.0803, abs=0.002)
        assert th.thermal_enthalpy_hartree == pytest.approx(0.0855, abs=0.002)
        assert th.ts_entropy_hartree == pytest.approx(0.0643, abs=0.002)

    def test_frequency_count_3n_minus_6(self):
        mol = parse_smiles("CCO")
        assert len(vibrational_frequencies(mol)) == 3 * 9 - 6

    def test_diatomic_has_one_mode(self):
        mol = Molecule()
        a, b = mol.add_atom("O"), mol.add_atom("O")
        mol.add_bond(a, b, 1)
        assert len(vibrational_frequencies(mol)) == 1

    def test_atom_has_no_modes(self):
        mol = Molecule()
        mol.add_atom("H")
        assert vibrational_frequencies(mol) == []

    def test_enthalpy_and_free_energy_order(self):
        mol = parse_smiles("CCO", name="parent")
        th = thermochemistry(mol)
        e0 = -155.0
        assert th.enthalpy(e0) > e0
        assert th.free_energy(e0) < th.enthalpy(e0)

    def test_temperature_monotonicity(self):
        mol = parse_smiles("CCO", name="parent")
        low = thermochemistry(mol, 200.0)
        high = thermochemistry(mol, 400.0)
        assert high.ts_entropy_hartree > low.ts_entropy_hartree

    def test_bad_temperature(self):
        with pytest.raises(ValueError):
            thermochemistry(parse_smiles("C"), -1.0)

    def test_extensive_parts_cancel_for_bde(self):
        """The fragment-pair minus parent h0 difference is the H constant."""
        from repro.workflows.chemistry.fragments import break_bond
        from repro.workflows.chemistry.thermo import H_CONST

        mol = parse_smiles("CCO", name="parent")
        labeled = dict(mol.labeled_bonds())
        f1, f2 = break_bond(mol, labeled["C-C_1"])
        th_p = thermochemistry(mol)
        th_1 = thermochemistry(f1)
        th_2 = thermochemistry(f2)
        delta = (
            th_1.thermal_enthalpy_hartree
            + th_2.thermal_enthalpy_hartree
            - th_p.thermal_enthalpy_hartree
        )
        assert delta == pytest.approx(H_CONST, abs=3 * 0.15 * 2 / HARTREE_KCAL * 627.5 / 627.5 + 0.001)
