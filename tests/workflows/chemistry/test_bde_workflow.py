"""Integration tests for the BDE workflow (Figure 5-B)."""

from __future__ import annotations

import pytest

from repro.capture.context import CaptureContext
from repro.provenance.keeper import ProvenanceKeeper
from repro.workflows.chemistry import run_bde_workflow


@pytest.fixture(scope="module")
def setup():
    ctx = CaptureContext(hostname="frontier00084.frontier.olcf.ornl.gov")
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    report = run_bde_workflow("CCO", ctx, n_conformers=2)
    return ctx, keeper, report


class TestReport:
    def test_parent_facts(self, setup):
        _, _, report = setup
        assert report.parent_formula == "C2H6O"
        assert report.parent_n_atoms == 9
        assert report.parent_charge == 0
        assert report.parent_multiplicity == 1

    def test_eight_bond_records(self, setup):
        _, _, report = setup
        assert len(report.bonds) == 8

    def test_ch_bde_near_paper_value(self, setup):
        # Listing 1: C-H_3 bd_energy = 98.65 kcal/mol
        _, _, report = setup
        ch3 = report.bond("C-H_3")
        assert ch3.bd_energy == pytest.approx(98.6, abs=2.0)

    def test_enthalpy_energy_offsets_match_listing(self, setup):
        # Listing 1: enthalpy - energy = +1.58; free energy - energy = -6.26
        _, _, report = setup
        for b in report.bonds:
            assert b.bd_enthalpy - b.bd_energy == pytest.approx(1.58, abs=0.8)
            assert b.bd_free_energy - b.bd_energy == pytest.approx(-6.26, abs=0.8)

    def test_cc_is_lowest_enthalpy(self, setup):
        # paper §5.3 Q3: expected C-C
        _, _, report = setup
        assert report.lowest_enthalpy_bond().bond_id == "C-C_1"

    def test_oh_is_highest_free_energy(self, setup):
        # paper §5.3 Q1
        _, _, report = setup
        assert report.highest_free_energy_bond().bond_id == "O-H_1"

    def test_q5_total_atoms_81(self, setup):
        _, _, report = setup
        assert report.total_atoms_including_fragments() == 81

    def test_fragments_are_neutral_doublets(self, setup):
        # paper §5.3 Q10
        _, _, report = setup
        for b in report.bonds:
            assert b.fragment_multiplicity == 2
            assert b.fragment_charge == 0

    def test_mean_ch_bde(self, setup):
        _, _, report = setup
        mean = report.mean_bde_for("C-H")
        values = [b.bd_enthalpy for b in report.bonds if "C-H" in b.bond_id]
        assert mean == pytest.approx(sum(values) / len(values))

    def test_unknown_bond_raises(self, setup):
        _, _, report = setup
        with pytest.raises(KeyError):
            report.bond("Si-H_1")


class TestProvenanceCapture:
    def test_listing1_message_shape(self, setup):
        _, keeper, _ = setup
        doc = keeper.database.find_one(
            {"activity_id": "run_individual_bde", "generated.bond_id": "C-H_3"}
        )
        assert doc is not None
        used, gen = doc["used"], doc["generated"]
        assert set(["e0", "frags", "h0", "outdir", "s0", "z0"]) <= set(used)
        assert used["frags"]["label"] == "C-H_3"
        assert set(gen) == {"bond_id", "bd_energy", "bd_enthalpy", "bd_free_energy"}
        assert doc["hostname"].startswith("frontier")
        assert doc["status"] == "FINISHED"

    def test_all_figure_activities_present(self, setup):
        _, keeper, _ = setup
        activities = set(keeper.database.distinct("activity_id"))
        for expected in (
            "generate_conformer",
            "geometry_minimization",
            "get_lowest_energy",
            "create_parent_structure",
            "break_bond_generate_fragment",
            "create_input_for_fragment",
            "run_dft",
            "postprocess",
            "run_individual_bde",
        ):
            assert expected in activities

    def test_task_count_matches_report(self, setup):
        _, keeper, report = setup
        assert keeper.database.count({"type": "task"}) == report.n_tasks

    def test_dft_runs_one_parent_plus_two_per_bond(self, setup):
        _, keeper, report = setup
        n_dft = keeper.database.count({"activity_id": "run_dft"})
        assert n_dft == 1 + 2 * len(report.bonds)

    def test_clock_advanced_by_simulated_dft_time(self, setup):
        ctx, _, _ = setup
        # 17 DFT runs at ~2s each must have advanced the virtual clock
        assert ctx.clock.now() > 1_753_457_858.0 + 10.0

    def test_richer_schema_than_synthetic(self, setup):
        """The chemistry workflow's dataflow schema is nested and wider."""
        _, keeper, _ = setup
        doc = keeper.database.find_one({"activity_id": "run_individual_bde"})
        assert isinstance(doc["used"]["frags"], dict)  # nested structure
