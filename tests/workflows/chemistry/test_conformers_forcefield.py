"""Tests for conformer embedding and the toy force field."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflows.chemistry.conformers import (
    Conformer,
    embed_molecule,
    generate_conformers,
    lowest_energy,
)
from repro.workflows.chemistry.forcefield import ForceField
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.smiles import parse_smiles


class TestEmbedding:
    def test_shape(self):
        mol = parse_smiles("CCO")
        coords = embed_molecule(mol)
        assert coords.shape == (9, 3)

    def test_deterministic_per_seed(self):
        mol = parse_smiles("CCO")
        a = embed_molecule(mol, seed=1)
        b = embed_molecule(mol, seed=1)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        mol = parse_smiles("CCO")
        assert not np.allclose(embed_molecule(mol, seed=1), embed_molecule(mol, seed=2))

    def test_bonded_atoms_nearby(self):
        mol = parse_smiles("CC")
        coords = embed_molecule(mol, seed=0)
        for bond in mol.bonds():
            d = np.linalg.norm(coords[bond.a] - coords[bond.b])
            assert d < 3.0  # embedded roughly at bond length


class TestForceField:
    def test_minimisation_reduces_energy(self):
        mol = parse_smiles("CCO")
        ff = ForceField(mol)
        coords = embed_molecule(mol, seed=3)
        start = ff.energy(coords.reshape(-1))
        result = ff.minimize(coords)
        assert result.energy < start
        assert result.coords.shape == (9, 3)

    def test_minimised_bond_lengths_near_equilibrium(self):
        mol = parse_smiles("CC")
        ff = ForceField(mol)
        result = ff.minimize(embed_molecule(mol, seed=1))
        # C-C equilibrium = 2 * covalent radius = 1.52 A
        d = np.linalg.norm(result.coords[0] - result.coords[1])
        assert d == pytest.approx(1.52, abs=0.2)

    def test_single_atom_trivial(self):
        mol = Molecule()
        mol.add_atom("H")
        result = ForceField(mol).minimize(np.zeros((1, 3)))
        assert result.converged and result.energy == 0.0

    def test_energy_deterministic(self):
        mol = parse_smiles("CCO")
        ff = ForceField(mol)
        coords = embed_molecule(mol, seed=1).reshape(-1)
        assert ff.energy(coords) == ff.energy(coords)

    def test_nonbonded_pairs_exclude_close_neighbours(self):
        mol = parse_smiles("CCO")
        ff = ForceField(mol)
        # 1-2 and 1-3 pairs must not be in the LJ list
        bonded = {b.key() for b in mol.bonds()}
        for i, j in ff._nb.tolist():
            assert (min(i, j), max(i, j)) not in bonded


class TestConformerSearch:
    def test_generates_requested_count(self):
        mol = parse_smiles("CCO")
        confs = generate_conformers(mol, n_conformers=4, seed=0)
        assert len(confs) == 4
        assert all(isinstance(c, Conformer) for c in confs)

    def test_lowest_energy_selection(self):
        mol = parse_smiles("CCO")
        confs = generate_conformers(mol, n_conformers=4, seed=0)
        best = lowest_energy(confs)
        assert best.energy == min(c.energy for c in confs)

    def test_lowest_energy_empty_raises(self):
        with pytest.raises(ValueError):
            lowest_energy([])

    def test_deterministic_search(self):
        mol = parse_smiles("CCO")
        a = generate_conformers(mol, 3, seed="x")
        b = generate_conformers(mol, 3, seed="x")
        assert [c.energy for c in a] == [c.energy for c in b]
