"""Tests for molecular graphs and SMILES parsing."""

from __future__ import annotations

import pytest

from repro.errors import SmilesParseError, ValenceError
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.smiles import parse_smiles


class TestMolecule:
    def test_manual_construction(self):
        mol = Molecule("methane")
        c = mol.add_atom("C")
        for _ in range(4):
            h = mol.add_atom("H")
            mol.add_bond(c, h)
        assert mol.formula() == "CH4"
        assert mol.n_atoms == 5

    def test_valence_enforced(self):
        mol = Molecule()
        c = mol.add_atom("C")
        others = [mol.add_atom("H") for _ in range(5)]
        for h in others[:4]:
            mol.add_bond(c, h)
        with pytest.raises(ValenceError):
            mol.add_bond(c, others[4])

    def test_self_bond_rejected(self):
        mol = Molecule()
        c = mol.add_atom("C")
        with pytest.raises(ValenceError):
            mol.add_bond(c, c)

    def test_fill_hydrogens(self):
        mol = Molecule()
        c1 = mol.add_atom("C")
        c2 = mol.add_atom("C")
        mol.add_bond(c1, c2)
        added = mol.fill_hydrogens()
        assert added == 6  # ethane
        assert mol.formula() == "C2H6"

    def test_multiplicity_counts_radicals(self):
        mol = Molecule()
        c = mol.add_atom("C", radical_electrons=1)
        assert mol.multiplicity == 2

    def test_unknown_element(self):
        with pytest.raises(KeyError):
            Molecule().add_atom("Xx")

    def test_mass(self):
        mol = parse_smiles("CCO")
        assert mol.mass == pytest.approx(46.07, abs=0.05)


class TestBondLabels:
    def test_ethanol_labels(self):
        mol = parse_smiles("CCO")
        labels = [label for label, _ in mol.labeled_bonds()]
        assert labels.count("C-C_1") == 1
        assert labels.count("C-O_1") == 1
        assert labels.count("O-H_1") == 1
        assert sum(1 for lb in labels if lb.startswith("C-H")) == 5

    def test_heavy_atom_first_in_label(self):
        mol = parse_smiles("O")  # water
        labels = [label for label, _ in mol.labeled_bonds()]
        assert labels == ["O-H_1", "O-H_2"]


class TestSmiles:
    @pytest.mark.parametrize(
        "smiles,formula,atoms",
        [
            ("C", "CH4", 5),
            ("CC", "C2H6", 8),
            ("CCO", "C2H6O", 9),
            ("O", "H2O", 3),
            ("C=C", "C2H4", 6),
            ("C#N", "CHN", 3),
            ("CC(C)C", "C4H10", 14),
            ("C1CC1", "C3H6", 9),  # cyclopropane
            ("ClC(Cl)(Cl)Cl", "CCl4", 5),
        ],
    )
    def test_formulas(self, smiles, formula, atoms):
        mol = parse_smiles(smiles)
        assert mol.formula() == formula
        assert mol.n_atoms == atoms

    def test_bracket_atom_charge(self):
        mol = parse_smiles("[NH4+]")
        assert mol.charge == 1
        assert mol.formula() == "H4N"

    def test_bracket_no_implicit_h(self):
        mol = parse_smiles("[OH]")  # hydroxyl radical fragment-style
        assert mol.formula() == "HO"

    def test_explicit_bond_orders(self):
        mol = parse_smiles("C=O")
        bond = mol.bonds()[0]
        assert bond.order == 2

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "C(", "C)", "C1CC", "[C", "C$", "[Xx]", "1CC"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(SmilesParseError):
            parse_smiles(bad)

    def test_ring_closure_connects(self):
        mol = parse_smiles("C1CCCCC1")  # cyclohexane
        assert mol.formula() == "C6H12"
        import networkx as nx

        assert len(nx.cycle_basis(mol.graph.subgraph(
            [a.index for a in mol.atoms() if a.symbol == "C"]
        ))) == 1

    def test_connected(self):
        assert parse_smiles("CCO").is_connected()


class TestSmilesLikeOutput:
    def test_radical_atoms_bracketed(self):
        mol = parse_smiles("CCO")
        from repro.workflows.chemistry.fragments import break_bond

        labeled = dict(mol.labeled_bonds())
        f1, f2 = break_bond(mol, labeled["C-C_1"])
        text = f1.to_smiles_like()
        assert "[C]" in text  # radical carbon is bracketed

    def test_subgraph_preserves_atoms(self):
        mol = parse_smiles("CCO")
        heavy = {a.index for a in mol.atoms() if a.symbol != "H"}
        sub = mol.subgraph_molecule(heavy)
        assert sub.formula() == "C2O"
