"""Tests for homolytic bond breaking."""

from __future__ import annotations

import pytest

from repro.errors import ChemistryError
from repro.workflows.chemistry.fragments import break_bond, enumerate_breakable_bonds
from repro.workflows.chemistry.smiles import parse_smiles


class TestEnumeration:
    def test_ethanol_has_eight_breakable_bonds(self):
        mol = parse_smiles("CCO")
        bonds = enumerate_breakable_bonds(mol)
        assert len(bonds) == 8

    def test_ring_bonds_excluded(self):
        mol = parse_smiles("C1CC1")  # cyclopropane: 3 ring C-C + 6 C-H
        bonds = enumerate_breakable_bonds(mol)
        labels = [label for label, _ in bonds]
        assert all(lb.startswith("C-H") for lb in labels)
        assert len(bonds) == 6

    def test_double_bonds_excluded(self):
        mol = parse_smiles("C=C")
        labels = [label for label, _ in enumerate_breakable_bonds(mol)]
        assert all(lb.startswith("C-H") for lb in labels)


class TestBreaking:
    def test_fragments_partition_atoms(self):
        mol = parse_smiles("CCO")
        for label, bond in enumerate_breakable_bonds(mol):
            f1, f2 = break_bond(mol, bond)
            assert f1.n_atoms + f2.n_atoms == mol.n_atoms

    def test_fragments_are_doublets(self):
        mol = parse_smiles("CCO")
        for _, bond in enumerate_breakable_bonds(mol):
            f1, f2 = break_bond(mol, bond)
            assert f1.multiplicity == 2
            assert f2.multiplicity == 2

    def test_cc_break_gives_methyl_and_methoxymethyl(self):
        mol = parse_smiles("CCO")
        labeled = dict(mol.labeled_bonds())
        f1, f2 = break_bond(mol, labeled["C-C_1"])
        assert sorted([f1.formula(), f2.formula()]) == ["CH3", "CH3O"]

    def test_oh_break_gives_h_atom(self):
        mol = parse_smiles("CCO")
        labeled = dict(mol.labeled_bonds())
        f1, f2 = break_bond(mol, labeled["O-H_1"])
        formulas = sorted([f1.formula(), f2.formula()])
        assert "H" in formulas

    def test_fragment_charge_is_zero(self):
        mol = parse_smiles("CCO")
        for _, bond in enumerate_breakable_bonds(mol):
            f1, f2 = break_bond(mol, bond)
            assert f1.charge == 0 and f2.charge == 0

    def test_breaking_missing_bond_raises(self):
        # ethanol atoms: 0=C, 1=C, 2=O; C0 and O2 are not directly bonded
        mol = parse_smiles("CCO")
        from repro.workflows.chemistry.molecule import Bond

        with pytest.raises(ChemistryError):
            break_bond(mol, Bond(0, 2))

    def test_total_fragment_atoms_for_q5(self):
        # paper §5.3 Q5: parent (9) + 8 bonds x 9 atoms = 81
        mol = parse_smiles("CCO")
        total = mol.n_atoms
        for _, bond in enumerate_breakable_bonds(mol):
            f1, f2 = break_bond(mol, bond)
            total += f1.n_atoms + f2.n_atoms
        assert total == 81
