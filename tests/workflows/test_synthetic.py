"""Tests for the synthetic math workflow (Figure 5-A)."""

from __future__ import annotations

import pytest

from repro.capture.context import CaptureContext
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.keeper import ProvenanceKeeper
from repro.workflows.synthetic import (
    SYNTHETIC_ACTIVITIES,
    run_synthetic_campaign,
    run_synthetic_workflow,
    synthetic_dag,
)


@pytest.fixture
def ctx():
    return CaptureContext()


@pytest.fixture
def keeper(ctx):
    k = ProvenanceKeeper(ctx.broker)
    k.start()
    return k


class TestStructure:
    def test_eight_activities(self):
        dag = synthetic_dag(1.0)
        assert [t.name for t in dag] == list(SYNTHETIC_ACTIVITIES)

    def test_fan_out_fan_in(self):
        from repro.workflows.engine import WorkflowEngine

        g = WorkflowEngine.build_graph(synthetic_dag(1.0))
        assert g.out_degree("scale_and_shift") == 3  # fan-out
        assert g.in_degree("average_results") == 3  # fan-in

    def test_deterministic_math(self, ctx):
        a = run_synthetic_workflow(CaptureContext(), x=2.0)
        b = run_synthetic_workflow(CaptureContext(), x=2.0)
        assert a["average_results"]["value"] == b["average_results"]["value"]

    def test_known_value(self, ctx):
        # x=2: scale_and_shift -> 5; square_and_divide -> 6.25;
        # sqrt branch -> 3*sqrt(5); subtract branch -> 5.5
        result = run_synthetic_workflow(ctx, x=2.0)
        assert result["scale_and_shift"]["value"] == 5.0
        assert result["square_and_divide"]["value"] == pytest.approx(6.25)


class TestProvenance:
    def test_nine_messages_per_instance(self, ctx, keeper):
        run_synthetic_workflow(ctx)
        ctx.flush()
        assert len(keeper.database) == 9  # 8 tasks + 1 workflow record

    def test_graph_is_connected_dag(self, ctx, keeper):
        run_synthetic_workflow(ctx)
        ctx.flush()
        g = ProvenanceGraph(keeper.database.find({"type": "task"}))
        assert g.is_acyclic()
        assert len(g.roots()) == 1
        assert len(g.critical_path()) == 4  # scale -> square -> log -> average


class TestCampaign:
    def test_campaign_scales_messages(self, ctx, keeper):
        run_synthetic_campaign(ctx, n_inputs=5)
        assert keeper.database.count({"type": "task"}) == 40
        assert keeper.database.count({"type": "workflow"}) == 5

    def test_campaign_reproducible(self):
        c1 = CaptureContext()
        r1 = run_synthetic_campaign(c1, n_inputs=3)
        c2 = CaptureContext()
        r2 = run_synthetic_campaign(c2, n_inputs=3)
        v1 = [r["average_results"]["value"] for r in r1]
        v2 = [r["average_results"]["value"] for r in r2]
        assert v1 == v2

    def test_distinct_workflow_ids(self, ctx):
        results = run_synthetic_campaign(ctx, n_inputs=4)
        assert len({r.workflow_id for r in results}) == 4
