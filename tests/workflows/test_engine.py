"""Tests for the DAG workflow engine."""

from __future__ import annotations

import pytest

from repro.capture.context import CaptureContext
from repro.errors import CyclicDependencyError, TaskFailedError, WorkflowError
from repro.provenance.keeper import ProvenanceKeeper
from repro.workflows.engine import Ref, TaskSpec, WorkflowEngine


@pytest.fixture
def ctx():
    return CaptureContext()


@pytest.fixture
def keeper(ctx):
    k = ProvenanceKeeper(ctx.broker)
    k.start()
    return k


def add(a, b):
    return {"sum": a + b}


def double(value):
    return {"sum": value * 2}


class TestGraphBuilding:
    def test_dependencies_from_refs(self):
        tasks = [
            TaskSpec("a", add, {"a": 1, "b": 2}),
            TaskSpec("b", double, {"value": Ref("a", "sum")}),
        ]
        g = WorkflowEngine.build_graph(tasks)
        assert list(g.successors("a")) == ["b"]

    def test_after_edges(self):
        tasks = [
            TaskSpec("a", add, {"a": 1, "b": 2}),
            TaskSpec("b", add, {"a": 1, "b": 1}, after=("a",)),
        ]
        g = WorkflowEngine.build_graph(tasks)
        assert list(g.successors("a")) == ["b"]

    def test_cycle_detected(self):
        tasks = [
            TaskSpec("a", double, {"value": Ref("b", "sum")}),
            TaskSpec("b", double, {"value": Ref("a", "sum")}),
        ]
        with pytest.raises(CyclicDependencyError):
            WorkflowEngine.build_graph(tasks)

    def test_unknown_dependency(self):
        with pytest.raises(WorkflowError):
            WorkflowEngine.build_graph(
                [TaskSpec("a", double, {"value": Ref("ghost", "x")})]
            )

    def test_duplicate_names(self):
        with pytest.raises(WorkflowError):
            WorkflowEngine.build_graph(
                [TaskSpec("a", add, {"a": 1, "b": 1}), TaskSpec("a", add, {"a": 1, "b": 1})]
            )


class TestExecution:
    def test_dataflow_through_refs(self, ctx):
        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [
                TaskSpec("a", add, {"a": 1, "b": 2}),
                TaskSpec("b", double, {"value": Ref("a", "sum")}),
            ]
        )
        assert result["b"] == {"sum": 6}
        assert result.order == ["a", "b"]

    def test_whole_result_ref(self, ctx):
        def passthrough(blob):
            return {"got": blob["sum"]}

        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [
                TaskSpec("a", add, {"a": 2, "b": 3}),
                TaskSpec("b", passthrough, {"blob": Ref("a")}),
            ]
        )
        assert result["b"] == {"got": 5}

    def test_missing_field_in_ref(self, ctx):
        engine = WorkflowEngine(ctx)
        with pytest.raises(WorkflowError):
            engine.execute(
                [
                    TaskSpec("a", add, {"a": 1, "b": 1}),
                    TaskSpec("b", double, {"value": Ref("a", "nope")}),
                ]
            )

    def test_task_failure_wrapped(self, ctx):
        def boom():
            raise RuntimeError("dead")

        engine = WorkflowEngine(ctx)
        with pytest.raises(TaskFailedError) as err:
            engine.execute([TaskSpec("a", boom)])
        assert err.value.task_id == "a"

    def test_clock_advances_by_cost(self, ctx):
        start = ctx.clock.now()
        engine = WorkflowEngine(ctx)
        engine.execute([TaskSpec("a", add, {"a": 1, "b": 1}, cost_s=5.0)])
        assert ctx.clock.now() >= start + 5.0


class TestProvenanceIntegration:
    def test_upstream_edges_recorded(self, ctx, keeper):
        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [
                TaskSpec("a", add, {"a": 1, "b": 2}),
                TaskSpec("b", double, {"value": Ref("a", "sum")}),
            ]
        )
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "b"})
        assert doc["used"]["_upstream"] == [result.task_ids["a"]]

    def test_task_duration_matches_cost(self, ctx, keeper):
        engine = WorkflowEngine(ctx)
        engine.execute([TaskSpec("a", add, {"a": 1, "b": 1}, cost_s=2.0)])
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "a"})
        assert doc["duration"] == pytest.approx(2.0, abs=1e-3)

    def test_workflow_record_emitted(self, ctx, keeper):
        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [TaskSpec("a", add, {"a": 1, "b": 1})], workflow_name="wf_x"
        )
        ctx.flush()
        doc = keeper.database.find_one({"type": "workflow"})
        assert doc["activity_id"] == "wf_x"
        assert doc["workflow_id"] == result.workflow_id


class TestScheduling:
    def test_hosts_assigned_from_cluster(self, ctx):
        engine = WorkflowEngine(ctx, cluster_hosts=("h1", "h2"))
        result = engine.execute(
            [
                TaskSpec("a", add, {"a": 1, "b": 1}),
                TaskSpec("b", add, {"a": 1, "b": 1}),
                TaskSpec("c", add, {"a": 1, "b": 1}),
            ]
        )
        assert set(result.hosts.values()) <= {"h1", "h2"}
        # least-loaded spreads work over both nodes
        assert len(set(result.hosts.values())) == 2

    def test_explicit_host_respected(self, ctx):
        engine = WorkflowEngine(ctx, cluster_hosts=("h1",))
        result = engine.execute(
            [TaskSpec("a", add, {"a": 1, "b": 1}, host="special")]
        )
        assert result.hosts["a"] == "special"

    def test_empty_cluster_rejected(self, ctx):
        with pytest.raises(WorkflowError):
            WorkflowEngine(ctx, cluster_hosts=())

    def test_pinned_tasks_count_toward_host_load(self, ctx):
        engine = WorkflowEngine(ctx, cluster_hosts=("h1", "h2"))
        result = engine.execute(
            [
                # heavy work pinned to h1 must make the balancer prefer h2
                TaskSpec("pinned", add, {"a": 1, "b": 1}, host="h1", cost_s=100.0),
                TaskSpec("free", add, {"a": 1, "b": 1}, cost_s=1.0),
            ]
        )
        assert result.hosts["pinned"] == "h1"
        assert result.hosts["free"] == "h2"
        assert engine._host_load["h1"] == pytest.approx(100.0)

    def test_pinned_host_outside_cluster_tracked_but_not_schedulable(self, ctx):
        engine = WorkflowEngine(ctx, cluster_hosts=("h1",))
        result = engine.execute(
            [
                TaskSpec("a", add, {"a": 1, "b": 1}, host="gpu-9", cost_s=50.0),
                TaskSpec("b", add, {"a": 1, "b": 1}),
            ]
        )
        assert result.hosts["a"] == "gpu-9"
        # the balancer never places free tasks on a host outside the cluster
        assert result.hosts["b"] == "h1"
        assert engine._host_load["gpu-9"] == pytest.approx(50.0)
