"""Tests for the Provenance Keeper service."""

from __future__ import annotations

import pytest

from repro.messaging.broker import InProcessBroker
from repro.provenance.keeper import ProvenanceKeeper, TASK_TOPIC
from repro.provenance.prov import RelationKind


def task_payload(task_id="t1", **overrides):
    doc = {
        "task_id": task_id,
        "campaign_id": "c1",
        "workflow_id": "w1",
        "activity_id": "square",
        "used": {"x": 3},
        "generated": {"y": 9},
        "started_at": 1.0,
        "ended_at": 2.0,
        "hostname": "node-1",
        "status": "FINISHED",
        "type": "task",
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def setup():
    broker = InProcessBroker()
    keeper = ProvenanceKeeper(broker)
    keeper.start()
    return broker, keeper


class TestIngestion:
    def test_message_lands_in_database(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload())
        assert keeper.processed_count == 1
        assert keeper.database.find_one({"task_id": "t1"})["generated"] == {"y": 9}

    def test_batch_ingestion(self, setup):
        broker, keeper = setup
        broker.publish_batch(TASK_TOPIC, [task_payload(f"t{i}") for i in range(5)])
        assert len(keeper.database) == 5

    def test_batch_flush_uses_batched_upsert_path(self, setup):
        broker, keeper = setup
        calls = []
        original = keeper.database.upsert_many

        def spy(docs, key_field="task_id"):
            docs = list(docs)
            calls.append(len(docs))
            return original(docs, key_field=key_field)

        keeper.database.upsert_many = spy
        broker.publish_batch(TASK_TOPIC, [task_payload(f"t{i}") for i in range(8)])
        assert calls == [8]
        assert keeper.processed_count == 8
        assert len(keeper.database) == 8

    def test_batch_with_rejects_keeps_valid_messages(self, setup):
        broker, keeper = setup
        payloads = [
            task_payload("t1"),
            {"task_id": "", "status": "FINISHED"},  # schema violation
            task_payload("t2"),
        ]
        broker.publish_batch(TASK_TOPIC, payloads)
        assert keeper.processed_count == 2
        assert len(keeper.rejected) == 1
        assert {d["task_id"] for d in keeper.database.all()} == {"t1", "t2"}

    def test_malformed_payload_rejected_same_on_single_path(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload("t-bad", used=5))
        assert keeper.processed_count == 0
        assert len(keeper.rejected) == 1 and "malformed" in keeper.rejected[0][1]
        assert broker.delivery_errors == []

    def test_structurally_malformed_payload_does_not_discard_batch(self, setup):
        broker, keeper = setup
        payloads = [
            task_payload("t1"),
            task_payload("t-bad", used=5),  # from_dict raises, not a schema error
            task_payload("t2"),
        ]
        broker.publish_batch(TASK_TOPIC, payloads)
        assert {d["task_id"] for d in keeper.database.all()} == {"t1", "t2"}
        assert len(keeper.rejected) == 1
        assert "malformed" in keeper.rejected[0][1]

    def test_ingest_batch_direct(self):
        keeper = ProvenanceKeeper(InProcessBroker())
        accepted = keeper.ingest_batch(
            [task_payload("a"), task_payload("a", status="FINISHED"), task_payload("b")]
        )
        assert accepted == 3
        assert len(keeper.database) == 2  # lifecycle collapse inside the batch

    def test_batch_prov_projection_still_built(self, setup):
        broker, keeper = setup
        broker.publish_batch(
            TASK_TOPIC,
            [task_payload("tool-9", type="tool_execution"), task_payload("t9")],
        )
        assert "tool-9" in keeper.prov
        assert "t9/generated/y" in keeper.prov

    def test_lifecycle_updates_collapse(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload(status="RUNNING", ended_at=None))
        broker.publish(TASK_TOPIC, task_payload(status="FINISHED"))
        assert len(keeper.database) == 1
        assert keeper.database.find_one({"task_id": "t1"})["status"] == "FINISHED"

    def test_invalid_message_rejected_not_fatal(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, {"task_id": "", "status": "FINISHED"})
        assert keeper.processed_count == 0
        assert len(keeper.rejected) == 1
        assert not broker.delivery_errors  # rejection is not an exception

    def test_stop_detaches(self, setup):
        broker, keeper = setup
        keeper.stop()
        broker.publish(TASK_TOPIC, task_payload())
        assert keeper.processed_count == 0

    def test_context_manager(self):
        broker = InProcessBroker()
        with ProvenanceKeeper(broker) as keeper:
            broker.publish(TASK_TOPIC, task_payload())
            assert keeper.processed_count == 1
        broker.publish(TASK_TOPIC, task_payload("t2"))
        assert keeper.processed_count == 1


class TestProvProjection:
    def test_activity_and_entities_created(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload())
        assert "t1" in keeper.prov
        assert "t1/used/x" in keeper.prov
        assert "t1/generated/y" in keeper.prov

    def test_agent_association_recorded(self, setup):
        broker, keeper = setup
        broker.publish(
            TASK_TOPIC,
            task_payload(type="tool_execution", agent_id="prov-agent"),
        )
        assert keeper.prov.activities_of_agent("prov-agent") == ["t1"]

    def test_informed_by_links_llm_to_tool(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload("tool-1", type="tool_execution"))
        broker.publish(
            TASK_TOPIC,
            task_payload("llm-1", type="llm_interaction", informed_by="tool-1"),
        )
        rels = keeper.prov.relations(RelationKind.WAS_INFORMED_BY)
        assert len(rels) == 1 and rels[0].subject == "llm-1"

    def test_prov_document_optional(self):
        broker = InProcessBroker()
        keeper = ProvenanceKeeper(broker, build_prov_document=False)
        keeper.start()
        broker.publish(TASK_TOPIC, task_payload())
        assert keeper.prov is None
        assert keeper.processed_count == 1


class TestDistributedKeepers:
    def test_two_keepers_both_ingest(self):
        broker = InProcessBroker()
        k1 = ProvenanceKeeper(broker, keeper_id="k1")
        k2 = ProvenanceKeeper(broker, keeper_id="k2")
        k1.start(), k2.start()
        broker.publish(TASK_TOPIC, task_payload())
        assert k1.processed_count == 1
        assert k2.processed_count == 1


class TestIngestStats:
    def test_stats_snapshot_counts_accepted_and_rejected(self, setup):
        broker, keeper = setup
        broker.publish_batch(
            TASK_TOPIC,
            [
                task_payload("t1"),
                {"task_id": "", "status": "FINISHED"},  # schema violation
                task_payload("t-bad", used=5),  # malformed
                task_payload("t2"),
            ],
        )
        stats = keeper.stats()
        assert stats["keeper_id"] == keeper.keeper_id
        assert stats["accepted"] == 2
        assert stats["rejected"] == 2
        assert stats["rejection_reasons"]["malformed payload"] == 1
        assert sum(stats["rejection_reasons"].values()) == 2

    def test_stats_is_a_snapshot_not_a_live_view(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, task_payload())
        snap = keeper.stats()
        broker.publish(TASK_TOPIC, task_payload("t2"))
        assert snap["accepted"] == 1
        assert keeper.stats()["accepted"] == 2

    def test_schema_reasons_keep_their_message(self, setup):
        broker, keeper = setup
        broker.publish(TASK_TOPIC, {"task_id": "", "status": "FINISHED"})
        reasons = keeper.stats()["rejection_reasons"]
        assert len(reasons) == 1
        (reason,) = reasons
        assert "malformed" not in reason

    def test_reason_buckets_fold_embedded_payload_values(self, setup):
        # reasons embedding task ids / bad values must share one bucket,
        # not mint a new one per rejected message
        broker, keeper = setup
        for i in range(20):
            broker.publish(
                TASK_TOPIC,
                task_payload(f"skewed-{i}", started_at=10.0, ended_at=1.0),
            )
            broker.publish(TASK_TOPIC, task_payload(f"odd-{i}", status=f"BOGUS-{i}"))
        reasons = keeper.stats()["rejection_reasons"]
        assert len(reasons) == 2
        assert sum(reasons.values()) == 40

    def test_concurrent_batches_account_exactly(self):
        import threading

        keeper = ProvenanceKeeper(InProcessBroker())
        n_threads, per_thread = 4, 60

        def writer(worker):
            for i in range(0, per_thread, 10):
                keeper.ingest_batch(
                    [
                        task_payload(f"w{worker}-t{i + j}")
                        for j in range(8)
                    ]
                    + [{"task_id": "", "status": "FINISHED"}] * 2
                )

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = keeper.stats()
        assert stats["accepted"] == n_threads * (per_thread // 10) * 8
        assert stats["rejected"] == n_threads * (per_thread // 10) * 2
        assert len(keeper.database) == stats["accepted"]

    def test_keeper_over_sharded_store_groups_per_shard(self):
        from repro.storage import ShardedProvenanceStore

        store = ShardedProvenanceStore(4, ingest_parallel_min=1)
        keeper = ProvenanceKeeper(InProcessBroker(), store)
        keeper.ingest_batch(
            [task_payload(f"t{i}", workflow_id=f"wf-{i % 6}") for i in range(30)]
        )
        assert len(store) == 30
        assert sum(len(s) > 0 for s in store.shards) > 1  # actually spread
        assert keeper.stats()["accepted"] == 30
