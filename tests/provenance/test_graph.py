"""Tests for the provenance graph view."""

from __future__ import annotations

import pytest

from repro.errors import ProvenanceError
from repro.provenance.graph import ProvenanceGraph


def docs_with_upstream():
    """a -> b -> d ; a -> c -> d (diamond via explicit upstream links)."""
    return [
        {"task_id": "a", "activity_id": "gen", "used": {}, "generated": {}},
        {
            "task_id": "b",
            "activity_id": "left",
            "used": {"_upstream": ["a"]},
            "generated": {},
        },
        {
            "task_id": "c",
            "activity_id": "right",
            "used": {"_upstream": ["a"]},
            "generated": {},
        },
        {
            "task_id": "d",
            "activity_id": "join",
            "used": {"_upstream": ["b", "c"]},
            "generated": {},
        },
    ]


class TestExplicitLinks:
    def test_upstream_downstream(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert g.upstream("d") == {"a", "b", "c"}
        assert g.downstream("a") == {"b", "c", "d"}

    def test_parents_children(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert set(g.parents("d")) == {"b", "c"}
        assert g.children("a") == ["b", "c"]

    def test_causal_chain(self):
        g = ProvenanceGraph(docs_with_upstream())
        chain = g.causal_chain("a", "d")
        assert chain[0] == "a" and chain[-1] == "d" and len(chain) == 3

    def test_unrelated_chain_is_none(self):
        docs = docs_with_upstream() + [
            {"task_id": "x", "activity_id": "iso", "used": {}, "generated": {}}
        ]
        g = ProvenanceGraph(docs)
        assert g.causal_chain("x", "d") is None

    def test_roots_and_leaves(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert g.roots() == ["a"]
        assert g.leaves() == ["d"]

    def test_critical_path_spans_diamond(self):
        g = ProvenanceGraph(docs_with_upstream())
        path = g.critical_path()
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_unknown_task_raises(self):
        g = ProvenanceGraph(docs_with_upstream())
        with pytest.raises(ProvenanceError):
            g.upstream("ghost")

    def test_acyclic(self):
        assert ProvenanceGraph(docs_with_upstream()).is_acyclic()


class TestImplicitDataflowLinks:
    def test_value_match_creates_edge(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {"conf": "mol-77"}},
            {"task_id": "q", "used": {"conf": "mol-77"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == ["q"]

    def test_trivial_values_not_linked(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {"flag": 1}},
            {"task_id": "q", "used": {"flag": 1}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == []

    def test_string_upstream_accepted(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {}},
            {"task_id": "q", "used": {"_upstream": "p"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == ["q"]
