"""Tests for the provenance graph view."""

from __future__ import annotations

import pytest

from repro.errors import ProvenanceError
from repro.provenance.graph import ProvenanceGraph, _value_key


def docs_with_upstream():
    """a -> b -> d ; a -> c -> d (diamond via explicit upstream links)."""
    return [
        {"task_id": "a", "activity_id": "gen", "used": {}, "generated": {}},
        {
            "task_id": "b",
            "activity_id": "left",
            "used": {"_upstream": ["a"]},
            "generated": {},
        },
        {
            "task_id": "c",
            "activity_id": "right",
            "used": {"_upstream": ["a"]},
            "generated": {},
        },
        {
            "task_id": "d",
            "activity_id": "join",
            "used": {"_upstream": ["b", "c"]},
            "generated": {},
        },
    ]


class TestExplicitLinks:
    def test_upstream_downstream(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert g.upstream("d") == {"a", "b", "c"}
        assert g.downstream("a") == {"b", "c", "d"}

    def test_parents_children(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert set(g.parents("d")) == {"b", "c"}
        assert g.children("a") == ["b", "c"]

    def test_causal_chain(self):
        g = ProvenanceGraph(docs_with_upstream())
        chain = g.causal_chain("a", "d")
        assert chain[0] == "a" and chain[-1] == "d" and len(chain) == 3

    def test_unrelated_chain_is_none(self):
        docs = docs_with_upstream() + [
            {"task_id": "x", "activity_id": "iso", "used": {}, "generated": {}}
        ]
        g = ProvenanceGraph(docs)
        assert g.causal_chain("x", "d") is None

    def test_roots_and_leaves(self):
        g = ProvenanceGraph(docs_with_upstream())
        assert g.roots() == ["a"]
        assert g.leaves() == ["d"]

    def test_critical_path_spans_diamond(self):
        g = ProvenanceGraph(docs_with_upstream())
        path = g.critical_path()
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_unknown_task_raises(self):
        g = ProvenanceGraph(docs_with_upstream())
        with pytest.raises(ProvenanceError):
            g.upstream("ghost")

    def test_acyclic(self):
        assert ProvenanceGraph(docs_with_upstream()).is_acyclic()


class TestImplicitDataflowLinks:
    def test_value_match_creates_edge(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {"conf": "mol-77"}},
            {"task_id": "q", "used": {"conf": "mol-77"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == ["q"]

    def test_trivial_values_not_linked(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {"flag": 1}},
            {"task_id": "q", "used": {"flag": 1}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == []

    def test_string_upstream_accepted(self):
        docs = [
            {"task_id": "p", "used": {}, "generated": {}},
            {"task_id": "q", "used": {"_upstream": "p"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.children("p") == ["q"]

    def test_self_link_suppressed(self):
        # a task consuming the very value it generated is not its own parent
        docs = [
            {"task_id": "p", "used": {"v": "tok-1"}, "generated": {"v": "tok-1"}},
        ]
        g = ProvenanceGraph(docs)
        assert g.parents("p") == [] and g.children("p") == []

    def test_shared_value_links_all_producers(self):
        docs = [
            {"task_id": "p1", "used": {}, "generated": {"v": "tok-9"}},
            {"task_id": "p2", "used": {}, "generated": {"v": "tok-9"}},
            {"task_id": "q", "used": {"v": "tok-9"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert set(g.parents("q")) == {"p1", "p2"}

    def test_same_value_different_names_do_not_link(self):
        # value identity is (name, value): a coincidental number under
        # another field name is not dataflow
        docs = [
            {"task_id": "p", "used": {}, "generated": {"energy": 42.5}},
            {"task_id": "q", "used": {"threshold": 42.5}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.parents("q") == []

    def test_upstream_field_not_value_linked(self):
        # used._upstream carries control ids; it must never be treated as
        # a dataflow value even when a task "generates" the same string
        docs = [
            {"task_id": "p", "used": {}, "generated": {"_upstream": "x"}},
            {"task_id": "q", "used": {"_upstream": "x"}, "generated": {}},
        ]
        g = ProvenanceGraph(docs)
        assert g.parents("q") == []


class TestValueKey:
    def test_bools_rejected_before_numeric_check(self):
        assert _value_key("flag", True) is None
        assert _value_key("flag", False) is None

    def test_trivial_numbers_rejected(self):
        for trivial in (0, 1, -1, 0.0, 1.0, -1.0):
            assert _value_key("n", trivial) is None

    def test_meaningful_scalars_link(self):
        assert _value_key("x", 2) == ("x", 2)
        assert _value_key("x", -3.5) == ("x", -3.5)
        assert _value_key("x", "mol-77") == ("x", "mol-77")

    def test_unhashable_payloads_rejected(self):
        assert _value_key("x", [1, 2]) is None
        assert _value_key("x", {"a": 1}) is None
        assert _value_key("x", None) is None
