"""Tests for the task provenance message schema."""

from __future__ import annotations

import pytest

from repro.errors import SchemaViolationError
from repro.provenance.messages import (
    COMMON_FIELDS,
    TaskProvenanceMessage,
)


def make_message(**overrides) -> TaskProvenanceMessage:
    base = dict(
        task_id="1753457858.952133_0_3_973",
        campaign_id="0552ae57",
        workflow_id="4f2051b9",
        activity_id="run_individual_bde",
        used={"e0": -155.03, "frags": {"label": "C-H_3"}},
        generated={"bond_id": "C-H_3", "bd_energy": 98.648},
        started_at=1753457858.952133,
        ended_at=1753457859.009404,
        hostname="frontier00084",
        status="FINISHED",
        type="task",
    )
    base.update(overrides)
    return TaskProvenanceMessage(**base)


class TestValidation:
    def test_valid_message_passes(self):
        make_message().validate()

    @pytest.mark.parametrize("field", ["task_id", "workflow_id", "activity_id"])
    def test_missing_required_field(self, field):
        with pytest.raises(SchemaViolationError):
            make_message(**{field: ""}).validate()

    def test_bad_status(self):
        with pytest.raises(SchemaViolationError):
            make_message(status="DONE").validate()

    def test_bad_type(self):
        with pytest.raises(SchemaViolationError):
            make_message(type="banana").validate()

    def test_time_travel_rejected(self):
        with pytest.raises(SchemaViolationError):
            make_message(started_at=10.0, ended_at=5.0).validate()

    def test_agent_record_types_allowed(self):
        make_message(type="tool_execution").validate()
        make_message(type="llm_interaction").validate()


class TestDerived:
    def test_duration(self):
        msg = make_message(started_at=1.0, ended_at=3.5)
        assert msg.duration == 2.5

    def test_duration_none_while_running(self):
        msg = make_message(ended_at=None, status="RUNNING")
        assert msg.duration is None


class TestConversions:
    def test_roundtrip(self):
        msg = make_message()
        back = TaskProvenanceMessage.from_dict(msg.to_dict())
        assert back.to_dict() == msg.to_dict()

    def test_to_dict_includes_duration(self):
        doc = make_message(started_at=0.0, ended_at=2.0).to_dict()
        assert doc["duration"] == 2.0

    def test_unknown_keys_preserved_as_tags(self):
        doc = make_message().to_dict()
        doc["custom_annotation"] = "keepme"
        back = TaskProvenanceMessage.from_dict(doc)
        assert back.tags["custom_annotation"] == "keepme"

    def test_flatten_produces_dot_paths(self):
        flat = make_message().flatten()
        assert flat["used.frags.label"] == "C-H_3"
        assert flat["generated.bd_energy"] == 98.648

    def test_agent_links_serialised(self):
        msg = make_message(
            type="llm_interaction", agent_id="prov-agent", informed_by="tool-1"
        )
        doc = msg.to_dict()
        assert doc["agent_id"] == "prov-agent"
        assert doc["informed_by"] == "tool-1"


class TestCommonFields:
    def test_core_identifiers_documented(self):
        for key in ("task_id", "campaign_id", "workflow_id", "activity_id"):
            assert key in COMMON_FIELDS
            assert COMMON_FIELDS[key]["description"]

    def test_telemetry_paths_documented(self):
        assert "telemetry_at_end.cpu.percent" in COMMON_FIELDS

    def test_duration_documented(self):
        assert "duration" in COMMON_FIELDS
