"""Planner/index correctness: indexed execution must equal full scan.

The planner's contract is that candidate sets are *supersets* of the
true matches and the residual verification makes results exact — so for
every filter document, a database with indexes and one without must
return identical results.  Hypothesis generates randomized stores and
filters to hammer that invariant; deterministic tests cover index
maintenance across the upsert lifecycle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatabaseError
from repro.provenance.database import (
    DEFAULT_EQUALITY_INDEX_FIELDS,
    DEFAULT_RANGE_INDEX_FIELDS,
    ProvenanceDatabase,
)

# ---------------------------------------------------------------------------
# randomized parity: indexed results == full-scan results
# ---------------------------------------------------------------------------

_statuses = st.sampled_from(["FINISHED", "FAILED", "RUNNING", "SUBMITTED"])
_activities = st.sampled_from(["run_dft", "postprocess", "prepare"])
_durations = st.one_of(
    st.none(),
    st.integers(0, 5),
    st.floats(0, 10, allow_nan=False),
    st.sampled_from(["fast", "slow"]),  # wrong-typed values must not break parity
)


@st.composite
def stores(draw):
    n = draw(st.integers(0, 40))
    docs = []
    for i in range(n):
        doc = {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"w{draw(st.integers(0, 3))}",
            "status": draw(_statuses),
            "activity_id": draw(_activities),
            "duration": draw(_durations),
            "generated": {"bond_id": f"C-H_{i % 5}"},
        }
        if draw(st.booleans()):  # holes: missing fields index as None
            del doc["duration"]
        if draw(st.booleans()):
            doc["tags"] = [i, "x"]  # unhashable value on occasion
        docs.append(doc)
    return docs


_eq_clause = st.builds(
    lambda f, v: {f: v},
    st.sampled_from(["status", "workflow_id", "activity_id", "task_id", "missing"]),
    st.one_of(_statuses, st.sampled_from(["w0", "w1", "t3", "nope"]), st.none()),
)
_op_clause = st.builds(
    lambda f, op, v: {f: {op: v}},
    st.sampled_from(["duration", "status", "workflow_id"]),
    st.sampled_from(["$eq", "$ne", "$gt", "$gte", "$lt", "$lte"]),
    st.one_of(st.integers(0, 6), st.floats(0, 10, allow_nan=False), st.just("w1")),
)
_in_clause = st.builds(
    lambda f, vals: {f: {"$in": vals}},
    st.sampled_from(["status", "activity_id", "duration"]),
    st.lists(st.one_of(_statuses, st.integers(0, 5)), max_size=3),
)
_exists_clause = st.builds(
    lambda f, b: {f: {"$exists": b}},
    st.sampled_from(["duration", "tags", "missing"]),
    st.booleans(),
)
_regex_clause = st.builds(
    lambda p: {"generated.bond_id": {"$regex": p}},
    st.sampled_from(["^C-H", "_2$", "C.H_[13]"]),
)
_simple_clause = st.one_of(_eq_clause, _op_clause, _in_clause, _exists_clause, _regex_clause)


def _merge(clauses: list[dict]) -> dict:
    out: dict = {}
    for c in clauses:
        for k, v in c.items():
            if k in out and isinstance(out[k], dict) and isinstance(v, dict):
                out[k].update(v)
            else:
                out[k] = v
    return out


_filters = st.one_of(
    st.lists(_simple_clause, min_size=1, max_size=3).map(_merge),
    st.builds(
        lambda branches: {"$or": branches},
        st.lists(_simple_clause, min_size=1, max_size=3),
    ),
    st.builds(
        lambda subs, extra: _merge([{"$and": subs}, extra]),
        st.lists(_simple_clause, min_size=1, max_size=2),
        _simple_clause,
    ),
)


@settings(max_examples=200, deadline=None)
@given(docs=stores(), filt=_filters)
def test_indexed_find_equals_full_scan(docs, filt):
    indexed = ProvenanceDatabase()
    scan = ProvenanceDatabase(equality_index_fields=(), range_index_fields=())
    indexed.insert_many(docs)
    scan.insert_many(docs)
    assert indexed.find(filt) == scan.find(filt)
    assert indexed.count(filt) == scan.count(filt)


@settings(max_examples=100, deadline=None)
@given(docs=stores(), filt=_filters)
def test_upsert_built_store_matches_scan(docs, filt):
    """The same invariant when the store is built through upserts."""
    indexed = ProvenanceDatabase()
    scan = ProvenanceDatabase(equality_index_fields=(), range_index_fields=())
    for db in (indexed, scan):
        for d in docs:
            db.upsert(d)
        # second pass: lifecycle updates touch indexed fields
        for d in docs[::2]:
            db.upsert({**d, "status": "FINISHED", "duration": 1.5})
    assert indexed.find(filt) == scan.find(filt)


# ---------------------------------------------------------------------------
# index maintenance across the upsert lifecycle
# ---------------------------------------------------------------------------


class TestIndexMaintenance:
    def test_running_to_finished_collapse_keeps_indexes_consistent(self):
        db = ProvenanceDatabase()
        db.upsert({"task_id": "t1", "status": "RUNNING", "started_at": 1.0, "duration": None})
        assert db.find({"status": "RUNNING"})[0]["task_id"] == "t1"
        db.upsert({"task_id": "t1", "status": "FINISHED", "ended_at": 3.0, "duration": 2.0})
        assert db.find({"status": "RUNNING"}) == []
        assert db.find({"status": "FINISHED"})[0]["task_id"] == "t1"
        assert db.find({"duration": {"$gte": 2.0}})[0]["task_id"] == "t1"
        assert len(db) == 1

    def test_range_query_after_bulk_insert_rebuilds_index(self):
        db = ProvenanceDatabase()
        db.insert_many(
            {"task_id": f"t{i}", "status": "RUNNING", "duration": float(i)}
            for i in range(50)
        )
        # range index is dirty from the bulk load; a query rebuilds it
        assert len(db.find({"duration": {"$gt": 44.5}})) == 5
        assert db.explain({"duration": {"$gt": 44.5}})["strategy"] == "index"

    def test_upsert_after_bulk_upsert_many(self):
        db = ProvenanceDatabase()
        db.upsert_many(
            [{"task_id": f"t{i}", "status": "RUNNING", "duration": float(i)} for i in range(50)]
        )
        db.upsert({"task_id": "t10", "status": "FAILED", "duration": 100.0})
        assert db.find({"duration": {"$gt": 99.0}})[0]["task_id"] == "t10"
        assert db.count({"status": "RUNNING"}) == 49
        assert db.count() == 50

    def test_upsert_many_single_batch(self):
        db = ProvenanceDatabase()
        replaced = db.upsert_many(
            [{"task_id": "a", "status": "RUNNING"}, {"task_id": "b", "status": "RUNNING"}]
        )
        assert replaced == 0
        replaced = db.upsert_many(
            [
                {"task_id": "a", "status": "FINISHED"},
                {"task_id": "c", "status": "RUNNING"},
            ]
        )
        assert replaced == 1
        assert db.count() == 3
        assert {d["task_id"] for d in db.find({"status": "RUNNING"})} == {"b", "c"}

    def test_clear_resets_indexes(self):
        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "status": "FINISHED", "duration": 1.0})
        db.clear()
        assert db.find({"status": "FINISHED"}) == []
        db.insert({"task_id": "t2", "status": "FINISHED", "duration": 2.0})
        assert db.find({"duration": {"$gt": 1.5}})[0]["task_id"] == "t2"

    def test_nan_values_do_not_corrupt_range_index(self):
        indexed = ProvenanceDatabase()
        scan = ProvenanceDatabase(equality_index_fields=(), range_index_fields=())
        durations = [0.0, 1.0, 0.0, float("nan"), 3.0, 1.0]
        for db in (indexed, scan):
            for i, d in enumerate(durations):
                db.insert({"task_id": f"t{i}", "duration": d})
        filt = {"duration": {"$lt": 3.0}}
        assert indexed.find(filt) == scan.find(filt)
        assert {d["task_id"] for d in indexed.find(filt)} == {"t0", "t1", "t2", "t5"}
        # NaN never satisfies a range operator on either path
        assert indexed.find({"duration": {"$gte": float("nan")}}) == []

    def test_unhashable_indexed_value_stays_findable(self):
        db = ProvenanceDatabase(equality_index_fields=("payload",))
        db.insert({"task_id": "t1", "payload": [1, 2]})
        db.insert({"task_id": "t2", "payload": "plain"})
        assert db.find({"payload": "plain"})[0]["task_id"] == "t2"
        # the unhashable doc lives in the overflow set and is verified
        assert db.find({"payload": {"$in": [[1, 2]]}})[0]["task_id"] == "t1"

    def test_unhashable_in_probe_falls_back_to_scan(self):
        # frozenset({1}) == {1}: a hashable stored value can equal an
        # unhashable probe, so the planner must not answer from the index
        db = ProvenanceDatabase(equality_index_fields=("payload",))
        db.insert({"task_id": "t1", "payload": frozenset({1})})
        assert db.find({"payload": {"$in": [{1}]}})[0]["task_id"] == "t1"
        assert db.explain({"payload": {"$in": [{1}]}})["strategy"] == "scan"

    def test_compiled_regex_pattern_accepted(self):
        import re

        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "status": "FINISHED"})
        got = db.find({"status": {"$regex": re.compile("fin", re.IGNORECASE)}})
        assert [d["task_id"] for d in got] == ["t1"]

    def test_non_leading_match_stage_validated(self):
        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "status": "FINISHED"})
        with pytest.raises(DatabaseError):
            db.aggregate(
                [
                    {"$match": {"status": "NOPE"}},
                    {"$match": {"status": {"$in": "oops"}}},
                ]
            )


# ---------------------------------------------------------------------------
# explain / plan selection
# ---------------------------------------------------------------------------


class TestExplain:
    @pytest.fixture
    def db(self):
        db = ProvenanceDatabase()
        db.insert_many(
            {
                "task_id": f"t{i}",
                "status": "FINISHED" if i % 2 else "FAILED",
                "workflow_id": f"w{i % 3}",
                "duration": float(i),
                "note": f"n{i}",
            }
            for i in range(30)
        )
        return db

    def test_defaults_are_declared(self):
        assert "task_id" in DEFAULT_EQUALITY_INDEX_FIELDS
        assert "duration" in DEFAULT_RANGE_INDEX_FIELDS

    def test_equality_uses_index(self, db):
        plan = db.explain({"status": "FAILED"})
        assert plan["strategy"] == "index"
        assert plan["access_paths"] == ["eq(status)"]
        assert plan["candidates"] == 15
        assert plan["total_docs"] == 30

    def test_most_selective_index_first(self, db):
        plan = db.explain({"status": "FINISHED", "task_id": "t3"})
        assert plan["strategy"] == "index"
        assert plan["access_paths"][0] == "eq(task_id)"
        assert plan["candidates"] == 1

    def test_range_uses_sorted_index(self, db):
        plan = db.explain({"duration": {"$gte": 25.0}})
        assert plan["strategy"] == "index"
        assert plan["access_paths"] == ["range(duration)"]
        assert plan["candidates"] == 5

    def test_or_of_indexable_branches(self, db):
        plan = db.explain({"$or": [{"status": "FAILED"}, {"workflow_id": "w1"}]})
        assert plan["strategy"] == "index"

    def test_regex_and_unindexed_fall_back_to_scan(self, db):
        assert db.explain({"note": "n3"})["strategy"] == "scan"
        assert db.explain({"note": {"$regex": "^n"}})["strategy"] == "scan"
        assert db.explain()["strategy"] == "scan"

    def test_validation_errors_raised_even_with_empty_candidates(self, db):
        with pytest.raises(DatabaseError):
            db.explain({"status": "NOPE", "duration": {"$frob": 1}})
        with pytest.raises(DatabaseError):
            db.find({"status": "NOPE", "duration": {"$frob": 1}})

    def test_disabled_indexes_always_scan(self):
        db = ProvenanceDatabase(equality_index_fields=(), range_index_fields=())
        db.insert({"task_id": "t1", "status": "FINISHED"})
        assert db.explain({"status": "FINISHED"})["strategy"] == "scan"
        assert db.find({"status": "FINISHED"})[0]["task_id"] == "t1"
