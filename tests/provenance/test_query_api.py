"""Tests for the Query API facade."""

from __future__ import annotations

import pytest

from repro.provenance.database import ProvenanceDatabase
from repro.provenance.query_api import QueryAPI


@pytest.fixture
def api() -> QueryAPI:
    db = ProvenanceDatabase()
    db.insert_many(
        [
            {
                "task_id": "t1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "square",
                "status": "FINISHED",
                "type": "task",
                "used": {},
                "generated": {"y": 4},
                "duration": 1.0,
            },
            {
                "task_id": "t2",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "average",
                "status": "FAILED",
                "type": "task",
                "used": {"_upstream": ["t1"]},
                "generated": {},
                "duration": 2.0,
            },
            {
                "task_id": "tool-1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "in_memory_query",
                "status": "FINISHED",
                "type": "tool_execution",
                "used": {"query": "..." },
                "generated": {},
            },
        ]
    )
    return QueryAPI(db)


class TestTaskReads:
    def test_tasks_excludes_agent_records(self, api):
        assert {t["task_id"] for t in api.tasks()} == {"t1", "t2"}

    def test_tasks_with_filter(self, api):
        assert api.tasks({"status": "FAILED"})[0]["task_id"] == "t2"

    def test_single_task(self, api):
        assert api.task("t1")["activity_id"] == "square"
        assert api.task("ghost") is None

    def test_workflows_campaigns_activities(self, api):
        assert api.workflows() == ["w1"]
        assert api.campaigns() == ["c1"]
        assert set(api.activities("w1")) == {"square", "average", "in_memory_query"}

    def test_status_counts(self, api):
        counts = api.status_counts()
        assert counts["FINISHED"] == 2 and counts["FAILED"] == 1

    def test_failed_tasks(self, api):
        assert [t["task_id"] for t in api.failed_tasks()] == ["t2"]

    def test_agent_interactions(self, api):
        assert [t["task_id"] for t in api.agent_interactions()] == ["tool-1"]


class TestCounts:
    def test_counts_matches_group_aggregation(self, api):
        assert api.counts("status") == {"FINISHED": 2, "FAILED": 1}
        rows = api.database.aggregate(
            [{"$group": {"_id": "$status", "n": {"$sum": 1}}}]
        )
        assert api.counts("status") == {r["_id"]: r["n"] for r in rows}

    def test_counts_includes_null_bucket(self, api):
        api.database.upsert({"task_id": "t9", "type": "task"})
        assert api.counts("status")[None] == 1

    def test_counts_with_filter(self, api):
        assert api.counts("status", {"type": "task"}) == {
            "FINISHED": 1,
            "FAILED": 1,
        }

    def test_catalogue_reads_skip_materialisation(self, api, monkeypatch):
        # workflows()/campaigns()/counts() must answer from the index,
        # never by walking documents (the scan fallback and every find
        # funnel through _execute_filter, so poisoning it proves the
        # fast path was taken)
        def boom(*a, **k):  # pragma: no cover - fails the test if called
            raise AssertionError("scanned documents for a catalogue read")

        monkeypatch.setattr(api.database, "_execute_filter", boom)
        assert api.workflows() == ["w1"]
        assert api.campaigns() == ["c1"]
        assert api.counts("status")["FINISHED"] == 2
        # a filtered read is allowed (and expected) to scan
        with pytest.raises(AssertionError):
            api.counts("status", {"type": "task"})

    def test_counts_over_sharded_store(self):
        from repro.storage import ShardedProvenanceStore

        store = ShardedProvenanceStore(3)
        store.upsert_many(
            [
                {"task_id": f"t{i}", "workflow_id": f"w{i % 4}", "type": "task",
                 "status": "FINISHED" if i % 2 else "FAILED"}
                for i in range(12)
            ]
        )
        api = QueryAPI(store)
        assert api.counts("status") == {"FAILED": 6, "FINISHED": 6}
        assert set(api.workflows()) == {"w0", "w1", "w2", "w3"}


class TestViews:
    def test_to_frame_flattens(self, api):
        frame = api.to_frame({"type": "task"})
        assert "generated.y" in frame.columns
        assert len(frame) == 2

    def test_lineage_and_impact(self, api):
        assert api.lineage("t2") == {"t1"}
        assert api.impact("t1") == {"t2"}


class TestCachedTallies:
    """counts()/status_counts()/failed_tasks() ride the versioned cache."""

    def _monitored(self):
        db = ProvenanceDatabase()
        db.upsert_many(
            [
                {"task_id": f"t{i}", "workflow_id": "w1", "type": "task",
                 "status": "FAILED" if i % 4 == 1 else "FINISHED"}
                for i in range(16)
            ]
        )
        return QueryAPI(db), db

    def test_repeated_counts_hit_cache(self):
        api, db = self._monitored()
        first = api.counts("status")
        before = api.cache.stats()
        second = api.counts("status")
        after = api.cache.stats()
        assert second == first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_status_counts_shares_the_counts_entry(self):
        api, db = self._monitored()
        api.counts("status")
        before = api.cache.stats()["hits"]
        assert api.status_counts() == {"FINISHED": 12, "FAILED": 4}
        assert api.cache.stats()["hits"] == before + 1

    def test_version_bump_invalidates_counts(self):
        api, db = self._monitored()
        assert api.counts("status")["FAILED"] == 4
        db.upsert({"task_id": "t-new", "workflow_id": "w1", "type": "task",
                   "status": "FAILED"})
        invalidations = api.cache.stats()["invalidations"]
        # the very next read re-executes against the bumped version ...
        assert api.counts("status")["FAILED"] == 5
        assert api.cache.stats()["invalidations"] == invalidations + 1
        # ... and repeats hit again
        before = api.cache.stats()["hits"]
        assert api.counts("status")["FAILED"] == 5
        assert api.cache.stats()["hits"] == before + 1

    def test_failed_tasks_cached_and_invalidated(self):
        api, db = self._monitored()
        first = api.failed_tasks()
        before = api.cache.stats()["hits"]
        second = api.failed_tasks()
        assert second == first
        assert api.cache.stats()["hits"] == before + 1
        # a caller mutating its answer must not poison later reads —
        # neither the list itself nor the documents inside it
        second.append({"task_id": "bogus"})
        second[0]["acknowledged"] = True
        third = api.failed_tasks()
        assert len(third) == len(first)
        assert "acknowledged" not in third[0]
        # new provenance invalidates exactly once
        db.upsert({"task_id": "t-bad", "workflow_id": "w1", "type": "task",
                   "status": "FAILED"})
        assert {t["task_id"] for t in api.failed_tasks()} == (
            {t["task_id"] for t in first} | {"t-bad"}
        )

    def test_filtered_counts_key_separately(self):
        api, db = self._monitored()
        all_counts = api.counts("status")
        filtered = api.counts("status", {"status": "FAILED"})
        assert filtered == {"FAILED": 4}
        assert all_counts != filtered
        # both entries live side by side and both hit on repeat
        before = api.cache.stats()["hits"]
        api.counts("status")
        api.counts("status", {"status": "FAILED"})
        assert api.cache.stats()["hits"] == before + 2

    def test_unversioned_store_bypasses_cache(self):
        class Min:
            """A minimal backend without version(): no caching possible."""

            def __init__(self, db):
                self._db = db

            def field_counts(self, field, filt=None):
                return self._db.field_counts(field, filt)

            def find(self, filt=None, **kw):
                return self._db.find(filt, **kw)

        api, db = self._monitored()
        bare = QueryAPI(Min(db))
        assert bare.counts("status")["FINISHED"] == 12
        assert bare.failed_tasks()
        assert bare.cache.stats()["hits"] == 0
        assert bare.cache.stats()["misses"] == 0
