"""Tests for the Query API facade."""

from __future__ import annotations

import pytest

from repro.provenance.database import ProvenanceDatabase
from repro.provenance.query_api import QueryAPI


@pytest.fixture
def api() -> QueryAPI:
    db = ProvenanceDatabase()
    db.insert_many(
        [
            {
                "task_id": "t1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "square",
                "status": "FINISHED",
                "type": "task",
                "used": {},
                "generated": {"y": 4},
                "duration": 1.0,
            },
            {
                "task_id": "t2",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "average",
                "status": "FAILED",
                "type": "task",
                "used": {"_upstream": ["t1"]},
                "generated": {},
                "duration": 2.0,
            },
            {
                "task_id": "tool-1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "in_memory_query",
                "status": "FINISHED",
                "type": "tool_execution",
                "used": {"query": "..." },
                "generated": {},
            },
        ]
    )
    return QueryAPI(db)


class TestTaskReads:
    def test_tasks_excludes_agent_records(self, api):
        assert {t["task_id"] for t in api.tasks()} == {"t1", "t2"}

    def test_tasks_with_filter(self, api):
        assert api.tasks({"status": "FAILED"})[0]["task_id"] == "t2"

    def test_single_task(self, api):
        assert api.task("t1")["activity_id"] == "square"
        assert api.task("ghost") is None

    def test_workflows_campaigns_activities(self, api):
        assert api.workflows() == ["w1"]
        assert api.campaigns() == ["c1"]
        assert set(api.activities("w1")) == {"square", "average", "in_memory_query"}

    def test_status_counts(self, api):
        counts = api.status_counts()
        assert counts["FINISHED"] == 2 and counts["FAILED"] == 1

    def test_failed_tasks(self, api):
        assert [t["task_id"] for t in api.failed_tasks()] == ["t2"]

    def test_agent_interactions(self, api):
        assert [t["task_id"] for t in api.agent_interactions()] == ["tool-1"]


class TestViews:
    def test_to_frame_flattens(self, api):
        frame = api.to_frame({"type": "task"})
        assert "generated.y" in frame.columns
        assert len(frame) == 2

    def test_lineage_and_impact(self, api):
        assert api.lineage("t2") == {"t1"}
        assert api.impact("t1") == {"t2"}
