"""Tests for the Query API facade."""

from __future__ import annotations

import pytest

from repro.provenance.database import ProvenanceDatabase
from repro.provenance.query_api import QueryAPI


@pytest.fixture
def api() -> QueryAPI:
    db = ProvenanceDatabase()
    db.insert_many(
        [
            {
                "task_id": "t1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "square",
                "status": "FINISHED",
                "type": "task",
                "used": {},
                "generated": {"y": 4},
                "duration": 1.0,
            },
            {
                "task_id": "t2",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "average",
                "status": "FAILED",
                "type": "task",
                "used": {"_upstream": ["t1"]},
                "generated": {},
                "duration": 2.0,
            },
            {
                "task_id": "tool-1",
                "workflow_id": "w1",
                "campaign_id": "c1",
                "activity_id": "in_memory_query",
                "status": "FINISHED",
                "type": "tool_execution",
                "used": {"query": "..." },
                "generated": {},
            },
        ]
    )
    return QueryAPI(db)


class TestTaskReads:
    def test_tasks_excludes_agent_records(self, api):
        assert {t["task_id"] for t in api.tasks()} == {"t1", "t2"}

    def test_tasks_with_filter(self, api):
        assert api.tasks({"status": "FAILED"})[0]["task_id"] == "t2"

    def test_single_task(self, api):
        assert api.task("t1")["activity_id"] == "square"
        assert api.task("ghost") is None

    def test_workflows_campaigns_activities(self, api):
        assert api.workflows() == ["w1"]
        assert api.campaigns() == ["c1"]
        assert set(api.activities("w1")) == {"square", "average", "in_memory_query"}

    def test_status_counts(self, api):
        counts = api.status_counts()
        assert counts["FINISHED"] == 2 and counts["FAILED"] == 1

    def test_failed_tasks(self, api):
        assert [t["task_id"] for t in api.failed_tasks()] == ["t2"]

    def test_agent_interactions(self, api):
        assert [t["task_id"] for t in api.agent_interactions()] == ["tool-1"]


class TestCounts:
    def test_counts_matches_group_aggregation(self, api):
        assert api.counts("status") == {"FINISHED": 2, "FAILED": 1}
        rows = api.database.aggregate(
            [{"$group": {"_id": "$status", "n": {"$sum": 1}}}]
        )
        assert api.counts("status") == {r["_id"]: r["n"] for r in rows}

    def test_counts_includes_null_bucket(self, api):
        api.database.upsert({"task_id": "t9", "type": "task"})
        assert api.counts("status")[None] == 1

    def test_counts_with_filter(self, api):
        assert api.counts("status", {"type": "task"}) == {
            "FINISHED": 1,
            "FAILED": 1,
        }

    def test_catalogue_reads_skip_materialisation(self, api, monkeypatch):
        # workflows()/campaigns()/counts() must answer from the index,
        # never by walking documents (the scan fallback and every find
        # funnel through _execute_filter, so poisoning it proves the
        # fast path was taken)
        def boom(*a, **k):  # pragma: no cover - fails the test if called
            raise AssertionError("scanned documents for a catalogue read")

        monkeypatch.setattr(api.database, "_execute_filter", boom)
        assert api.workflows() == ["w1"]
        assert api.campaigns() == ["c1"]
        assert api.counts("status")["FINISHED"] == 2
        # a filtered read is allowed (and expected) to scan
        with pytest.raises(AssertionError):
            api.counts("status", {"type": "task"})

    def test_counts_over_sharded_store(self):
        from repro.storage import ShardedProvenanceStore

        store = ShardedProvenanceStore(3)
        store.upsert_many(
            [
                {"task_id": f"t{i}", "workflow_id": f"w{i % 4}", "type": "task",
                 "status": "FINISHED" if i % 2 else "FAILED"}
                for i in range(12)
            ]
        )
        api = QueryAPI(store)
        assert api.counts("status") == {"FAILED": 6, "FINISHED": 6}
        assert set(api.workflows()) == {"w0", "w1", "w2", "w3"}


class TestViews:
    def test_to_frame_flattens(self, api):
        frame = api.to_frame({"type": "task"})
        assert "generated.y" in frame.columns
        assert len(frame) == 2

    def test_lineage_and_impact(self, api):
        assert api.lineage("t2") == {"t1"}
        assert api.impact("t1") == {"t2"}
