"""Tests for the W3C PROV extension model."""

from __future__ import annotations

import pytest

from repro.errors import ProvenanceError
from repro.provenance.prov import ProvDocument, RelationKind


@pytest.fixture
def doc() -> ProvDocument:
    d = ProvDocument()
    d.add_activity("task-1", started_at=0.0, ended_at=1.0)
    d.add_activity("task-2", started_at=1.0, ended_at=2.0)
    d.add_entity("data-a")
    d.add_entity("data-b")
    d.add_agent("prov-agent", agent_type="ai-agent")
    return d


class TestNodes:
    def test_membership(self, doc):
        assert "task-1" in doc
        assert "nope" not in doc
        assert len(doc) == 5

    def test_kind_conflict_rejected(self, doc):
        with pytest.raises(ProvenanceError):
            doc.add_entity("task-1")

    def test_nodes_by_kind(self, doc):
        assert {a.activity_id for a in doc.nodes("activity")} == {"task-1", "task-2"}


class TestRelations:
    def test_used_and_generated(self, doc):
        doc.used("task-1", "data-a")
        doc.was_generated_by("data-b", "task-1")
        assert len(doc.relations(RelationKind.USED)) == 1
        assert len(doc.relations(RelationKind.WAS_GENERATED_BY)) == 1

    def test_domain_enforced(self, doc):
        with pytest.raises(ProvenanceError):
            doc.used("data-a", "task-1")  # subject must be an activity

    def test_unknown_node_rejected(self, doc):
        with pytest.raises(ProvenanceError):
            doc.used("task-1", "ghost")

    def test_was_informed_by_activity_chain(self, doc):
        doc.was_informed_by("task-2", "task-1")
        rels = doc.relations(RelationKind.WAS_INFORMED_BY)
        assert rels[0].subject == "task-2"

    def test_agent_association(self, doc):
        doc.was_associated_with("task-1", "prov-agent")
        assert doc.activities_of_agent("prov-agent") == ["task-1"]

    def test_string_kind_accepted(self, doc):
        doc.relate("used", "task-1", "data-a")

    def test_validate_passes_on_well_formed(self, doc):
        doc.used("task-1", "data-a")
        doc.validate()


class TestLineage:
    def test_entity_lineage_walks_upstream(self, doc):
        # task-1 used data-a, generated data-b; task-2 used data-b
        doc.used("task-1", "data-a")
        doc.was_generated_by("data-b", "task-1")
        lineage = doc.lineage_of_entity("data-b")
        assert lineage == ["task-1", "data-a"]

    def test_unknown_entity_raises(self, doc):
        with pytest.raises(ProvenanceError):
            doc.lineage_of_entity("ghost")

    def test_max_hops_limits_walk(self, doc):
        doc.was_generated_by("data-b", "task-1")
        assert doc.lineage_of_entity("data-b", max_hops=0) == []


class TestNetworkxView:
    def test_export_shapes(self, doc):
        doc.used("task-1", "data-a")
        g = doc.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 1
        assert g.nodes["task-1"]["kind"] == "activity"
