"""Tests for the in-memory provenance document store."""

from __future__ import annotations

import pytest

from repro.errors import DatabaseError
from repro.provenance.database import ProvenanceDatabase, get_path


@pytest.fixture
def db(task_records) -> ProvenanceDatabase:
    database = ProvenanceDatabase()
    # store nested docs (unflattened), as the keeper would
    for r in task_records:
        doc = {
            k: v
            for k, v in r.items()
            if not k.startswith("telemetry_at_end.")
        }
        doc["telemetry_at_end"] = {
            "cpu": {"percent": r["telemetry_at_end.cpu.percent"]}
        }
        doc["generated"] = {
            "bond_id": r["generated.bond_id"],
            "bd_enthalpy": r["generated.bd_enthalpy"],
        }
        del doc["generated.bond_id"], doc["generated.bd_enthalpy"]
        database.insert(doc)
    return database


class TestGetPath:
    def test_nested_access(self):
        assert get_path({"a": {"b": {"c": 1}}}, "a.b.c") == 1

    def test_missing_returns_none(self):
        assert get_path({"a": 1}, "a.b") is None


class TestFind:
    def test_implicit_eq(self, db):
        assert len(db.find({"status": "FINISHED"})) == 2

    def test_range_operators(self, db):
        assert len(db.find({"duration": {"$gt": 0.4, "$lte": 0.5}})) == 2

    def test_in_operator(self, db):
        assert len(db.find({"status": {"$in": ["FAILED", "RUNNING"]}})) == 2

    def test_regex_on_nested_path(self, db):
        assert len(db.find({"generated.bond_id": {"$regex": "^C-H"}})) == 2

    def test_exists(self, db):
        assert len(db.find({"agent_id": {"$exists": True}})) == 0
        assert len(db.find({"agent_id": {"$exists": False}})) == 4

    def test_or(self, db):
        out = db.find({"$or": [{"status": "FAILED"}, {"status": "RUNNING"}]})
        assert len(out) == 2

    def test_sort_and_limit(self, db):
        out = db.find({}, sort=[("duration", -1)], limit=1)
        assert out[0]["task_id"] == "1000.1_0"

    def test_sort_nulls_last(self, db):
        out = db.find({}, sort=[("duration", 1)])
        assert out[-1]["duration"] is None

    def test_projection(self, db):
        out = db.find({"status": "FAILED"}, projection=["task_id", "generated.bond_id"])
        assert out == [{"task_id": "1000.4_3", "generated.bond_id": "O-H_1"}]

    def test_unknown_operator_raises(self, db):
        with pytest.raises(DatabaseError):
            db.find({"duration": {"$frob": 1}})

    def test_type_mismatch_is_no_match(self, db):
        assert db.find({"status": {"$gt": 5}}) == []


class TestUpsert:
    def test_insert_then_replace(self):
        db = ProvenanceDatabase()
        assert db.upsert({"task_id": "t1", "status": "RUNNING"}) is False
        assert db.upsert({"task_id": "t1", "status": "FINISHED"}) is True
        assert len(db) == 1
        assert db.find_one({"task_id": "t1"})["status"] == "FINISHED"

    def test_merge_keeps_earlier_fields(self):
        db = ProvenanceDatabase()
        db.upsert({"task_id": "t1", "telemetry_at_start": {"cpu": 10}})
        db.upsert({"task_id": "t1", "status": "FINISHED", "telemetry_at_start": None})
        doc = db.find_one({"task_id": "t1"})
        assert doc["telemetry_at_start"] == {"cpu": 10}

    def test_upsert_requires_key(self):
        with pytest.raises(DatabaseError):
            ProvenanceDatabase().upsert({"status": "FINISHED"})


class TestAggregate:
    def test_group_avg(self, db):
        rows = db.aggregate(
            [
                {"$group": {"_id": "$activity_id", "mean_dur": {"$avg": "$duration"}}},
            ]
        )
        by_id = {r["_id"]: r["mean_dur"] for r in rows}
        assert by_id["run_dft"] == pytest.approx(1.25)

    def test_match_group_sort_limit(self, db):
        rows = db.aggregate(
            [
                {"$match": {"status": "FINISHED"}},
                {"$group": {"_id": "$hostname", "n": {"$sum": 1}}},
                {"$sort": {"n": -1}},
                {"$limit": 1},
            ]
        )
        assert rows == [{"_id": "frontier00084", "n": 2}]

    def test_count_stage(self, db):
        rows = db.aggregate([{"$match": {"status": "FAILED"}}, {"$count": "failed"}])
        assert rows == [{"failed": 1}]

    def test_project_stage(self, db):
        rows = db.aggregate(
            [{"$match": {"status": "RUNNING"}}, {"$project": ["task_id"]}]
        )
        assert rows == [{"task_id": "1000.2_1"}]

    def test_bad_stage_raises(self, db):
        with pytest.raises(DatabaseError):
            db.aggregate([{"$frobnicate": 1}])

    def test_group_requires_id(self, db):
        with pytest.raises(DatabaseError):
            db.aggregate([{"$group": {"n": {"$sum": 1}}}])


class TestOperatorEdgeCases:
    def test_in_with_non_container_argument_raises(self, db):
        with pytest.raises(DatabaseError, match=r"\$in requires"):
            db.find({"status": {"$in": "FINISHED"}})

    def test_nin_with_non_container_argument_raises(self, db):
        with pytest.raises(DatabaseError, match=r"\$nin requires"):
            db.find({"status": {"$nin": 5}})

    def test_in_with_set_argument_and_unhashable_value(self):
        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "tags": ["a", "b"]})
        # unhashable stored value against a set argument must not raise
        assert db.find({"tags": {"$in": {"x", "y"}}}) == []
        assert db.find({"tags": {"$nin": {"x", "y"}}})[0]["task_id"] == "t1"

    def test_in_matches_unhashable_stored_value(self):
        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "tags": ["a", "b"]})
        assert db.find({"tags": {"$in": [["a", "b"]]}})[0]["task_id"] == "t1"

    def test_in_has_no_substring_semantics(self):
        db = ProvenanceDatabase()
        db.insert({"task_id": "t1", "status": "FIN"})
        with pytest.raises(DatabaseError):
            db.find({"status": {"$in": "FINISHED"}})

    def test_regex_non_string_pattern_raises(self, db):
        with pytest.raises(DatabaseError, match=r"\$regex pattern must be a string"):
            db.find({"generated.bond_id": {"$regex": 123}})

    def test_regex_invalid_pattern_raises_database_error(self, db):
        with pytest.raises(DatabaseError, match=r"invalid \$regex pattern"):
            db.find({"generated.bond_id": {"$regex": "(unclosed"}})

    def test_malformed_or_raises(self, db):
        with pytest.raises(DatabaseError, match=r"\$or requires"):
            db.find({"$or": {"status": "FAILED"}})

    def test_bad_arguments_raise_even_without_matching_docs(self):
        # validation must not depend on the planner reaching any document
        db = ProvenanceDatabase()
        with pytest.raises(DatabaseError):
            db.find({"status": {"$in": "oops"}})
        with pytest.raises(DatabaseError):
            db.find({"status": {"$regex": 1}})


class TestMisc:
    def test_distinct(self, db):
        assert set(db.distinct("hostname")) == {
            "frontier00084",
            "frontier00085",
            "frontier00086",
        }

    def test_count(self, db):
        assert db.count({"workflow_id": "w1"}) == 3

    def test_clear(self, db):
        db.clear()
        assert len(db) == 0
