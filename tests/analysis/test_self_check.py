"""The analyser's own dogfood gate: ``src/`` is clean against the
committed baseline.

This is the test-suite twin of the CI leg (``python -m repro.analysis
--check src``): if a change introduces a new finding, an unused
suppression, or fixes a baselined site without removing its entry, this
test fails with the same report the gate would print.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def result(monkeypatch_module):
    monkeypatch_module.chdir(REPO_ROOT)
    baseline = Baseline.load(str(REPO_ROOT / "provlint-baseline.json"))
    return run_analysis(["src"], baseline=baseline)


@pytest.fixture(scope="module")
def monkeypatch_module():
    mp = pytest.MonkeyPatch()
    yield mp
    mp.undo()


def _render(findings):
    return "\n".join(f.render() for f in findings)


def test_src_has_no_new_findings(result):
    assert result.findings == [], "\n" + _render(result.findings)


def test_src_parses_completely(result):
    assert result.parse_errors == []


def test_no_suppression_is_stale(result):
    stale = [
        f"{sup.path}:{sup.comment_line} disable={rule_id}"
        for sup, rule_id in result.unused_suppressions
    ]
    assert stale == []


def test_baseline_has_no_stale_entries(result):
    assert [e.key() for e in result.stale_baseline] == []


def test_baseline_entries_all_carry_real_notes(result):
    for entry in result.baseline.entries:
        assert entry.note and not entry.note.startswith("TODO"), entry.key()
