"""Rule-by-rule fixture suite: each rule fires on the seeded bug shape,
stays quiet on the corrected shape, and respects suppressions.

The fixtures deliberately reintroduce the repo's historical bugs in
miniature (the PR 6 ``cache or QueryCache()`` shape, the
``MessageBuffer`` publish-under-lock shape, a buffered WAL open) so a
rule regression shows up as "the seeded bug stopped being caught".
"""

from __future__ import annotations

import textwrap

from repro.analysis import run_analysis


def run_on(tmp_path, **files):
    for name, source in files.items():
        path = tmp_path / name.replace("__", "/")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_analysis([str(tmp_path)])


def rules_of(result):
    return [f.rule for f in result.findings]


class TestFalsyOrDefault:
    def test_param_or_constructor_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                class QueryAPI:
                    def __init__(self, store, cache=None):
                        self.cache = cache or QueryCache()
                """
            },
        )
        assert rules_of(result) == ["falsy-or-default"]
        assert result.findings[0].line == 3
        assert "cache" in result.findings[0].message
        assert result.findings[0].hint

    def test_attribute_or_literal_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def render(intent):
                    return intent.limit or 1
                """
            },
        )
        assert rules_of(result) == ["falsy-or-default"]

    def test_is_none_rewrite_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                class QueryAPI:
                    def __init__(self, store, cache=None):
                        self.cache = cache if cache is not None else QueryCache()
                """
            },
        )
        assert result.findings == []

    def test_boolean_test_positions_are_logic_not_defaults(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f(a=None, b=None):
                    if a or b():
                        return 1
                    while a or b():
                        pass
                    assert a or b()
                    return [x for x in range(3) if a or b()]
                """
            },
        )
        assert result.findings == []

    def test_or_none_normalisation_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f(x=None):
                    return x or None
                """
            },
        )
        assert result.findings == []

    def test_local_variable_or_default_not_flagged(self, tmp_path):
        # locals are assigned nearby and reviewable; the rule targets
        # injected parameters and stored state
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f():
                    x = compute()
                    return x or dict()
                """
            },
        )
        assert result.findings == []

    def test_nested_function_params_tracked_separately(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def outer():
                    def inner(cache=None):
                        return cache or dict()
                    return inner
                """
            },
        )
        assert rules_of(result) == ["falsy-or-default"]

    def test_suppressed(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f(body=None):
                    return body or b"{}"  # provlint: disable=falsy-or-default - empty body means empty object
                """
            },
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


BUFFER_BUG = """\
import threading


class MessageBuffer:
    def __init__(self, broker):
        self.broker = broker
        self._pending = []
        self._lock = threading.Lock()

    def append(self, payload):
        with self._lock:
            self._pending.append(payload)
            self._flush_locked()

    def _flush_locked(self):
        self.broker.publish_batch("topic", self._pending)
        self._pending = []
"""


class TestBlockingCallUnderLock:
    def test_publish_under_lock_through_helper_fires(self, tmp_path):
        # the real MessageBuffer bug: the blocking call is one helper
        # frame below the ``with self._lock:`` body — only the call
        # graph sees it
        result = run_on(tmp_path, **{"m.py": BUFFER_BUG})
        assert "blocking-call-under-lock" in rules_of(result)
        finding = next(
            f for f in result.findings if f.rule == "blocking-call-under-lock"
        )
        assert "publish_batch" in finding.message
        assert "_lock" in finding.message
        # the chain names the path from the locked frame to the call
        assert any("_flush_locked" in hop for hop in finding.detail["chain"])

    def test_direct_blocking_call_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading, time


                class Poller:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def tick(self):
                        with self._lock:
                            time.sleep(0.1)
                """
            },
        )
        assert rules_of(result) == ["blocking-call-under-lock"]

    def test_callback_shaped_name_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Registry:
                    def __init__(self, on_change):
                        self._lock = threading.Lock()
                        self.on_change = on_change

                    def set(self, v):
                        with self._lock:
                            self.value = v
                            self.on_change(v)
                """
            },
        )
        assert rules_of(result) == ["blocking-call-under-lock"]

    def test_snapshot_then_publish_outside_lock_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class MessageBuffer:
                    def __init__(self, broker):
                        self.broker = broker
                        self._pending = []
                        self._lock = threading.Lock()

                    def append(self, payload):
                        with self._lock:
                            self._pending.append(payload)
                            batch, self._pending = self._pending, []
                        self.broker.publish_batch("topic", batch)
                """
            },
        )
        assert result.findings == []

    def test_condition_wait_idiom_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Gate:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)

                    def wait_open(self):
                        with self._cond:
                            self._cond.wait()

                    def open(self):
                        with self._cond:
                            self._cond.notify_all()
                """
            },
        )
        assert result.findings == []

    def test_durable_py_is_exempt(self, tmp_path):
        # WAL-under-lock is the durability design, policed by
        # wal-write-discipline instead
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                import os, threading


                class Store:
                    def __init__(self, seg):
                        self._lock = threading.RLock()
                        self._seg_file = seg

                    def commit(self, framed):
                        with self._lock:
                            self._seg_file.write(framed)
                            os.fsync(self._seg_file.fileno())
                """
            },
        )
        assert "blocking-call-under-lock" not in rules_of(result)

    def test_suppressed(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Server:
                    def __init__(self):
                        self._lifecycle = threading.Lock()

                    def stop(self, thread):
                        with self._lifecycle:
                            thread.join(timeout=5)  # provlint: disable=blocking-call-under-lock - lifecycle mutex
                """
            },
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestLockOrdering:
    def test_inverted_order_cycle_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Store:
                    def __init__(self):
                        self._shard_lock = threading.Lock()
                        self._stray_lock = threading.Lock()

                    def upsert(self):
                        with self._shard_lock:
                            with self._stray_lock:
                                pass

                    def reap(self):
                        with self._stray_lock:
                            with self._shard_lock:
                                pass
                """
            },
        )
        assert "lock-ordering" in rules_of(result)
        finding = next(f for f in result.findings if f.rule == "lock-ordering")
        assert "cycle" in finding.message

    def test_consistent_global_order_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Store:
                    def __init__(self):
                        self._shard_lock = threading.Lock()
                        self._stray_lock = threading.Lock()

                    def upsert(self):
                        with self._shard_lock:
                            with self._stray_lock:
                                pass

                    def count(self):
                        with self._shard_lock:
                            with self._stray_lock:
                                pass
                """
            },
        )
        assert result.findings == []

    def test_nonreentrant_reacquire_through_callee_fires(self, tmp_path):
        # the deadlock class the MessageBuffer fix removed: a helper
        # re-takes a plain threading.Lock the caller already holds
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Buf:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def flush(self):
                        with self._lock:
                            self.pending_count()

                    def pending_count(self):
                        with self._lock:
                            return 0
                """
            },
        )
        assert "lock-ordering" in rules_of(result)
        finding = next(f for f in result.findings if f.rule == "lock-ordering")
        assert "non-reentrant" in finding.message

    def test_rlock_reacquire_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                import threading


                class Buf:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def flush(self):
                        with self._lock:
                            self.pending_count()

                    def pending_count(self):
                        with self._lock:
                            return 0
                """
            },
        )
        assert result.findings == []


class TestExceptionContract:
    def test_bare_except_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f():
                    try:
                        return 1
                    except:
                        return 2
                """
            },
        )
        assert rules_of(result) == ["exception-contract"]
        assert "bare" in result.findings[0].message

    def test_silent_swallow_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f():
                    try:
                        return 1
                    except Exception:
                        pass
                """
            },
        )
        assert rules_of(result) == ["exception-contract"]

    def test_handled_broad_except_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f(log):
                    try:
                        return 1
                    except Exception as exc:
                        log.warning("boom: %s", exc)
                        return None
                """
            },
        )
        assert result.findings == []

    def test_api_error_envelope_code_outside_stable_set_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "api__schemas.py": """\
                class ErrorCode:
                    NOT_FOUND = "not_found"
                    INTERNAL = "internal"
                """,
                "api__handlers.py": """\
                def handle():
                    return ErrorEnvelope(code="whoopsie", message="x")
                """,
            },
        )
        assert rules_of(result) == ["exception-contract"]
        assert "whoopsie" in result.findings[0].message

    def test_api_stable_code_and_raise_typed_are_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "api__schemas.py": """\
                class ErrorCode:
                    NOT_FOUND = "not_found"
                """,
                "api__handlers.py": """\
                def handle():
                    return ErrorEnvelope(code="not_found", message="x")

                def explode():
                    raise ValueError("typed")
                """,
            },
        )
        assert result.findings == []

    def test_api_raise_bare_exception_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "api__handlers.py": """\
                def handle():
                    raise Exception("untyped")
                """,
            },
        )
        assert rules_of(result) == ["exception-contract"]

    def test_suppressed_alongside_noqa(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "m.py": """\
                def f(sock):
                    try:
                        sock.close()
                    except Exception:  # noqa: BLE001; provlint: disable=exception-contract - socket already gone
                        pass
                """
            },
        )
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestSchemaDiscipline:
    def test_unfrozen_dataclass_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "schemas.py": """\
                from dataclasses import dataclass


                @dataclass
                class QueryRequest:
                    filter: dict | None = None
                """
            },
        )
        assert rules_of(result) == ["schema-discipline"]
        assert "frozen" in result.findings[0].message

    def test_mutable_literal_default_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "schemas.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class StatsReply:
                    counts: dict = {}
                """
            },
        )
        assert rules_of(result) == ["schema-discipline"]
        assert "mutable" in result.findings[0].message

    def test_jsonable_without_registration_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "schemas.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class Orphan:
                    x: int = 0

                    def _jsonable(self):
                        return {"x": self.x}


                SCHEMA_TYPES = {}
                """
            },
        )
        assert rules_of(result) == ["schema-discipline"]
        assert "SCHEMA_TYPES" in result.findings[0].message

    def test_registered_without_parse_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "schemas.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class HalfPair:
                    x: int = 0

                    def _jsonable(self):
                        return {"x": self.x}


                SCHEMA_TYPES = {"v1/half": HalfPair}
                """
            },
        )
        assert rules_of(result) == ["schema-discipline"]
        assert "_parse" in result.findings[0].message

    def test_well_formed_schema_module_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "schemas.py": """\
                from dataclasses import dataclass, field


                @dataclass(frozen=True)
                class StatsReply:
                    counts: dict = field(default_factory=dict)

                    def _jsonable(self):
                        return {"counts": dict(self.counts)}

                    @classmethod
                    def _parse(cls, data):
                        return cls(counts=dict(data["counts"]))


                SCHEMA_TYPES = {"v1/stats_reply": StatsReply}
                """
            },
        )
        assert result.findings == []

    def test_rule_scoped_to_schemas_py(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "models.py": """\
                from dataclasses import dataclass


                @dataclass
                class InternalState:
                    counter: int = 0
                """
            },
        )
        assert result.findings == []


class TestWalWriteDiscipline:
    def test_two_writes_per_record_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                class Store:
                    def append(self, header, payload):
                        self._seg_file.write(header)
                        self._seg_file.write(payload)
                """
            },
        )
        assert rules_of(result) == ["wal-write-discipline"]
        assert "2 times" in result.findings[0].message

    def test_write_in_loop_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                class Store:
                    def append_all(self, frames):
                        for frame in frames:
                            self._seg_file.write(frame)
                """
            },
        )
        assert rules_of(result) == ["wal-write-discipline"]
        assert "loop" in result.findings[0].message

    def test_buffered_binary_open_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                def open_append(path):
                    return open(path, "ab")
                """
            },
        )
        assert rules_of(result) == ["wal-write-discipline"]
        assert "buffering=0" in result.findings[0].message

    def test_writelines_fires(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                class Store:
                    def append_all(self, fobj, frames):
                        fobj.writelines(frames)
                """
            },
        )
        assert rules_of(result) == ["wal-write-discipline"]

    def test_single_framed_unbuffered_write_is_clean(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "durable.py": """\
                def open_append(path):
                    return open(path, "ab", buffering=0)


                class Store:
                    def append(self, header, payload):
                        framed = header + payload
                        self._seg_file.write(framed)
                """
            },
        )
        assert result.findings == []

    def test_rule_scoped_to_durable_py(self, tmp_path):
        result = run_on(
            tmp_path,
            **{
                "exporter.py": """\
                class Exporter:
                    def dump(self, fobj, rows):
                        for row in rows:
                            fobj.write(row)
                """
            },
        )
        assert result.findings == []
