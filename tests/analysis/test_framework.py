"""Framework-level tests for provlint: registry, suppressions, baseline, CLI.

Rule *behaviour* is covered in ``test_rules.py``; these tests pin the
machinery every rule rides on — and the CLI contract the CI gate
depends on (exit codes, strict-mode failures for unused suppressions
and stale baseline entries).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import Baseline, Finding, all_rules, get_rule, run_analysis
from repro.analysis.__main__ import main
from repro.analysis.baseline import BaselineEntry
from repro.analysis.engine import BAD_SUPPRESSION
from repro.analysis.suppressions import scan_suppressions

EXPECTED_RULES = {
    "blocking-call-under-lock",
    "exception-contract",
    "falsy-or-default",
    "lock-ordering",
    "schema-discipline",
    "wal-write-discipline",
}

FALSY_SOURCE = """\
class QueryAPI:
    def __init__(self, store, cache=None):
        self.cache = cache or QueryCache()
"""


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert {r.id for r in all_rules()} >= EXPECTED_RULES

    def test_every_rule_names_its_historical_bug(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.rationale, rule.id

    def test_get_rule_round_trip_and_unknown(self):
        assert get_rule("falsy-or-default").id == "falsy-or-default"
        with pytest.raises(KeyError):
            get_rule("no-such-rule")


class TestSuppressions:
    def test_same_line_marker_silences_finding(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "class A:\n"
            "    def f(self, c=None):\n"
            "        self.c = c or dict()  # provlint: disable=falsy-or-default - test\n",
        )
        result = run_analysis([str(tmp_path)])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["falsy-or-default"]
        assert result.unused_suppressions == []

    def test_standalone_marker_binds_to_next_code_line(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "class A:\n"
            "    def f(self, c=None):\n"
            "        # provlint: disable=falsy-or-default - test\n"
            "        self.c = c or dict()\n",
        )
        result = run_analysis([str(tmp_path)])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_unused_suppression_reported(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "x = 1  # provlint: disable=falsy-or-default - silences nothing\n",
        )
        result = run_analysis([str(tmp_path)])
        assert result.findings == []
        assert len(result.unused_suppressions) == 1
        assert not result.ok

    def test_unknown_rule_id_is_a_finding(self, tmp_path):
        write(tmp_path, "m.py", "x = 1  # provlint: disable=falsy-or-defualt\n")
        result = run_analysis([str(tmp_path)])
        assert [f.rule for f in result.findings] == [BAD_SUPPRESSION]
        # ...and not double-reported as an unused suppression
        assert result.unused_suppressions == []

    def test_justification_tail_not_parsed_as_rule_ids(self):
        index = scan_suppressions(
            "m.py",
            "x = 1  # provlint: disable=rule-a, rule-b - why this is fine\n",
        )
        assert index.suppressions[0].rules == ("rule-a", "rule-b")

    def test_suppression_only_silences_named_rule(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "class A:\n"
            "    def f(self, c=None):\n"
            "        self.c = c or dict()  # provlint: disable=exception-contract - wrong rule\n",
        )
        result = run_analysis([str(tmp_path)])
        assert [f.rule for f in result.findings] == ["falsy-or-default"]


class TestBaseline:
    def finding(self, snippet="self.c = c or dict()", line=3):
        return Finding(
            rule="falsy-or-default",
            path="m.py",
            line=line,
            message="msg",
            snippet=snippet,
        )

    def test_partition_matches_by_snippet_not_line(self):
        base = Baseline(
            [BaselineEntry("falsy-or-default", "m.py", "self.c = c or dict()", line=99)]
        )
        new, old = base.partition([self.finding(line=3)])
        assert new == [] and len(old) == 1
        assert base.stale_entries() == []

    def test_duplicated_pattern_exceeds_budget(self):
        base = Baseline(
            [BaselineEntry("falsy-or-default", "m.py", "self.c = c or dict()")]
        )
        new, old = base.partition([self.finding(line=3), self.finding(line=9)])
        assert len(old) == 1 and len(new) == 1

    def test_stale_entry_detected(self):
        base = Baseline(
            [BaselineEntry("falsy-or-default", "m.py", "code that was fixed")]
        )
        new, old = base.partition([])
        assert new == [] and old == []
        assert len(base.stale_entries()) == 1

    def test_update_preserves_notes(self, tmp_path):
        previous = Baseline(
            [
                BaselineEntry(
                    "falsy-or-default",
                    "m.py",
                    "self.c = c or dict()",
                    note="audited 2026-08",
                )
            ]
        )
        updated = Baseline.from_findings([self.finding()], previous=previous)
        assert updated.entries[0].note == "audited 2026-08"
        path = tmp_path / "base.json"
        updated.dump(str(path))
        reloaded = Baseline.load(str(path))
        assert reloaded.entries[0].key() == updated.entries[0].key()
        assert reloaded.entries[0].note == "audited 2026-08"

    def test_load_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(str(tmp_path / "nope.json")).entries == []

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestCli:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_list_rules(self):
        code, text = self.run("--list-rules")
        assert code == 0
        for rule_id in EXPECTED_RULES:
            assert rule_id in text

    def test_no_paths_is_usage_error(self):
        code, _ = self.run()
        assert code == 2

    def test_clean_tree_exits_zero(self, tmp_path):
        write(tmp_path, "m.py", "def f(x=None):\n    return x\n")
        code, _ = self.run("--check", str(tmp_path), "--baseline", str(tmp_path / "b.json"))
        assert code == 0

    def test_finding_fails_the_gate(self, tmp_path):
        write(tmp_path, "m.py", FALSY_SOURCE)
        code, text = self.run(
            "--check", str(tmp_path), "--baseline", str(tmp_path / "b.json")
        )
        assert code == 1
        assert "falsy-or-default" in text
        assert "hint:" in text

    def test_update_baseline_then_check_passes(self, tmp_path):
        write(tmp_path, "m.py", FALSY_SOURCE)
        baseline = str(tmp_path / "b.json")
        code, _ = self.run(
            "--update-baseline", str(tmp_path), "--baseline", baseline
        )
        assert code == 0
        code, text = self.run("--check", str(tmp_path), "--baseline", baseline)
        assert code == 0, text
        # a second copy of the same pattern is NOT absorbed
        write(
            tmp_path,
            "m2.py",
            FALSY_SOURCE.replace("QueryAPI", "OtherAPI"),
        )
        code, _ = self.run("--check", str(tmp_path), "--baseline", baseline)
        assert code == 1

    def test_stale_baseline_fails_check_only(self, tmp_path):
        write(tmp_path, "m.py", "def f(x=None):\n    return x\n")
        baseline = str(tmp_path / "b.json")
        Baseline(
            [BaselineEntry("falsy-or-default", "gone.py", "was fixed")]
        ).dump(baseline)
        code, _ = self.run(str(tmp_path), "--baseline", baseline)
        assert code == 0  # report mode tolerates staleness
        code, text = self.run("--check", str(tmp_path), "--baseline", baseline)
        assert code == 1
        assert "stale-baseline" in text

    def test_unused_suppression_fails_check(self, tmp_path):
        write(
            tmp_path,
            "m.py",
            "x = 1  # provlint: disable=falsy-or-default - nothing here\n",
        )
        code, text = self.run(
            "--check", str(tmp_path), "--baseline", str(tmp_path / "b.json")
        )
        assert code == 1
        assert "unused-suppression" in text

    def test_json_format(self, tmp_path):
        write(tmp_path, "m.py", FALSY_SOURCE)
        code, text = self.run(
            str(tmp_path),
            "--format",
            "json",
            "--baseline",
            str(tmp_path / "b.json"),
        )
        assert code == 1
        data = json.loads(text)
        assert data["findings"][0]["rule"] == "falsy-or-default"
        assert data["findings"][0]["line"] == 3
        assert data["ok"] is False

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        write(tmp_path, "bad.py", "def broken(:\n")
        write(tmp_path, "good.py", "x = 1\n")
        code, text = self.run(
            "--check", str(tmp_path), "--baseline", str(tmp_path / "b.json")
        )
        assert code == 1
        assert "parse-error" in text
