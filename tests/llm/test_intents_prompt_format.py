"""Tests for the intent registry and the prompt-format contract."""

from __future__ import annotations

from repro.llm import prompt_format as pf
from repro.llm.generation import QueryTraits
from repro.llm.intents import (
    clear_registry,
    lookup_intent,
    lookup_traits,
    register_intent,
    registered_count,
)
from repro.query import parse_query


class TestIntentRegistry:
    def setup_method(self):
        self._count = registered_count()

    def test_register_and_lookup(self):
        p = parse_query("df['duration'].max()")
        register_intent("What is the longest duration?", p)
        assert lookup_intent("What is the longest duration?") == p

    def test_lookup_normalises_case_and_punctuation(self):
        p = parse_query("len(df)")
        register_intent("How many tasks are there?", p)
        assert lookup_intent("how many tasks are there") == p
        assert lookup_intent("  How Many   Tasks Are There?! ") == p

    def test_traits_roundtrip(self):
        traits = QueryTraits(traps=("entity_scoping",), workload="OLTP")
        register_intent("count the parent atoms", parse_query("len(df)"), traits)
        assert lookup_traits("Count the parent atoms") == traits

    def test_missing_lookup_is_none(self):
        assert lookup_intent("never registered phrase xyz") is None
        assert lookup_traits("never registered phrase xyz") is None


class TestPromptFormat:
    def test_extract_section_returns_body(self):
        prompt = (
            pf.render_section(pf.SECTION_ROLE, "You are X.")
            + pf.render_section(pf.SECTION_USER_QUERY, "How many?")
        )
        assert pf.extract_section(prompt, pf.SECTION_ROLE) == "You are X."
        assert pf.extract_section(prompt, pf.SECTION_USER_QUERY) == "How many?"

    def test_absent_section_is_none(self):
        prompt = pf.render_section(pf.SECTION_ROLE, "x")
        assert pf.extract_section(prompt, pf.SECTION_SCHEMA) is None

    def test_section_boundaries_respected(self):
        prompt = (
            pf.render_section(pf.SECTION_ROLE, "role text")
            + pf.render_section(pf.SECTION_JOB, "job text")
        )
        assert "job text" not in pf.extract_section(prompt, pf.SECTION_ROLE)

    def test_json_section_roundtrip(self):
        payload = {"fields": {"a": {"type": "int"}}}
        prompt = pf.render_json_section(pf.SECTION_SCHEMA, payload)
        assert pf.extract_json_section(prompt, pf.SECTION_SCHEMA) == payload

    def test_corrupt_json_returns_none(self):
        prompt = f"{pf.SECTION_SCHEMA}\n```json\nnot json at all\n```\n"
        assert pf.extract_json_section(prompt, pf.SECTION_SCHEMA) is None

    def test_json_section_with_following_section(self):
        payload = {"k": [1, 2]}
        prompt = pf.render_json_section(pf.SECTION_VALUES, payload) + pf.render_section(
            pf.SECTION_USER_QUERY, "q"
        )
        assert pf.extract_json_section(prompt, pf.SECTION_VALUES) == payload
