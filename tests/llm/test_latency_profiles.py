"""Tests for the latency model and profile registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownModelError
from repro.llm.latency import simulate_latency
from repro.llm.profiles import MODEL_ORDER, MODEL_PROFILES, get_profile


class TestProfiles:
    def test_all_five_models_registered(self):
        assert len(MODEL_ORDER) == 5
        assert set(MODEL_ORDER) == set(MODEL_PROFILES)

    def test_display_names_match_paper_axes(self):
        names = [get_profile(m).display_name for m in MODEL_ORDER]
        assert names == ["LLama 3-8B", "LLama 3-70B", "Gemini", "GPT", "Claude"]

    def test_context_windows(self):
        assert get_profile("llama3-8b").context_window == 8_192
        assert get_profile("gpt-4").context_window == 128_000
        assert get_profile("claude-opus-4").context_window == 200_000

    def test_unknown_model(self):
        with pytest.raises(UnknownModelError):
            get_profile("gpt-7-turbo")

    def test_probability_fields_in_unit_interval(self):
        prob_fields = [
            "format_fail_no_baseline",
            "format_fail_with_baseline",
            "syntax_fail_no_fs",
            "syntax_fail_with_fs",
            "misread_schema_field",
            "prior_common_field",
            "prior_app_field",
            "value_error_no_values",
            "value_error_with_values",
            "logic_error_with_guidelines",
            "logic_error_no_guidelines",
            "ignores_guidelines",
            "schema_misbind_no_guidelines",
            "schema_misbind_with_guidelines",
        ]
        for model in MODEL_ORDER:
            p = get_profile(model)
            for fname in prob_fields:
                v = getattr(p, fname)
                assert 0.0 <= v <= 1.0, f"{model}.{fname}={v}"

    def test_frontier_models_more_reliable(self):
        weak, strong = get_profile("llama3-8b"), get_profile("gpt-4")
        assert weak.misread_schema_field > strong.misread_schema_field
        assert weak.ignores_guidelines > strong.ignores_guidelines
        assert weak.prior_common_field < strong.prior_common_field

    def test_effective_clamps(self):
        p = get_profile("gpt-4")
        assert p.effective(0.5, 10.0) == 1.0
        assert p.effective(0.5, 0.0) == 0.0


class TestLatency:
    def test_deterministic_per_coordinates(self):
        p = get_profile("gpt-4")
        assert simulate_latency(p, 1000, 50, rep=0, key="q") == simulate_latency(
            p, 1000, 50, rep=0, key="q"
        )

    def test_grows_with_prompt_and_output(self):
        p = get_profile("gpt-4")
        small = simulate_latency(p, 500, 10, key="a")
        big = simulate_latency(p, 50_000, 10, key="a")
        assert big > small
        more_output = simulate_latency(p, 500, 400, key="a")
        assert more_output > small

    def test_floor(self):
        p = get_profile("gemini-2.5-flash-lite")
        for rep in range(20):
            assert simulate_latency(p, 10, 1, rep=rep, key="f") >= 0.05

    def test_full_context_within_interactive_bound(self):
        for model in MODEL_ORDER:
            p = get_profile(model)
            lat = simulate_latency(p, 4000, 40, key="bound")
            assert lat < 2.6, model
