"""Statistical tests on the failure-injection engine.

The evaluation's validity rests on failure *rates* being ordered the way
the profiles claim — weaker models fail more, OLAP penalises logic, and
each context component suppresses its failure class.  These tests
measure rates over many seeded draws rather than single outcomes.
"""

from __future__ import annotations

import pytest

from repro.agent.prompts import PromptBuilder, PromptConfig
from repro.errors import QuerySyntaxError
from repro.llm.generation import QueryTraits, generate_query_code
from repro.llm.intents import register_intent
from repro.llm.profiles import get_profile
from repro.llm.prompt_reading import perceive
from repro.query import parse_query

SCHEMA = {
    "fields": {
        "task_id": {"type": "str"},
        "status": {"type": "str"},
        "started_at": {"type": "float"},
        "duration": {"type": "float"},
        "generated.value": {"type": "float"},
        "used.value": {"type": "float"},
        "telemetry_at_end.cpu.percent": {"type": "float"},
        "telemetry_at_start.cpu.percent": {"type": "float"},
    },
    "activities": ["power"],
}
VALUES = {"status": ["FINISHED"], "activity_id": ["power"]}
GUIDELINES = (
    "- (recent-sort) For the most recent task, sort by started_at "
    "descending (ascending=False) and take head(1).\n"
    "- (group-by) Group with df.groupby(...) and pick the aggregation the "
    "user names.\n"
    "- (naming) Outputs under generated.value; telemetry at "
    "telemetry_at_end.cpu.percent; durations in duration."
)

NL = "What is the average value produced per host?"
GOLD = "df.groupby('hostname')['generated.value'].mean()"
register_intent(NL, parse_query(GOLD))


def perceived_for(cfg: PromptConfig, window: int = 200_000):
    prompt = PromptBuilder(cfg).build(
        NL,
        schema_payload=SCHEMA,
        values_payload=VALUES,
        guidelines_text=GUIDELINES,
    )
    return perceive(prompt, window)


FULL = PromptConfig(few_shot=True, schema=True, values=True, guidelines=True).with_baseline()
NO_GUIDE = PromptConfig(few_shot=True, schema=True, values=True).with_baseline()

N = 60


def failure_rate(model: str, cfg: PromptConfig, traits=None, kind: str | None = None) -> float:
    profile = get_profile(model)
    ctx = perceived_for(cfg)
    bad = 0
    for rep in range(N):
        result = generate_query_code(
            profile, ctx, traits=traits, rep=rep, query_id="stat"
        )
        if kind is None:
            try:
                ok = parse_query(result.text) == parse_query(GOLD)
            except QuerySyntaxError:
                ok = False
            bad += not ok
        else:
            bad += any(f.startswith(kind) for f in result.failures)
    return bad / N


class TestModelOrdering:
    def test_weak_models_fail_more_at_full_context(self):
        weak = failure_rate("llama3-8b", FULL)
        strong = failure_rate("gpt-4", FULL)
        assert weak > strong + 0.1

    def test_guidelines_reduce_failures_for_all_models(self):
        for model in ("gpt-4", "llama3-70b"):
            with_g = failure_rate(model, FULL)
            without = failure_rate(model, NO_GUIDE)
            assert without > with_g


class TestTrapGating:
    def test_olap_penalty_raises_trap_rate(self):
        oltp = failure_rate(
            "gpt-4", NO_GUIDE, traits=QueryTraits(("group_logic",), "OLTP"),
            kind="logic",
        )
        olap = failure_rate(
            "gpt-4", NO_GUIDE, traits=QueryTraits(("group_logic",), "OLAP"),
            kind="logic",
        )
        assert olap >= oltp

    def test_guidelines_suppress_guarded_traps(self):
        guarded = failure_rate(
            "gpt-4", FULL, traits=QueryTraits(("group_logic",), "OLAP"),
            kind="logic",
        )
        unguarded = failure_rate(
            "gpt-4", NO_GUIDE, traits=QueryTraits(("group_logic",), "OLAP"),
            kind="logic",
        )
        assert unguarded > guarded + 0.1

    def test_misbinding_suppressed_by_guidelines(self):
        with_g = failure_rate("gpt-4", FULL, kind="misbound")
        without = failure_rate("gpt-4", NO_GUIDE, kind="misbound")
        assert without > with_g


class TestGeminiVariance:
    def test_gemini_outcomes_more_dispersed_than_gpt(self):
        """Gemini's per-draw wobble creates more outcome diversity."""

        def distinct_outputs(model: str) -> int:
            profile = get_profile(model)
            ctx = perceived_for(NO_GUIDE)
            return len(
                {
                    generate_query_code(
                        profile, ctx, rep=rep, query_id="var",
                        traits=QueryTraits(("group_logic",), "OLAP"),
                    ).text
                    for rep in range(N)
                }
            )

        assert distinct_outputs("gemini-2.5-flash-lite") >= distinct_outputs("gpt-4")


class TestContextWindowDegradation:
    def test_truncation_raises_failure_rate(self):
        profile = get_profile("llama3-8b")
        wide = perceived_for(FULL, window=200_000)
        # simulate the chemistry-style overflow by shrinking the window
        prompt = PromptBuilder(FULL).build(
            NL,
            schema_payload=SCHEMA,
            values_payload=VALUES,
            guidelines_text=GUIDELINES,
        )
        narrow = perceive(prompt, max(200, len(prompt) // 8))
        assert narrow.truncated

        def rate(ctx):
            bad = 0
            for rep in range(N):
                result = generate_query_code(profile, ctx, rep=rep, query_id="win")
                try:
                    ok = parse_query(result.text) == parse_query(GOLD)
                except QuerySyntaxError:
                    ok = False
                bad += not ok
            return bad / N

        assert rate(narrow) >= rate(wide)
