"""Tests for prompt perception: models see exactly what the prompt holds."""

from __future__ import annotations

from repro.agent.prompts import PromptBuilder, PromptConfig
from repro.llm.prompt_reading import perceive

SCHEMA = {
    "fields": {
        "task_id": {"type": "str"},
        "generated.value": {"type": "float"},
    },
    "activities": ["power"],
}
VALUES = {"activity_id": ["power", "average_results"], "status": ["FINISHED"]}
GUIDELINES = "- (status-values) Status values are uppercase: FINISHED.\n- (x) Use started_at."


def build(cfg: PromptConfig, query="How many tasks finished?") -> str:
    return PromptBuilder(cfg).build(
        query,
        schema_payload=SCHEMA,
        values_payload=VALUES,
        guidelines_text=GUIDELINES,
    )


class TestPerception:
    def test_nothing_config_sees_nothing(self):
        ctx = perceive(build(PromptConfig()), 100_000)
        assert not ctx.has_baseline
        assert not ctx.has_few_shot
        assert not ctx.schema_fields
        assert not ctx.value_examples
        assert not ctx.guidelines
        assert ctx.user_query == "How many tasks finished?"

    def test_baseline_components_detected(self):
        ctx = perceive(build(PromptConfig().with_baseline()), 100_000)
        assert ctx.has_baseline

    def test_partial_baseline_is_not_baseline(self):
        ctx = perceive(build(PromptConfig(role=True, job=True)), 100_000)
        assert not ctx.has_baseline

    def test_schema_fields_recovered_exactly(self):
        cfg = PromptConfig(schema=True).with_baseline()
        ctx = perceive(build(cfg), 100_000)
        assert ctx.schema_fields == {"task_id", "generated.value"}
        assert ctx.field_types["generated.value"] == "float"

    def test_values_recovered(self):
        cfg = PromptConfig(values=True).with_baseline()
        ctx = perceive(build(cfg), 100_000)
        assert ctx.value_examples["status"] == ["FINISHED"]
        assert ctx.activity_names() == ("power", "average_results")

    def test_guidelines_split_into_lines(self):
        cfg = PromptConfig(guidelines=True).with_baseline()
        ctx = perceive(build(cfg), 100_000)
        assert len(ctx.guidelines) == 2
        assert "uppercase" in ctx.guidelines[0]

    def test_few_shot_fields_extracted(self):
        cfg = PromptConfig(few_shot=True).with_baseline()
        ctx = perceive(build(cfg), 100_000)
        assert "status" in ctx.few_shot_fields
        assert "activity_id" in ctx.few_shot_fields

    def test_signature_reflects_components(self):
        full = PromptConfig(
            few_shot=True, schema=True, values=True, guidelines=True
        ).with_baseline()
        sig = perceive(build(full), 100_000).signature()
        assert sig.startswith("B|F|S")


class TestTruncation:
    def test_small_window_truncates(self):
        cfg = PromptConfig(
            few_shot=True, schema=True, values=True, guidelines=True
        ).with_baseline()
        prompt = build(cfg)
        ctx = perceive(prompt, 200)
        assert ctx.truncated
        # the user query survives truncation (providers keep it in-window)
        assert ctx.user_query == "How many tasks finished?"

    def test_truncation_loses_tail_sections(self):
        cfg = PromptConfig(
            few_shot=True, schema=True, values=True, guidelines=True
        ).with_baseline()
        full = perceive(build(cfg), 1_000_000)
        tiny = perceive(build(cfg), 400)
        assert len(tiny.guidelines) < len(full.guidelines) or not tiny.value_examples

    def test_no_truncation_within_window(self):
        ctx = perceive(build(PromptConfig().with_baseline()), 100_000)
        assert not ctx.truncated
