"""Tests for the approximate tokenizer."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.llm.tokenizer import count_tokens, split_units


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_short_words_cost_one(self):
        assert count_tokens("the cat") == 2

    def test_long_words_cost_more(self):
        assert count_tokens("internationalization") >= 4

    def test_punctuation_counts(self):
        assert count_tokens("a.b") == 3

    def test_code_like_text(self):
        n = count_tokens("df[df['status'] == 'FINISHED']")
        assert 8 <= n <= 16

    def test_roughly_four_chars_per_token_on_prose(self):
        text = (
            "The provenance agent interprets natural language queries and "
            "translates them into structured DataFrame operations for live "
            "workflow monitoring across the computing continuum."
        )
        n = count_tokens(text)
        assert len(text) / 6 <= n <= len(text) / 2.5

    @given(st.text(max_size=300))
    def test_property_nonnegative_and_deterministic(self, text):
        assert count_tokens(text) >= 0
        assert count_tokens(text) == count_tokens(text)

    @given(st.text(max_size=120), st.text(max_size=120))
    def test_property_subadditive_concat(self, a, b):
        # concatenation can merge boundary units but never create many more
        assert count_tokens(a + " " + b) <= count_tokens(a) + count_tokens(b) + 1


class TestSplitUnits:
    def test_mixed_content(self):
        assert split_units("cpu=53.8%") == ["cpu", "=", "53.8", "%"]

    def test_identifiers_split_on_punctuation(self):
        units = split_units("telemetry_at_end.cpu.percent")
        assert "telemetry" in units and "." in units
