"""Tests for adaptive LLM routing by query class (§5.4 extension)."""

from __future__ import annotations

import pytest

from repro.evaluation.taxonomy import DataType, Workload
from repro.llm.routing import (
    AdaptiveModelRouter,
    RoutingPolicy,
    classify_text,
    learn_policy,
)


class TestClassifyText:
    @pytest.mark.parametrize(
        "text,workload",
        [
            ("What is the average duration per activity?", "OLAP"),
            ("Which host ran task 't1'?", "OLTP"),
            ("Give the breakdown of task counts by status.", "OLAP"),
            ("What was the CPU at the end of task 't1'?", "OLTP"),
        ],
    )
    def test_workload_guess(self, text, workload):
        assert classify_text(text)[0] == workload

    @pytest.mark.parametrize(
        "text,dtype",
        [
            ("What was the CPU usage?", "Telemetry"),
            ("Which node ran the task?", "Scheduling"),
            ("What value was generated?", "Dataflow"),
            ("Is the task finished?", "Control Flow"),
        ],
    )
    def test_data_type_guess(self, text, dtype):
        assert classify_text(text)[1] == dtype


class TestPolicy:
    def test_table_lookup_with_default(self):
        policy = RoutingPolicy("gpt-4", {("OLAP", "Telemetry"): "claude-opus-4"})
        assert policy.model_for("OLAP", "Telemetry") == "claude-opus-4"
        assert policy.model_for("OLTP", "Dataflow") == "gpt-4"
        assert policy.distinct_models() == {"gpt-4", "claude-opus-4"}


class TestLearnPolicy:
    def test_learned_policy_prefers_strong_models(self, eval_env_routing):
        records, queries, policy = eval_env_routing
        # every routed model must be one of the evaluated models
        assert policy.distinct_models() <= {
            "llama3-8b",
            "llama3-70b",
            "gemini-2.5-flash-lite",
            "gpt-4",
            "claude-opus-4",
        }
        # the weakest model never wins a class outright
        assert "llama3-8b" not in policy.distinct_models()

    def test_router_uses_labels_when_available(self, eval_env_routing):
        _records, queries, policy = eval_env_routing
        router = AdaptiveModelRouter(policy)
        q = queries[0]
        model = router.route(q.nl, query=q)
        expected_candidates = {
            policy.model_for(q.workload.value, dt.value) for dt in q.data_types
        }
        assert model in expected_candidates
        assert router.decisions[-1] == (q.nl, model)

    def test_router_falls_back_to_heuristics(self, eval_env_routing):
        _records, _queries, policy = eval_env_routing
        router = AdaptiveModelRouter(policy)
        model = router.route("What is the average CPU per host?")
        assert model in policy.distinct_models()


@pytest.fixture(scope="module")
def eval_env_routing():
    from repro.agent.context_manager import ContextManager
    from repro.capture.context import CaptureContext
    from repro.evaluation.query_set import build_query_set
    from repro.evaluation.runner import ExperimentRunner
    from repro.workflows.synthetic import run_synthetic_campaign

    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    run_synthetic_campaign(ctx, n_inputs=10)
    queries = build_query_set(cm.to_frame())
    runner = ExperimentRunner(cm, queries)
    records = runner.run(
        models=[
            "llama3-8b",
            "llama3-70b",
            "gemini-2.5-flash-lite",
            "gpt-4",
            "claude-opus-4",
        ],
        configs=["Full"],
        n_reps=3,
    )
    policy = learn_policy(records, queries)
    return records, queries, policy
