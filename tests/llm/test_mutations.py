"""Tests for pipeline mutations (the shapes of model mistakes)."""

from __future__ import annotations

from repro.llm import mutations as mut
from repro.query import parse_query
from repro.query.render import render_query


def pipe(code: str):
    return parse_query(code)


class TestFieldRewrite:
    def test_rewrite_everywhere(self):
        p = pipe(
            "df[df['hostname'] == 'x'].sort_values('hostname')"
            ".groupby('hostname')['duration'].mean()"
        )
        out = mut.rewrite_fields(p, {"hostname": "node"})
        code = render_query(out)
        assert "hostname" not in code
        assert code.count("node") == 3

    def test_identity_when_unmapped(self):
        p = pipe("df[df['a'] == 1]")
        assert mut.rewrite_fields(p, {"b": "c"}) == p


class TestLogicMutations:
    def test_flip_sort_direction(self):
        p = pipe("df.sort_values('t', ascending=False)")
        out = mut.flip_sort_direction(p)
        assert out.sort().ascending == (True,)

    def test_min_on_ids(self):
        p = pipe("df.sort_values('started_at', ascending=False).head(1)")
        out = mut.min_on_ids(p)
        assert out.sort().keys == ("task_id",)

    def test_drop_groupby_truncates_tail(self):
        p = pipe(
            "df.groupby('h')['v'].mean().sort_values('v', ascending=False).head(1)"
        )
        out = mut.drop_groupby(p)
        assert render_query(out) == "df['v'].mean()"

    def test_wrong_group_key_changes_key(self):
        p = pipe("df.groupby('activity_id')['v'].mean()")
        out = mut.wrong_group_key(p, 0)
        assert out.terminal().keys != ("activity_id",)

    def test_flip_time_comparison(self):
        p = pipe("df[df['cpu'] > 50]")
        out = mut.flip_time_comparison(p)
        assert render_query(out) == "df[df['cpu'] < 50]"

    def test_drop_filter_conjunct(self):
        p = pipe("df[(df['a'] == 1) & (df['b'] == 2)]")
        out = mut.drop_filter_conjunct(p, 0)
        assert len(out.filters()[0].predicate.__dict__) >= 1
        assert "b" not in render_query(out) or "a" not in render_query(out)

    def test_swap_aggregation(self):
        p = pipe("df['v'].mean()")
        out = mut.swap_aggregation(p, 0)
        assert out.terminal().agg != "mean"

    def test_drop_limit(self):
        p = pipe("df.sort_values('t').head(5)")
        assert mut.drop_limit(p).limit() is None

    def test_lowercase_string_literal(self):
        p = pipe("df[df['status'] == 'FINISHED']")
        assert "'finished'" in render_query(mut.lowercase_string_literal(p))

    def test_rescale_threshold(self):
        p = pipe("df[df['cpu'] > 80]")
        assert "0.8" in render_query(mut.rescale_threshold(p))

    def test_rescale_leaves_small_values(self):
        p = pipe("df[df['frac'] > 0.5]")
        assert mut.rescale_threshold(p) == p

    def test_sum_across_entities_reproduces_q5(self):
        p = pipe(
            "df[(df['activity_id'] == 'run_dft') & "
            "(df['used.molecule_name'] == 'parent')][['used.n_atoms']]"
        )
        out = mut.sum_across_entities(p)
        code = render_query(out)
        assert "molecule_name" not in code
        assert ".sum()" in code

    def test_projection_jitter(self):
        p = pipe("df[['a', 'b']]")
        out = mut.projection_jitter(p, 0)
        assert out.projection().columns != ("a", "b")

    def test_spurious_limit(self):
        p = pipe("df[df['a'] == 1]")
        assert mut.spurious_limit(p).limit() is not None

    def test_spurious_limit_respects_existing(self):
        p = pipe("df.head(3)")
        assert mut.spurious_limit(p) == p

    def test_every_trap_has_mutations(self):
        for trap, candidates in mut.LOGIC_MUTATIONS.items():
            assert candidates, f"trap {trap} has no mutations"
