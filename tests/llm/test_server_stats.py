"""LLMServer: thread-safe accounting, latency percentiles, realtime mode."""

from __future__ import annotations

import threading
import time

import pytest

from repro.llm.service import ChatRequest, LLMServer


def _request(i: int = 0, model: str = "gpt-4") -> ChatRequest:
    return ChatRequest(
        model=model,
        prompt=f"User query: How many tasks have finished? v{i}",
        query_id=f"q{i}",
    )


class TestStats:
    def test_counts_and_token_totals(self):
        server = LLMServer()
        responses = [server.complete(_request(i)) for i in range(5)]
        stats = server.stats()
        assert stats["requests"] == 5
        assert stats["prompt_tokens"] == sum(r.prompt_tokens for r in responses)
        assert stats["output_tokens"] == sum(r.output_tokens for r in responses)
        assert stats["total_tokens"] == (
            stats["prompt_tokens"] + stats["output_tokens"]
        )
        assert stats["simulated_latency_total_s"] == pytest.approx(
            sum(r.latency_s for r in responses)
        )

    def test_latency_percentiles_ordered(self):
        server = LLMServer()
        for i in range(40):
            server.complete(_request(i))
        stats = server.stats()
        assert (
            0
            < stats["latency_p50_s"]
            <= stats["latency_p90_s"]
            <= stats["latency_p99_s"]
            <= stats["latency_max_s"]
        )

    def test_empty_stats(self):
        stats = LLMServer().stats()
        assert stats["requests"] == 0
        assert stats["latency_p50_s"] is None

    def test_concurrent_completions_account_exactly(self):
        server = LLMServer()
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(20):
                    server.complete(_request(seed * 100 + i))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = server.stats()
        assert stats["requests"] == 160
        assert server.request_count == 160

    def test_history_kept_under_concurrency(self):
        server = LLMServer()
        server.keep_history = True

        def worker(seed: int) -> None:
            for i in range(10):
                server.complete(_request(seed * 50 + i))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(server.history) == 40


class TestRealtimeFactor:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LLMServer(realtime_factor=-0.1)

    def test_zero_factor_does_not_sleep(self):
        server = LLMServer()
        t0 = time.perf_counter()
        response = server.complete(_request())
        elapsed = time.perf_counter() - t0
        # simulated latency is seconds; real time must stay far below it
        assert response.latency_s > 0.1
        assert elapsed < response.latency_s / 2

    def test_factor_sleeps_scaled_latency(self):
        server = LLMServer(realtime_factor=0.02)
        t0 = time.perf_counter()
        response = server.complete(_request())
        elapsed = time.perf_counter() - t0
        assert elapsed >= response.latency_s * 0.02 * 0.8  # sched slop

    def test_stats_report_factor(self):
        assert LLMServer(realtime_factor=0.5).stats()["realtime_factor"] == 0.5
