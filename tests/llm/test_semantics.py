"""Tests for the rule-based semantic parser."""

from __future__ import annotations

import pytest

from repro.llm.semantics import SemanticParseError, parse_intent
from repro.query import ast as q
from repro.query.render import render_query

ACTIVITIES = (
    "scale_and_shift",
    "power",
    "average_results",
    "run_dft",
    "run_individual_bde",
)


def parse(nl: str, **kwargs):
    kwargs.setdefault("activity_names", ACTIVITIES)
    return parse_intent(nl, **kwargs)


class TestCounting:
    def test_how_many_with_status(self):
        p = parse("How many tasks have failed?")
        assert isinstance(p.steps[-1], q.RowCount)
        assert "status" in p.fields_used()

    def test_count_with_host_filter(self):
        p = parse("How many tasks ran on node-2?")
        code = render_query(p)
        assert "hostname" in code and "len(" in code


class TestAggregations:
    def test_average_metric(self):
        p = parse("What is the average duration of the tasks?")
        t = p.terminal()
        assert isinstance(t, q.Agg) and t.agg == "mean" and t.column == "duration"

    def test_max_metric(self):
        p = parse("What is the maximum CPU reached?")
        t = p.terminal()
        assert t.agg == "max"
        assert t.column == "telemetry_at_end.cpu.percent"

    def test_total_sum(self):
        p = parse("What is the total duration of all tasks?")
        assert p.terminal().agg == "sum"

    def test_contains_filter_with_mean(self):
        p = parse(
            "What is the average bond dissociation enthalpy for the bond "
            "labels that contain 'C-H'?"
        )
        code = render_query(p)
        assert "str.contains('C-H')" in code
        assert "generated.bd_enthalpy" in code and ".mean()" in code


class TestGroupBy:
    def test_per_activity_count(self):
        p = parse("How many tasks were executed per activity?")
        t = p.terminal()
        assert isinstance(t, q.GroupAgg)
        assert t.keys == ("activity_id",)
        assert t.agg == "count"

    def test_group_mean_metric(self):
        p = parse("What is the average duration per activity?")
        t = p.terminal()
        assert t.agg == "mean" and t.column == "duration"

    def test_groupby_metric_without_agg_verb_defaults_to_mean(self):
        p = parse("Show the CPU per host.")
        t = p.terminal()
        assert isinstance(t, q.GroupAgg) and t.agg == "mean"


class TestOrdering:
    def test_most_recent(self):
        p = parse("What is the status of the most recent task?")
        s = p.sort()
        assert s is not None and s.keys == ("started_at",) and s.ascending == (False,)
        assert p.limit() is not None and p.limit().n == 1

    def test_top_k(self):
        p = parse("Show the top 3 longest-running tasks.")
        assert p.limit().n == 3
        assert p.sort().keys == ("duration",)

    def test_first_task(self):
        p = parse("What input x did the first task use?")
        assert p.sort().ascending == (True,)


class TestFilters:
    def test_activity_mention(self):
        p = parse("What value did the power activity generate?")
        assert any(
            isinstance(c, q.Compare) and c.value == "power"
            for f in p.filters()
            for c in q.conjuncts(f.predicate)
        )

    def test_status_word_uppercased(self):
        p = parse("Which tasks are running right now?")
        comps = [
            c for f in p.filters() for c in q.conjuncts(f.predicate)
            if isinstance(c, q.Compare) and c.field.name == "status"
        ]
        assert comps and comps[0].value == "RUNNING"

    def test_threshold_above(self):
        p = parse("How many tasks ended with CPU above 80 percent?")
        comps = [
            c for f in p.filters() for c in q.conjuncts(f.predicate)
            if isinstance(c, q.Compare) and c.op == ">"
        ]
        assert comps and comps[0].value == 80

    def test_known_id_resolution(self):
        p = parse(
            "Show tasks of workflow 'abc-123'.",
            known_ids={"abc-123": "workflow_id"},
        )
        assert "workflow_id" in p.fields_used()


class TestErrors:
    def test_unparseable_raises(self):
        with pytest.raises(SemanticParseError):
            parse("tell me a story about dragons")

    def test_empty_raises(self):
        with pytest.raises(SemanticParseError):
            parse("hmm")
