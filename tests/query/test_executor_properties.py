"""Property-based tests: the query executor vs a naive reference.

Random pipelines over random frames must agree with an obvious
row-by-row interpretation — the executor, renderer, and parser form a
tool-chain the agent trusts blindly, so this is the load-bearing
equivalence test.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame
from repro.query import ast as q
from repro.query.executor import execute_query
from repro.query.parser import parse_query
from repro.query.render import render_query

_statuses = st.sampled_from(["FINISHED", "RUNNING", "FAILED"])
_hosts = st.sampled_from(["n0", "n1", "n2"])
_metric = st.one_of(
    st.none(), st.floats(-1e6, 1e6, allow_nan=False).map(lambda v: round(v, 3))
)


@st.composite
def frames(draw):
    n = draw(st.integers(0, 25))
    return DataFrame(
        {
            "task_id": [f"t{i}" for i in range(n)],
            "status": draw(st.lists(_statuses, min_size=n, max_size=n)),
            "hostname": draw(st.lists(_hosts, min_size=n, max_size=n)),
            "metric": draw(st.lists(_metric, min_size=n, max_size=n)),
        }
    )


class TestFilterEquivalence:
    @given(frames(), _statuses)
    def test_eq_filter(self, frame, status):
        result = execute_query(
            parse_query(f"df[df['status'] == '{status}']"), frame
        )
        expected = [r for r in frame.to_dicts() if r["status"] == status]
        assert result.to_dicts() == expected

    @given(frames(), st.floats(-1e6, 1e6, allow_nan=False))
    def test_threshold_filter(self, frame, threshold):
        result = execute_query(
            parse_query(f"df[df['metric'] > {threshold!r}]"), frame
        )
        expected = [
            r
            for r in frame.to_dicts()
            if r["metric"] is not None and r["metric"] > threshold
        ]
        assert result.to_dicts() == expected

    @given(frames(), _statuses, _hosts)
    def test_conjunction(self, frame, status, host):
        code = (
            f"df[(df['status'] == '{status}') & (df['hostname'] == '{host}')]"
        )
        result = execute_query(parse_query(code), frame)
        expected = [
            r
            for r in frame.to_dicts()
            if r["status"] == status and r["hostname"] == host
        ]
        assert result.to_dicts() == expected


class TestCountAndAggEquivalence:
    @given(frames(), _statuses)
    def test_row_count(self, frame, status):
        n = execute_query(
            parse_query(f"len(df[df['status'] == '{status}'])"), frame
        )
        assert n == sum(1 for r in frame.to_dicts() if r["status"] == status)

    @given(frames())
    def test_mean(self, frame):
        result = execute_query(parse_query("df['metric'].mean()"), frame)
        vals = [r["metric"] for r in frame.to_dicts() if r["metric"] is not None]
        if not vals:
            assert result is None
        else:
            assert abs(result - sum(vals) / len(vals)) < 1e-6 * max(
                1.0, abs(result)
            )

    @given(frames())
    def test_groupby_count(self, frame):
        result = execute_query(
            parse_query("df.groupby('status')['task_id'].count()"), frame
        )
        naive: dict[str, int] = {}
        for r in frame.to_dicts():
            naive[r["status"]] = naive.get(r["status"], 0) + 1
        got = {r["status"]: r["task_id"] for r in result.to_dicts()}
        assert got == naive


class TestRoundTripExecution:
    """render(parse(code)) executes identically to code."""

    @given(frames())
    @settings(max_examples=40)
    def test_rerendered_pipeline_same_result(self, frame):
        codes = [
            "df[df['status'] == 'FINISHED'][['task_id', 'metric']]",
            "df.sort_values('metric', ascending=False).head(3)",
            "df.groupby('hostname')['metric'].mean()",
            "len(df[df['metric'] > 0])",
        ]
        for code in codes:
            p1 = parse_query(code)
            p2 = parse_query(render_query(p1))
            r1 = execute_query(p1, frame)
            r2 = execute_query(p2, frame)
            if isinstance(r1, DataFrame):
                assert r1.equals(r2)
            else:
                assert r1 == r2


class TestSortHeadSemantics:
    @given(frames(), st.integers(0, 30))
    def test_sorted_head_prefix(self, frame, n):
        full = execute_query(
            parse_query("df.sort_values('metric', ascending=True)"), frame
        )
        head = execute_query(
            parse_query(f"df.sort_values('metric', ascending=True).head({n})"),
            frame,
        )
        assert head.to_dicts() == full.to_dicts()[:n]
