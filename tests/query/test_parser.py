"""Tests for the query-code parser."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.query import ast as q
from repro.query.parser import parse_query, tokenize


class TestTokenizer:
    def test_strings_numbers_ops(self):
        toks = tokenize("df['a'] >= -1.5e3")
        kinds = [t.kind for t in toks]
        assert kinds == ["NAME", "PUNCT", "STRING", "PUNCT", "OP", "NUMBER"]

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("df$x")

    def test_escaped_quotes(self):
        toks = tokenize(r"df['it\'s']")
        assert toks[2].kind == "STRING"


class TestParseBasics:
    def test_simple_filter(self):
        p = parse_query("df[df['status'] == 'FINISHED']")
        assert p.steps == (
            q.Filter(q.Compare(q.Field("status"), "==", "FINISHED")),
        )

    def test_numeric_comparison(self):
        p = parse_query("df[df['cpu'] > 50]")
        assert p.steps[0].predicate.value == 50

    def test_float_literal(self):
        p = parse_query("df[df['cpu'] >= 12.5]")
        assert p.steps[0].predicate.value == 12.5

    def test_and_or_precedence(self):
        p = parse_query("df[(df['a'] == 1) & (df['b'] == 2) | (df['c'] == 3)]")
        pred = p.steps[0].predicate
        assert isinstance(pred, q.Or)
        assert isinstance(pred.left, q.And)

    def test_not_operator(self):
        p = parse_query("df[~(df['a'] == 1)]")
        assert isinstance(p.steps[0].predicate, q.Not)

    def test_str_contains(self):
        p = parse_query("df[df['bond_id'].str.contains('C-H')]")
        assert p.steps[0].predicate == q.StrContains(q.Field("bond_id"), "C-H", True)

    def test_str_contains_case_kwarg(self):
        p = parse_query("df[df['s'].str.contains('x', case=False)]")
        assert p.steps[0].predicate.case is False

    def test_isin(self):
        p = parse_query("df[df['a'].isin(['x', 'y'])]")
        assert p.steps[0].predicate == q.IsIn(q.Field("a"), ("x", "y"))

    def test_between(self):
        p = parse_query("df[df['t'].between(0, 10)]")
        assert p.steps[0].predicate == q.Between(q.Field("t"), 0, 10)

    def test_notna_isna(self):
        assert isinstance(
            parse_query("df[df['x'].notna()]").steps[0].predicate, q.NotNull
        )
        assert isinstance(
            parse_query("df[df['x'].isna()]").steps[0].predicate, q.IsNull
        )


class TestParseChains:
    def test_sort_head_project(self):
        p = parse_query(
            "df.sort_values('started_at', ascending=False).head(5)[['task_id']]"
        )
        assert p.steps == (
            q.Sort(("started_at",), (False,)),
            q.Head(5),
            q.Project(("task_id",)),
        )

    def test_multi_key_sort(self):
        p = parse_query(
            "df.sort_values(['a', 'b'], ascending=[True, False])"
        )
        assert p.steps[0] == q.Sort(("a", "b"), (True, False))

    def test_groupby_agg(self):
        p = parse_query("df.groupby('activity_id')['duration'].mean()")
        assert p.steps == (q.GroupAgg(("activity_id",), "duration", "mean"),)

    def test_groupby_multi_key(self):
        p = parse_query("df.groupby(['a', 'b'])['v'].sum()")
        assert p.steps[0].keys == ("a", "b")

    def test_groupby_agg_string_form(self):
        p = parse_query("df.groupby('a')['v'].agg('median')")
        assert p.steps[0].agg == "median"

    def test_column_agg(self):
        p = parse_query("df['bd_energy'].max()")
        assert p.steps == (q.Agg("bd_energy", "max"),)

    def test_column_agg_via_agg_call(self):
        p = parse_query("df['x'].agg('std')")
        assert p.steps == (q.Agg("x", "std"),)

    def test_unique(self):
        p = parse_query("df['hostname'].unique()")
        assert p.steps == (q.Unique("hostname"),)

    def test_len_wrapper(self):
        p = parse_query("len(df[df['status'] == 'RUNNING'])")
        assert isinstance(p.steps[-1], q.RowCount)

    def test_nlargest_desugars(self):
        p = parse_query("df.nlargest(3, 'cpu')")
        assert p.steps == (q.Sort(("cpu",), (False,)), q.Head(3))

    def test_nsmallest_desugars(self):
        p = parse_query("df.nsmallest(2, 'cpu')")
        assert p.steps == (q.Sort(("cpu",), (True,)), q.Head(2))

    def test_drop_duplicates_forms(self):
        assert parse_query("df.drop_duplicates()").steps == (q.DropDuplicates(()),)
        assert parse_query("df.drop_duplicates(subset='h')").steps == (
            q.DropDuplicates(("h",)),
        )
        assert parse_query("df.drop_duplicates(subset=['h', 'i'])").steps == (
            q.DropDuplicates(("h", "i")),
        )

    def test_bare_column_select_is_projection(self):
        p = parse_query("df['task_id']")
        assert p.steps == (q.Project(("task_id",)),)

    def test_filter_then_column_agg(self):
        p = parse_query("df[df['a'] == 1]['v'].mean()")
        assert p.steps == (
            q.Filter(q.Compare(q.Field("a"), "==", 1)),
            q.Agg("v", "mean"),
        )


class TestParseErrors:
    @pytest.mark.parametrize(
        "code",
        [
            "",
            "df.foo()",
            "df[",
            "df['a'] ==",
            "notdf['x']",
            "df[df['a'] = 1]",
            "df.head('a')",
            "df.head(2.5)",
            "df.groupby('a').mean()",  # groupby needs a selected column
            "df['x'].frobnicate()",
            "df[df['a'] == 1] extra",
            "len(df['x'].mean())",
            "df.sort_values()",
            "df[df['a'].isin('x')]",
            "SELECT * FROM tasks",
        ],
    )
    def test_rejects_bad_code(self, code):
        with pytest.raises(QuerySyntaxError):
            parse_query(code)

    def test_unknown_agg_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("df.groupby('a')['v'].frobnicate()")

    def test_double_column_select_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("df['a']['b']")
