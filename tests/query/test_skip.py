"""Skip: the OFFSET step added for the SQL dialect, on the pandas surface."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.errors import QuerySyntaxError
from repro.query import Skip, execute_query, parse_query, render_query
from repro.query import ast as q
from repro.query.pushdown import pipeline_prefilter


@pytest.fixture
def frame():
    return DataFrame.from_records(
        [{"task_id": f"t{i}", "duration": float(i)} for i in range(10)]
    )


class TestParse:
    def test_iloc_parses_to_skip(self):
        assert parse_query("df.iloc[3:]") == q.Pipeline((Skip(3),))

    def test_chained(self):
        pipeline = parse_query(
            "df.sort_values('duration', ascending=False).iloc[2:].head(3)"
        )
        assert pipeline.steps[1] == Skip(2)

    @pytest.mark.parametrize(
        "code",
        [
            "df.iloc[:3]",     # slice-stop form is head, not skip
            "df.iloc[-2:]",    # negative offsets are not supported
            "df.iloc[1.5:]",
            "df.iloc[3]",
        ],
    )
    def test_unsupported_iloc_forms(self, code):
        with pytest.raises(QuerySyntaxError):
            parse_query(code)


class TestRender:
    def test_roundtrip(self):
        code = "df.iloc[4:]"
        assert render_query(parse_query(code)) == code

    def test_describe(self):
        assert q.Pipeline((Skip(4),)).describe() == "skip(4)"


class TestExecute:
    def test_drops_leading_rows(self, frame):
        result = execute_query(parse_query("df.iloc[3:]"), frame)
        assert [r["task_id"] for r in result.to_dicts()] == [
            f"t{i}" for i in range(3, 10)
        ]

    def test_offset_past_end_is_empty(self, frame):
        assert len(execute_query(parse_query("df.iloc[99:]"), frame)) == 0

    def test_offset_then_limit_windows(self, frame):
        result = execute_query(parse_query("df.iloc[2:].head(3)"), frame)
        assert [r["task_id"] for r in result.to_dicts()] == ["t2", "t3", "t4"]


class TestPushdown:
    def test_leading_filter_before_skip_still_pushes_down(self):
        pipeline = parse_query("df[df['duration'] > 2].iloc[1:]")
        assert pipeline_prefilter(pipeline) == {"duration": {"$gt": 2}}


class TestSliceSemantics:
    """The executor takes skips as storage slices (frame.islice), not
    index arrays; clamping must match the iloc[n:] contract exactly."""

    def test_skip_zero_is_identity(self, frame):
        result = execute_query(q.Pipeline((Skip(0),)), frame)
        assert [r["task_id"] for r in result.to_dicts()] == [
            f"t{i}" for i in range(10)
        ]

    def test_negative_skip_clamps_to_zero(self, frame):
        # the parser rejects iloc[-2:], but SQL OFFSET and hand-built
        # IR can still carry a negative n
        result = execute_query(q.Pipeline((Skip(-3),)), frame)
        assert len(result) == 10

    def test_islice_window(self, frame):
        window = frame.islice(2, 5)
        assert [r["task_id"] for r in window.to_dicts()] == ["t2", "t3", "t4"]

    def test_islice_open_end_and_clamps(self, frame):
        assert len(frame.islice(8)) == 2
        assert len(frame.islice(0)) == 10
        assert len(frame.islice(-4)) == 10      # start clamps up to 0
        assert len(frame.islice(5, 3)) == 0     # stop clamps up to start
        assert len(frame.islice(99)) == 0

    def test_islice_preserves_dtypes(self, frame):
        window = frame.islice(3, 7)
        assert window.column("duration").dtype == frame.column("duration").dtype
        assert window.column("duration").to_list() == [3.0, 4.0, 5.0, 6.0]
