"""Tests for structural/functional query comparison."""

from __future__ import annotations

import pytest

from repro.query import parse_query
from repro.query.compare import compare_queries, results_equivalent
from repro.dataframe import DataFrame


def diff(gold: str, gen: str, frame=None, known=None):
    return compare_queries(
        parse_query(gold), parse_query(gen), frame=frame, known_fields=known
    )


class TestIdentical:
    def test_same_query_scores_one(self, task_frame):
        d = diff(
            "df[df['status'] == 'FINISHED']",
            "df[df['status'] == 'FINISHED']",
            frame=task_frame,
        )
        assert d.rubric_score() == pytest.approx(1.0)
        assert d.results_match is True

    def test_filter_order_is_irrelevant(self):
        d = diff(
            "df[(df['a'] == 1) & (df['b'] == 2)]",
            "df[(df['b'] == 2) & (df['a'] == 1)]",
        )
        assert d.filter_exact
        assert d.rubric_score() == pytest.approx(1.0)

    def test_isin_singleton_equals_eq(self):
        d = diff("df[df['a'] == 'x']", "df[df['a'].isin(['x'])]")
        assert d.filter_exact


class TestStructuralDifferences:
    def test_wrong_filter_value_partial_credit(self):
        d = diff("df[df['cpu'] > 50]", "df[df['cpu'] > 80]")
        assert 0 < d.filter_jaccard < 1
        assert d.value_mismatches == 1

    def test_wrong_aggregation(self):
        d = diff("df['v'].mean()", "df['v'].sum()")
        assert not d.terminal_match
        assert d.terminal_close  # sum/mean are "close"

    def test_incompatible_aggregation(self):
        d = diff("df['v'].mean()", "df['v'].min()")
        assert not d.terminal_match
        assert not d.terminal_close

    def test_wrong_agg_column(self):
        d = diff("df['a'].mean()", "df['b'].mean()")
        assert d.terminal_match and not d.terminal_column_match

    def test_wrong_groupby_keys(self):
        d = diff(
            "df.groupby('a')['v'].mean()",
            "df.groupby('b')['v'].mean()",
        )
        assert not d.groupby_keys_match

    def test_flipped_sort_direction(self):
        d = diff(
            "df.sort_values('t', ascending=False).head(1)",
            "df.sort_values('t', ascending=True).head(1)",
        )
        assert d.sort_direction_flipped
        assert d.rubric_score() < 0.95

    def test_missing_limit(self):
        d = diff("df.sort_values('t').head(5)", "df.sort_values('t')")
        assert not d.limit_match

    def test_projection_jaccard(self):
        d = diff("df[['a', 'b']]", "df[['a', 'c']]")
        assert d.projection_jaccard == pytest.approx(1 / 3)


class TestHallucinations:
    def test_unknown_field_flagged(self, task_frame):
        d = diff(
            "df[df['hostname'] == 'x']",
            "df[df['node'] == 'x']",
            known=set(task_frame.columns),
        )
        assert d.hallucinated_fields == {"node"}
        assert d.rubric_score() < 0.5

    def test_known_fields_not_flagged(self, task_frame):
        d = diff(
            "df[df['hostname'] == 'x']",
            "df[df['hostname'] == 'y']",
            known=set(task_frame.columns),
        )
        assert not d.hallucinated_fields


class TestFunctionalEquivalence:
    def test_sort_head_vs_max(self, task_frame):
        d = diff(
            "df['duration'].max()",
            "df.sort_values('duration', ascending=False).head(1)",
            frame=task_frame,
        )
        assert d.results_match is True
        assert d.rubric_score() >= 0.9

    def test_len_vs_count_agg(self, task_frame):
        d = diff(
            "len(df[df['status'] == 'FINISHED'])",
            "df[df['status'] == 'FINISHED']['task_id'].count()",
            frame=task_frame,
        )
        assert d.results_match is True

    def test_execution_error_caps_score(self, task_frame):
        d = diff(
            "df[df['hostname'] == 'x']",
            "df[df['node'] == 'x']",
            frame=task_frame,
        )
        assert d.gen_execution_error is not None
        assert d.rubric_score() <= 0.2

    def test_different_results_cap(self, task_frame):
        d = diff(
            "df[df['status'] == 'FINISHED']",
            "df[df['status'] == 'FAILED']",
            frame=task_frame,
        )
        assert d.results_match is False
        assert d.rubric_score() <= 0.75


class TestResultsEquivalent:
    def test_scalars_with_tolerance(self):
        assert results_equivalent(1.0, 1.0 + 1e-12)
        assert not results_equivalent(1.0, 1.1)

    def test_scalar_vs_1x1_frame(self):
        assert results_equivalent(5.0, DataFrame({"x": [5.0]}))

    def test_unordered_frames(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"x": [2, 1]})
        assert results_equivalent(a, b, ordered=False)
        assert not results_equivalent(a, b, ordered=True)

    def test_lists_as_sets(self):
        assert results_equivalent(["a", "b"], ["b", "a"], ordered=False)

    def test_single_column_rename_ignored(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"renamed": [1, 2]})
        assert results_equivalent(a, b)

    def test_row_count_mismatch(self):
        assert not results_equivalent(DataFrame({"x": [1]}), DataFrame({"x": [1, 1]}))
