"""Tests for query execution against the DataFrame engine."""

from __future__ import annotations

import pytest

from repro.errors import QueryExecutionError
from repro.query import parse_query
from repro.query.executor import execute_query


def run(code: str, frame):
    return execute_query(parse_query(code), frame)


class TestExecution:
    def test_filter(self, task_frame):
        out = run("df[df['status'] == 'FINISHED']", task_frame)
        assert len(out) == 2

    def test_compound_filter(self, task_frame):
        out = run(
            "df[(df['status'] == 'FINISHED') & (df['telemetry_at_end.cpu.percent'] > 50)]",
            task_frame,
        )
        assert out.column("task_id").to_list() == ["1000.1_0"]

    def test_or_filter(self, task_frame):
        out = run("df[(df['status'] == 'FAILED') | (df['status'] == 'RUNNING')]", task_frame)
        assert len(out) == 2

    def test_negation(self, task_frame):
        out = run("df[~(df['status'] == 'FINISHED')]", task_frame)
        assert len(out) == 2

    def test_str_contains(self, task_frame):
        out = run("df[df['generated.bond_id'].str.contains('C-H')]", task_frame)
        assert len(out) == 2

    def test_sort_and_head(self, task_frame):
        out = run("df.sort_values('duration', ascending=False).head(1)", task_frame)
        assert out.row(0)["task_id"] == "1000.1_0"

    def test_projection(self, task_frame):
        out = run("df[['task_id', 'status']]", task_frame)
        assert out.columns == ["task_id", "status"]

    def test_groupby_mean(self, task_frame):
        out = run("df.groupby('activity_id')['duration'].mean()", task_frame)
        rows = {r["activity_id"]: r["duration"] for r in out.to_dicts()}
        assert rows["run_dft"] == pytest.approx(1.25)  # (2.0 + 0.5) / 2

    def test_column_agg(self, task_frame):
        assert run("df['generated.bd_enthalpy'].max()", task_frame) == pytest.approx(104.9)

    def test_unique(self, task_frame):
        assert run("df['hostname'].unique()", task_frame) == [
            "frontier00084",
            "frontier00085",
            "frontier00086",
        ]

    def test_row_count(self, task_frame):
        assert run("len(df[df['status'] == 'RUNNING'])", task_frame) == 1

    def test_drop_duplicates(self, task_frame):
        out = run("df.drop_duplicates(subset=['hostname'])", task_frame)
        assert len(out) == 3

    def test_between(self, task_frame):
        out = run("df[df['telemetry_at_end.cpu.percent'].between(20, 60)]", task_frame)
        assert len(out) == 2

    def test_isna_notna(self, task_frame):
        assert run("len(df[df['duration'].isna()])", task_frame) == 1
        assert run("len(df[df['duration'].notna()])", task_frame) == 3


class TestExecutionErrors:
    def test_missing_column_becomes_query_error(self, task_frame):
        with pytest.raises(QueryExecutionError) as err:
            run("df[df['node'] == 'x']", task_frame)
        assert "node" in str(err.value)

    def test_bad_aggregation_target(self, task_frame):
        with pytest.raises(QueryExecutionError):
            run("df['status'].mean()", task_frame)

    def test_missing_projection_column(self, task_frame):
        with pytest.raises(QueryExecutionError):
            run("df[['task_id', 'execution_id']]", task_frame)

    def test_missing_sort_key(self, task_frame):
        with pytest.raises(QueryExecutionError):
            run("df.sort_values('wall_time')", task_frame)
