"""QueryCache: versioned memoisation, canonical keys, API/tool wiring."""

from __future__ import annotations

import threading

import pytest

from repro.agent.context_manager import ContextManager
from repro.agent.tools.db_query import DatabaseQueryTool
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI, store_version
from repro.query import parse_query
from repro.query.cache import MISS, QueryCache, canonical_filter_key
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore


def _doc(i: int, **extra) -> dict:
    return dict(
        {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % 3}",
            "activity_id": "square",
            "status": "FINISHED",
            "started_at": 1000.0 + i,
            "ended_at": 1001.0 + i,
            "duration": 1.0,
            "used": {"x": i},
            "generated": {"y": i * i},
        },
        **extra,
    )


class TestQueryCacheCore:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get("k", 1) is MISS
        cache.put("k", 1, "value")
        assert cache.get("k", 1) == "value"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_version_bump_invalidates(self):
        cache = QueryCache()
        cache.put("k", 1, "old")
        assert cache.get("k", 2) is MISS  # write happened: version moved
        assert cache.stats()["invalidations"] == 1
        cache.put("k", 2, "new")
        assert cache.get("k", 2) == "new"

    def test_none_key_bypasses(self):
        cache = QueryCache()
        cache.put(None, 1, "x")
        assert cache.get(None, 1) is MISS
        assert len(cache) == 0

    def test_cached_none_distinguished_from_miss(self):
        cache = QueryCache()
        cache.put("k", 1, None)
        assert cache.get("k", 1) is None

    def test_stale_put_does_not_clobber_fresher_entry(self):
        cache = QueryCache()
        cache.put("k", 5, "fresh")
        cache.put("k", 3, "stale")  # a slow executor finishing late
        assert cache.get("k", 5) == "fresh"

    def test_lru_bound(self):
        cache = QueryCache(max_entries=2)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        assert cache.get("a", 1) == 1  # refresh a
        cache.put("c", 1, 3)  # evicts b
        assert cache.get("b", 1) is MISS
        assert cache.get("a", 1) == 1
        assert cache.get("c", 1) == 3

    def test_thread_safety_smoke(self):
        cache = QueryCache(max_entries=64)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    k = f"k{(seed * 31 + i) % 100}"
                    if cache.get(k, i % 7) is MISS:
                        cache.put(k, i % 7, i)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestCanonicalFilterKey:
    def test_order_insensitive(self):
        assert canonical_filter_key({"a": 1, "b": 2}) == canonical_filter_key(
            {"b": 2, "a": 1}
        )

    def test_nested_and_lists(self):
        k1 = canonical_filter_key({"a": {"$in": [1, 2]}, "b": {"$gt": 0}})
        k2 = canonical_filter_key({"b": {"$gt": 0}, "a": {"$in": [1, 2]}})
        assert k1 == k2
        # list order is semantic for $in dedup purposes? no — but keys
        # must at least distinguish different value sets
        assert k1 != canonical_filter_key({"a": {"$in": [2, 3]}, "b": {"$gt": 0}})

    def test_scalar_type_tagging(self):
        assert canonical_filter_key({"a": 1}) != canonical_filter_key({"a": 1.0})
        assert canonical_filter_key({"a": 1}) != canonical_filter_key({"a": True})

    def test_none_and_empty(self):
        assert canonical_filter_key(None) == canonical_filter_key({})

    def test_unhashable_returns_none(self):
        import numpy as np

        # sets are unordered and unhashable, numpy arrays unhashable:
        # such filters bypass the cache instead of mis-keying
        assert canonical_filter_key({"a": {"$in": {1, 2}}}) is None
        assert canonical_filter_key({"a": np.array([1, 2])}) is None


class TestStoreVersion:
    def test_memory_store_bumps_on_every_write(self):
        db = ProvenanceDatabase()
        v0 = db.version()
        db.insert(_doc(1))
        v1 = db.version()
        db.upsert(_doc(1, status="RUNNING"))
        v2 = db.version()
        db.upsert_many([_doc(2), _doc(3)])
        v3 = db.version()
        db.insert_many([_doc(4)])
        v4 = db.version()
        assert v0 < v1 < v2 < v3 < v4

    def test_reads_do_not_bump(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(5)])
        v = db.version()
        db.find({"status": "FINISHED"})
        db.count()
        db.distinct("workflow_id")
        db.aggregate([{"$match": {"status": "FINISHED"}}])
        db.explain({"task_id": "t1"})
        assert db.version() == v

    def test_clear_bumps_never_resets(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(5)])
        v = db.version()
        db.clear()
        assert db.version() > v

    def test_sharded_store_aggregates_shards(self):
        sharded = ShardedProvenanceStore(4)
        v0 = sharded.version()
        sharded.upsert_many([_doc(i) for i in range(20)])
        v1 = sharded.version()
        assert v1 > v0
        sharded.upsert(_doc(3, status="RUNNING"))
        assert sharded.version() > v1
        v2 = sharded.version()
        sharded.clear()
        assert sharded.version() > v2  # clear bumps, never resets

    def test_store_version_helper(self):
        assert store_version(ProvenanceDatabase()) == 0
        assert store_version(object()) is None


class TestQueryAPICaching:
    def test_to_frame_cached_until_write(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(10)])
        api = QueryAPI(db)
        f1 = api.to_frame({"type": "task"})
        f2 = api.to_frame({"type": "task"})
        assert f1 is f2  # identical object: served from cache
        db.upsert(_doc(99))
        f3 = api.to_frame({"type": "task"})
        assert f3 is not f2
        assert len(f3) == len(f2) + 1

    def test_filter_order_shares_entry(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(4)])
        api = QueryAPI(db)
        f1 = api.to_frame({"type": "task", "status": "FINISHED"})
        f2 = api.to_frame({"status": "FINISHED", "type": "task"})
        assert f1 is f2

    def test_explain_reports_cache(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(4)])
        api = QueryAPI(db)
        api.to_frame()
        api.to_frame()
        plan = api.explain({"task_id": "t1"})
        assert plan["cache"]["hits"] == 1
        assert plan["cache"]["misses"] == 1
        assert plan["cache"]["store_version"] == db.version()

    def test_uncacheable_backend_still_works(self):
        class Minimal:
            def find(self, filt=None, *, sort=None, limit=None, projection=None):
                return [dict(_doc(1))]

            def explain(self, filt=None):
                return {"backend": "minimal"}

        api = QueryAPI(Minimal())
        f1 = api.to_frame()
        f2 = api.to_frame()
        assert f1 is not f2  # no version(): cache bypassed
        assert "cache" not in api.explain()


class TestDatabaseToolCaching:
    def _tool(self, db):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker).start()
        ctx.broker.publish_batch("provenance.task", db.all())
        api = QueryAPI(db)
        tool = DatabaseQueryTool(api, cm, LLMServer())
        assert tool.cache is api.cache  # shared accounting
        return tool

    def test_write_version_bump_miss_then_hit(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(8)])
        tool = self._tool(db)
        q = "How many tasks have finished?"
        first = tool.invoke(question=q)
        assert first.ok and first.details["cache"] == "miss"
        second = tool.invoke(question=q)
        assert second.ok and second.details["cache"] == "hit"
        assert second.data == first.data and second.summary == first.summary

        db.upsert(_doc(100))  # write -> version bump -> miss
        third = tool.invoke(question=q)
        assert third.ok and third.details["cache"] == "miss"
        assert third.data == first.data + 1  # the new FINISHED task counts
        fourth = tool.invoke(question=q)
        assert fourth.details["cache"] == "hit"

    def test_phrasings_with_same_ir_share_entry(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(8)])
        tool = self._tool(db)
        a = tool.invoke(question="How many tasks have finished?")
        b = tool.invoke(question="how many tasks have FINISHED?")
        assert a.ok and b.ok
        if parse_query(a.code) == parse_query(b.code):
            assert b.details["cache"] == "hit"

    def test_cached_list_results_are_copies(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(8)])
        tool = self._tool(db)
        q = "What are the distinct activities?"
        first = tool.invoke(question=q)
        if not first.ok or not isinstance(first.data, list):
            pytest.skip("question did not produce a list result")
        first.data.append("tampered")
        second = tool.invoke(question=q)
        assert "tampered" not in second.data


class TestUnhashableQueryIR:
    def test_unhashable_pipeline_literal_bypasses_cache(self):
        """A model emitting a list literal must degrade, not crash the turn."""
        from repro.llm.service import ChatResponse

        class CannedLLM:
            def complete(self, request):
                return ChatResponse(
                    model=request.model,
                    text='df[df["used.x"] == [1, 2]]',
                    prompt_tokens=10,
                    output_tokens=5,
                    latency_s=0.1,
                    truncated=False,
                )

        db = ProvenanceDatabase()
        db.upsert_many([_doc(i) for i in range(4)])
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker).start()
        ctx.broker.publish_batch("provenance.task", db.all())
        tool = DatabaseQueryTool(QueryAPI(db), cm, CannedLLM())
        result = tool.invoke(question="weird list comparison")
        # graceful ToolResult either way — never a TypeError escape
        assert result.details.get("cache") != "hit"
        assert result.summary


class TestUnhashableFilterToFrame:
    def test_unhashable_filters_never_share_a_cache_entry(self):
        db = ProvenanceDatabase()
        db.upsert_many([_doc(0, status="A"), _doc(1, status="B")])
        api = QueryAPI(db)
        fa = api.to_frame({"status": {"$in": {"A"}}})  # set: unhashable key
        fb = api.to_frame({"status": {"$in": {"B"}}})
        assert fa.column("task_id").to_list() == ["t0"]
        assert fb.column("task_id").to_list() == ["t1"]  # not A's cached frame
        # and nothing was cached for either
        assert api.cache.stats()["entries"] == 0


class TestExplicitEmptyCacheIsKept:
    def test_query_api_keeps_a_shared_empty_cache(self):
        """Regression: ``cache or QueryCache()`` dropped an explicitly
        shared cache whenever it was (still) empty — len() == 0 is falsy
        — silently unsharing every facade handed a fresh cache (the
        normal way one is shared, e.g. across a durable-store restart)."""
        shared = QueryCache()
        api = QueryAPI(ProvenanceDatabase(), cache=shared)
        assert api.cache is shared

    def test_agent_service_keeps_a_shared_empty_cache(self):
        from repro.agent.service import AgentService
        from repro.llm.service import LLMServer

        shared = QueryCache()
        ctx = CaptureContext()
        service = AgentService(
            ctx,
            llm=LLMServer(),
            query_api=QueryAPI(ProvenanceDatabase()),
            query_cache=shared,
        )
        try:
            assert service.query_cache is shared
        finally:
            service.close()
