"""Render/parse round-trip tests, including property-based pipeline generation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.query import ast as q
from repro.query.parser import parse_query
from repro.query.render import render_query

_fields = st.sampled_from(
    ["activity_id", "status", "duration", "telemetry_at_end.cpu.percent", "generated.bond_id"]
)
_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-. "),
    min_size=1,
    max_size=12,
)
_numbers = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(float),
)
_literals = st.one_of(_strings, _numbers, st.booleans(), st.none())


def _leaf_predicates():
    field = _fields.map(q.Field)
    return st.one_of(
        st.builds(q.Compare, field, st.sampled_from(q.Compare.OPS), _literals),
        st.builds(q.StrContains, field, _strings, st.just(True)),
        st.builds(q.StrStartsWith, field, _strings),
        st.builds(q.StrEndsWith, field, _strings),
        st.builds(q.IsIn, field, st.lists(_strings, min_size=1, max_size=3).map(tuple)),
        st.builds(q.Between, field, _numbers, _numbers),
        st.builds(q.NotNull, field),
        st.builds(q.IsNull, field),
    )


def _predicates():
    return st.recursive(
        _leaf_predicates(),
        lambda children: st.one_of(
            st.builds(q.And, children, children),
            st.builds(q.Or, children, children),
            st.builds(q.Not, children),
        ),
        max_leaves=5,
    )


_aggs = st.sampled_from(["mean", "sum", "min", "max", "count", "median", "std", "nunique"])


def _nonterminal_steps():
    return st.one_of(
        st.builds(q.Filter, _predicates()),
        st.builds(q.Project, st.lists(_fields, min_size=1, max_size=3, unique=True).map(tuple)),
        st.lists(_fields, min_size=1, max_size=2, unique=True).flatmap(
            lambda keys: st.lists(st.booleans(), min_size=len(keys), max_size=len(keys)).map(
                lambda dirs: q.Sort(tuple(keys), tuple(dirs))
            )
        ),
        st.builds(q.Head, st.integers(0, 100)),
        st.builds(q.Tail, st.integers(0, 100)),
        st.builds(q.DropDuplicates, st.lists(_fields, max_size=2, unique=True).map(tuple)),
    )


def _terminal_steps():
    return st.one_of(
        st.builds(q.GroupAgg, st.lists(_fields, min_size=1, max_size=2, unique=True).map(tuple), _fields, _aggs),
        st.builds(q.Agg, _fields, _aggs),
        st.builds(q.Unique, _fields),
        st.just(q.RowCount()),
    )


@st.composite
def pipelines(draw):
    body = draw(st.lists(_nonterminal_steps(), max_size=4))
    if draw(st.booleans()):
        body.append(draw(_terminal_steps()))
    return q.Pipeline(tuple(body))


class TestRoundTrip:
    @given(pipelines())
    def test_parse_of_render_is_identity(self, pipeline):
        code = render_query(pipeline)
        assert parse_query(code) == pipeline

    @given(pipelines())
    def test_render_is_deterministic(self, pipeline):
        assert render_query(pipeline) == render_query(pipeline)

    def test_known_rendering(self):
        p = q.Pipeline(
            (
                q.Filter(q.Compare(q.Field("status"), "==", "FINISHED")),
                q.Sort(("started_at",), (False,)),
                q.Head(5),
            )
        )
        assert render_query(p) == (
            "df[df['status'] == 'FINISHED']"
            ".sort_values('started_at', ascending=False).head(5)"
        )

    def test_row_count_rendering(self):
        p = q.Pipeline((q.Filter(q.Compare(q.Field("s"), "==", "R")), q.RowCount()))
        assert render_query(p) == "len(df[df['s'] == 'R'])"

    def test_groupby_rendering(self):
        p = q.Pipeline((q.GroupAgg(("activity_id",), "duration", "mean"),))
        assert render_query(p) == "df.groupby('activity_id')['duration'].mean()"
