"""Operator pushdown: planner shapes, exact combine rules, guarded fallback.

Three layers under test:

* :func:`repro.query.pushdown.plan_pushdown` — which pipelines plan to
  ``partial`` / ``topk`` / ``project`` and which stay classic;
* :mod:`repro.query.partial` — per-shard execution and the exact
  coordinator merge, driven directly on hand-built document splits so
  every dtype/ordering hazard lands on a chosen shard boundary;
* :func:`repro.query.engine.run_cached_pipeline` — end-to-end over a
  real sharded store, asserting byte parity with the classic path and
  that every refusal falls back instead of answering wrong.
"""

from __future__ import annotations

import math

import pytest

from repro.dataframe import DataFrame
from repro.dataframe import dtypes as dt
from repro.errors import QueryExecutionError
from repro.provenance.query_api import QueryAPI
from repro.query import ast as q
from repro.query import parse_query
from repro.query.engine import run_cached_pipeline
from repro.query.partial import (
    SEQ_FIELD,
    combine_partials,
    execute_plan_on_docs,
)
from repro.query.pushdown import plan_pushdown
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore


def plan(code, base_filter=None):
    return plan_pushdown(parse_query(code), base_filter)


class TestPlanner:
    def test_scalar_agg_plans_partial(self):
        p = plan("df['duration'].mean()")
        assert p.mode == "partial"
        assert p.agg == "mean"
        assert p.value_field == "duration"
        assert p.coordinator_steps[0].startswith("merge:")

    def test_filters_are_pushed_and_prefiltered(self):
        p = plan(
            "df[df['status'] == 'FAILED']['duration'].sum()",
            base_filter={"type": "task"},
        )
        assert p.mode == "partial"
        assert p.filter == {"type": "task", "status": "FAILED"}
        assert "duration" in p.local_columns and "status" in p.local_columns

    def test_rowcount_plans_partial(self):
        p = plan("len(df[df['status'] == 'FAILED'])")
        assert p.mode == "partial"
        assert isinstance(p.terminal, q.RowCount)

    def test_groupagg_with_suffix_plans_partial(self):
        p = plan(
            "df.groupby('status')['duration'].mean()"
            ".sort_values('duration').head(1)"
        )
        assert p.mode == "partial"
        assert p.group_fields == ("status",)
        assert len(p.suffix) == 2

    def test_sort_prefix_allowed_for_order_insensitive_aggs(self):
        assert plan("df.sort_values('x')['v'].mean()").mode == "partial"
        assert plan("len(df.sort_values('x'))").mode == "partial"

    def test_sort_prefix_blocks_order_sensitive_terminals(self):
        # Unique emission order depends on row order; shards cannot skip
        # the sort, so these degrade to projection
        assert plan("df.sort_values('x')['v'].unique()").mode == "project"

    @pytest.mark.parametrize("agg", ["median", "std", "var", "nunique"])
    def test_non_decomposable_aggs_degrade_to_project(self, agg):
        p = plan(f"df['duration'].{agg}()")
        assert p.mode == "project"
        assert p.fields == ("duration",)

    def test_sorted_head_plans_topk(self):
        p = plan("df.sort_values('duration', ascending=False).head(5)")
        assert p.mode == "topk"
        assert p.fetch == ("head", 5)
        assert p.local_columns == ("duration",)

    def test_skip_folds_into_the_local_fetch(self):
        p = plan("df.sort_values('duration').iloc[2:].head(3)")
        assert p.mode == "topk"
        assert p.fetch == ("head", 5)  # shards cannot know which 2 drop

    def test_sorted_tail_plans_topk(self):
        p = plan("df.sort_values('duration').tail(4)")
        assert p.mode == "topk"
        assert p.fetch == ("tail", 4)

    def test_skip_then_tail_needs_global_count_so_no_plan(self):
        # tail after skip depends on the global row count; without a
        # projection there is nothing to push either
        assert plan("df.sort_values('duration').iloc[2:].tail(3)") is None

    def test_unsorted_head_is_pagination_not_topk(self):
        assert plan("df.head(5)") is None
        p = plan("df[['task_id', 'status']].head(5)")
        assert p.mode == "project"

    def test_projection_limits_the_payload_fields(self):
        p = plan(
            "df[df['status'] == 'FAILED']"
            ".sort_values('duration').head(3)[['task_id']]"
        )
        assert p.mode == "topk"
        assert p.fields == ("duration", "status", "task_id")

    def test_statically_unresolvable_pipelines_are_never_planned(self):
        # projecting away the sort key raises on the classic path; a
        # shard plan would silently skip the broken step instead
        assert plan("df[['task_id']].sort_values('duration').head(2)") is None

    def test_identity_pipeline_has_nothing_to_push(self):
        assert plan("df") is None
        assert plan("df.sort_values('x')") is None  # full rows observable


def _stamp(docs, start=1):
    return [
        {SEQ_FIELD: start + i, **doc} for i, doc in enumerate(docs)
    ]


def _scatter(code, *shards):
    """Run a plan over explicit per-shard doc lists and combine."""
    p = plan(code)
    assert p is not None
    return p, combine_partials(
        p, [execute_plan_on_docs(docs, p) for docs in shards]
    )


class TestExactCombine:
    def test_sum_is_partition_independent(self):
        # naive per-shard sums round 1e16 + 1.0 before the -1e16 cancels;
        # Shewchuk partials reproduce fsum over the unpartitioned column
        values = [1e16, 1.0, -1e16, 0.1, 0.2]
        _, combined = _scatter(
            "df['v'].sum()",
            _stamp([{"v": values[0]}, {"v": values[1]}], start=1),
            _stamp([{"v": values[2]}, {"v": values[3]}], start=3),
            _stamp([{"v": values[4]}], start=5),
        )
        assert combined.ok
        assert combined.result == math.fsum(values)

    def test_mean_merges_sum_and_count_exactly(self):
        values = [1e16, 1.0, -1e16]
        _, combined = _scatter(
            "df['v'].mean()",
            _stamp([{"v": values[0]}, {"v": values[1]}]),
            _stamp([{"v": values[2]}], start=3),
        )
        assert combined.ok
        assert combined.result == math.fsum(values) / 3

    def test_min_max_skip_all_null_shards(self):
        _, combined = _scatter(
            "df['v'].max()",
            _stamp([{"v": None}, {"v": None}]),
            _stamp([{"v": 3.5}, {"v": 7.0}], start=3),
        )
        assert combined.ok
        assert combined.result == 7.0

    def test_first_and_last_follow_the_global_sequence(self):
        # shard order interleaves: seqs 1,4 on shard A, 2,3 on shard B
        shard_a = [{SEQ_FIELD: 1, "v": "a1"}, {SEQ_FIELD: 4, "v": "a4"}]
        shard_b = [{SEQ_FIELD: 3, "v": "b3"}, {SEQ_FIELD: 2, "v": "b2"}]
        for agg, want in (("first", "a1"), ("last", "a4")):
            p = plan_pushdown(q.Pipeline((q.Agg(column="v", agg=agg),)))
            combined = combine_partials(
                p,
                [
                    execute_plan_on_docs(shard_a, p),
                    execute_plan_on_docs(shard_b, p),
                ],
            )
            assert combined.ok
            assert combined.result == want

    def test_rowcount_sums_filtered_shard_counts(self):
        _, combined = _scatter(
            "len(df[df['v'] > 2])",
            _stamp([{"v": 1}, {"v": 3}]),
            _stamp([{"v": 5}, {"v": 2}], start=3),
        )
        assert combined.ok
        assert combined.result == 2

    def test_unique_preserves_first_appearance_order_across_shards(self):
        shard_a = [{SEQ_FIELD: 1, "v": "x"}, {SEQ_FIELD: 4, "v": "y"}]
        shard_b = [{SEQ_FIELD: 2, "v": "y"}, {SEQ_FIELD: 3, "v": "z"}]
        _, combined = _scatter("df['v'].unique()", shard_a, shard_b)
        assert combined.ok
        assert combined.result == ["x", "y", "z"]

    def test_group_order_and_representatives_are_global(self):
        # group "b" first appears on shard B (seq 2), before shard A's
        # seq-3 member; emission order must honour that
        shard_a = [
            {SEQ_FIELD: 1, "g": "a", "v": 1.0},
            {SEQ_FIELD: 3, "g": "b", "v": 2.0},
        ]
        shard_b = [
            {SEQ_FIELD: 2, "g": "b", "v": 4.0},
            {SEQ_FIELD: 4, "g": "a", "v": 5.0},
        ]
        _, combined = _scatter("df.groupby('g')['v'].sum()", shard_a, shard_b)
        assert combined.ok
        rows = combined.result.to_dicts()
        assert rows == [{"g": "a", "v": 6.0}, {"g": "b", "v": 6.0}]

    def test_group_keys_coerce_through_the_merged_dtype(self):
        # shard A sees ints, shard B floats: the global column is FLOAT,
        # so both shards' key 1 must merge into a single group keyed 1.0
        shard_a = _stamp([{"g": 1, "v": 1.0}])
        shard_b = _stamp([{"g": 1.0, "v": 2.0}, {"g": 2.5, "v": 3.0}], start=2)
        _, combined = _scatter("df.groupby('g')['v'].sum()", shard_a, shard_b)
        assert combined.ok
        frame = combined.result
        assert frame.column("g").dtype == dt.FLOAT
        assert frame.to_dicts() == [
            {"g": 1.0, "v": 3.0},
            {"g": 2.5, "v": 3.0},
        ]

    def test_topk_candidates_merge_on_the_global_sequence(self):
        shard_a = [
            {SEQ_FIELD: 1, "v": 9.0, "t": "a1"},
            {SEQ_FIELD: 4, "v": 7.0, "t": "a4"},
        ]
        shard_b = [
            {SEQ_FIELD: 2, "v": 9.0, "t": "b2"},
            {SEQ_FIELD: 3, "v": 8.0, "t": "b3"},
        ]
        _, combined = _scatter(
            "df.sort_values('v', ascending=False).head(3)", shard_a, shard_b
        )
        assert combined.ok
        # stable sort: the seq-1 and seq-2 ties stay in ingest order
        assert [r["t"] for r in combined.result.to_dicts()] == [
            "a1", "b2", "b3",
        ]


class TestGuardedFallback:
    def test_empty_scatter_falls_back(self):
        _, combined = _scatter("df['v'].sum()", [], [])
        assert not combined.ok
        assert combined.reason == "no matching rows"

    def test_shard_error_falls_back(self):
        p = plan("df.sort_values('v').head(2)")
        bad = execute_plan_on_docs(None, p)  # not iterable -> error partial
        assert bad.error
        combined = combine_partials(
            p, [execute_plan_on_docs(_stamp([{"v": 1.0}]), p), bad]
        )
        assert not combined.ok
        assert "shard error" in combined.reason

    def test_mixed_type_sort_column_refuses(self):
        _, combined = _scatter(
            "df.sort_values('v').head(2)",
            _stamp([{"v": "fast"}, {"v": "slow"}]),
            _stamp([{"v": 3}], start=3),
        )
        assert not combined.ok
        assert "mixed-type sort column 'v'" in combined.reason

    def test_big_int_under_float_global_refuses_filter_replay(self):
        # 2**53 + 1 is exact in the int shard but rounds in the float64
        # global column: local and global predicate evaluation disagree
        _, combined = _scatter(
            "len(df[df['v'] > 0])",
            _stamp([{"v": 2**53 + 1}]),
            _stamp([{"v": 0.5}], start=2),
        )
        assert not combined.ok
        assert "filter column 'v'" in combined.reason

    def test_object_local_under_object_global_is_fine_but_float_drifts(self):
        # shard A infers FLOAT and converts the raw int 1 to 1.0; under
        # an OBJECT global the classic path keeps 1, so unique must refuse
        _, combined = _scatter(
            "df['v'].unique()",
            _stamp([{"v": 1}, {"v": 2.5}]),
            _stamp([{"v": "x"}], start=3),
        )
        assert not combined.ok
        assert "value drift" in combined.reason

    def test_object_sum_refuses(self):
        # both shards sum fine locally (INT and BOOL), but the merged
        # column is OBJECT and the classic path raises on it
        _, combined = _scatter(
            "df['v'].sum()",
            _stamp([{"v": 1}]),
            _stamp([{"v": True}], start=2),
        )
        assert not combined.ok
        assert "cannot sum object column" in combined.reason

    def test_local_aggregation_error_becomes_a_shard_error(self):
        # a string shard fails locally exactly like the classic path
        # would; the fallback then reproduces the identical error
        _, combined = _scatter(
            "df['v'].sum()",
            _stamp([{"v": 1}]),
            _stamp([{"v": "oops"}], start=2),
        )
        assert not combined.ok
        assert "cannot sum non-numeric column" in combined.reason

    def test_absent_aggregation_column_refuses(self):
        # the classic path raises column-not-found; answering 0/None
        # shard-side would hide that
        _, combined = _scatter(
            "df['missing'].sum()",
            _stamp([{"v": 1.0}]),
            _stamp([{"v": 2.0}], start=2),
        )
        assert not combined.ok
        assert "'missing' absent" in combined.reason

    def test_column_used_only_by_a_skipped_sort_must_exist(self):
        _, combined = _scatter(
            "df.sort_values('missing')['v'].mean()",
            _stamp([{"v": 1.0}]),
        )
        assert not combined.ok
        assert "'missing' absent" in combined.reason

    def test_non_finite_values_refuse_exact_summation(self):
        _, combined = _scatter(
            "df['v'].sum()",
            _stamp([{"v": float('inf')}]),
            _stamp([{"v": 1.0}], start=2),
        )
        assert not combined.ok
        assert "shard error" in combined.reason


def _mirror(docs, num_shards=4):
    single = ProvenanceDatabase()
    sharded = ShardedProvenanceStore(num_shards)
    for doc in docs:
        single.upsert(doc)
        sharded.upsert(doc)
    return single, sharded


def _task_docs(n=40):
    docs = []
    for i in range(n):
        doc = {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % 5}",
            "status": "FAILED" if i % 7 == 3 else "FINISHED",
            "duration": float(i % 11) + 0.25,
            "used": {"x": i},
        }
        docs.append(doc)
    return docs


def _normalise(result):
    if isinstance(result, DataFrame):
        return (
            "frame",
            tuple(result.columns),
            tuple(result.column(c).dtype for c in result.columns),
            tuple(
                tuple((type(v).__name__, repr(v)) for v in row.values())
                for row in result.to_dicts()
            ),
        )
    if isinstance(result, list):
        return ("list", tuple((type(v).__name__, repr(v)) for v in result))
    return ("scalar", type(result).__name__, repr(result))


BASE = {"type": "task"}


def _run(store, code, **kw):
    api = QueryAPI(store)
    return run_cached_pipeline(
        api, parse_query(code), base_filter=BASE, **kw
    )


class TestEngineIntegration:
    @pytest.mark.parametrize(
        "code,mode",
        [
            ("df['duration'].mean()", "partial"),
            ("df[df['status'] == 'FAILED']['duration'].sum()", "partial"),
            ("len(df)", "partial"),
            ("df['status'].unique()", "partial"),
            ("df.groupby('workflow_id')['duration'].mean()", "partial"),
            (
                "df.groupby('status')['duration'].count()"
                ".sort_values('duration', ascending=False).head(1)",
                "partial",
            ),
            (
                "df.sort_values('duration', ascending=False)"
                ".head(5)[['task_id', 'duration']]",
                "topk",
            ),
            ("df['duration'].median()", "project"),
            ("df[['task_id', 'status']].head(7)", "project"),
        ],
    )
    def test_sharded_pushdown_matches_single_store(self, code, mode):
        single, sharded = _mirror(_task_docs())
        pushed = _run(sharded, code)
        classic = _run(single, code)
        assert pushed.pushdown is not None
        assert pushed.pushdown["mode"] == mode
        assert "fallback" not in pushed.pushdown
        assert pushed.pushdown["shards"] >= 1
        assert _normalise(pushed.result) == _normalise(classic.result)

    def test_single_store_pushes_down_as_one_shard(self):
        # the in-memory store exposes execute_partial too: the same fold
        # runs in-place, skipping the document-copying find() entirely
        single, _ = _mirror(_task_docs())
        run = _run(single, "df['duration'].mean()")
        assert run.pushdown is not None
        assert run.pushdown["shards"] == 1
        assert "fallback" not in run.pushdown

    def test_backend_without_execute_partial_stays_classic(self):
        class _NoPushdown:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "execute_partial":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        single, _ = _mirror(_task_docs())
        run = _run(_NoPushdown(single), "df['duration'].mean()")
        assert run.pushdown is None

    def test_operator_pushdown_flag_disables_the_scatter(self):
        _, sharded = _mirror(_task_docs())
        run = _run(sharded, "df['duration'].mean()", operator_pushdown=False)
        assert run.pushdown is None

    def test_pushed_results_share_the_classic_cache_entry(self):
        _, sharded = _mirror(_task_docs())
        api = QueryAPI(sharded)
        pipeline = parse_query("df.groupby('status')['duration'].mean()")
        first = run_cached_pipeline(api, pipeline, base_filter=BASE)
        assert first.cache_state == "miss"
        # same IR without operator pushdown must hit the shared entry
        second = run_cached_pipeline(
            api, pipeline, base_filter=BASE, operator_pushdown=False
        )
        assert second.cache_state == "hit"
        assert _normalise(second.result) == _normalise(first.result)

    def test_fallback_reason_is_reported_and_result_is_classic(self):
        # engineer a shard split where one shard is all-int (with a
        # >=2**53 value) while the global column is float: the filter
        # guard must refuse and the classic path must answer
        def shard_of(wf):
            probe = ShardedProvenanceStore(2)
            probe.upsert({"type": "task", "task_id": "p", "workflow_id": wf})
            return next(
                i for i, s in enumerate(probe.shards) if s.count({})
            )

        wf_big = "wf-big"
        wf_other = next(
            f"wf-{i}" for i in range(32) if shard_of(f"wf-{i}") != shard_of(wf_big)
        )
        single = ProvenanceDatabase()
        sharded = ShardedProvenanceStore(2)
        for doc in (
            {"type": "task", "task_id": "big", "workflow_id": wf_big,
             "duration": 2**53 + 1},
            {"type": "task", "task_id": "small", "workflow_id": wf_other,
             "duration": 0.5},
        ):
            single.upsert(doc)
            sharded.upsert(doc)
        # the >=2**53 literal is never prefiltered (it would round in a
        # float column), so both docs reach the scatter and the filter
        # replays shard-side against diverging local dtypes
        code = f"len(df[df['duration'] >= {2**53}])"
        pushed = _run(sharded, code)
        classic = _run(single, code)
        assert pushed.pushdown is not None
        assert "fallback" in pushed.pushdown
        assert "filter column 'duration'" in pushed.pushdown["fallback"]
        assert _normalise(pushed.result) == _normalise(classic.result)

    def test_absent_column_error_parity(self):
        single, sharded = _mirror(_task_docs())
        code = "df['no_such_column'].sum()"
        with pytest.raises(QueryExecutionError) as push_err:
            _run(sharded, code)
        with pytest.raises(QueryExecutionError) as classic_err:
            _run(single, code)
        assert str(push_err.value) == str(classic_err.value)


class TestReducedFrameRegression:
    """Prefilter pruning can drop every document carrying a column the
    pipeline later uses; the engine retries over the full frame, and
    operator pushdown must refuse and reach the same retry."""

    @staticmethod
    def _docs():
        docs = _task_docs(14)
        # "extra" exists only on FINISHED documents
        for doc in docs:
            if doc["status"] == "FINISHED":
                doc["extra"] = doc["duration"] * 2
        return docs

    @pytest.mark.parametrize(
        "code",
        [
            # partial plan: unique column absent among matching docs
            "df[df['status'] == 'FAILED']['extra'].unique()",
            # project plan: merged frame lacks the projected column
            "df[df['status'] == 'FAILED'][['extra']]",
            # topk plan: sort column absent among matching docs
            "df[df['status'] == 'FAILED']"
            ".sort_values('extra').head(2)[['task_id']]",
        ],
    )
    def test_pushdown_falls_back_into_the_full_frame_retry(self, code):
        single, sharded = _mirror(self._docs())
        pushed = _run(sharded, code)
        classic = _run(single, code)
        assert pushed.pushdown is not None and "fallback" in pushed.pushdown
        assert _normalise(pushed.result) == _normalise(classic.result)

    def test_classic_retry_still_works_without_operator_pushdown(self):
        single, sharded = _mirror(self._docs())
        code = "df[df['status'] == 'FAILED']['extra'].unique()"
        a = _run(sharded, code, operator_pushdown=False)
        b = _run(single, code, operator_pushdown=False)
        assert _normalise(a.result) == _normalise(b.result) == ("list", ())
