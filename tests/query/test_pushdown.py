"""Predicate pushdown: pipeline prefix filters -> Mongo prefilters.

The invariant mirrors the planner's: pushing a prefilter down and then
running the *unchanged* pipeline over the reduced frame must produce the
same result as running it over the full frame, because pushed clauses
are a superset predicate of the pipeline's own leading filters.
"""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.provenance.database import ProvenanceDatabase
from repro.query import execute_query, parse_query
from repro.query import ast as q
from repro.query.pushdown import merge_filters, pipeline_prefilter


class TestPrefilterTranslation:
    def test_equality(self):
        # equality pushes in the bare form: identical match semantics
        # to {"$eq": v}, cheapest per-candidate verification
        p = parse_query("df[df['status'] == 'FINISHED']")
        assert pipeline_prefilter(p) == {"status": "FINISHED"}

    def test_conjunction_and_ranges(self):
        p = parse_query(
            "df[(df['status'] == 'FINISHED') & (df['duration'] > 2.0)]"
        )
        assert pipeline_prefilter(p) == {
            "$and": [
                {"status": "FINISHED"},
                {"duration": {"$gt": 2.0}},
            ]
        }

    def test_isin_and_between(self):
        p = parse_query(
            "df[df['status'].isin(['FAILED', 'RUNNING'])]"
            "[df['duration'].between(1, 5)]"
        )
        assert pipeline_prefilter(p) == {
            "$and": [
                {"status": {"$in": ["FAILED", "RUNNING"]}},
                {"duration": {"$gte": 1, "$lte": 5}},
            ]
        }

    def test_notna(self):
        p = parse_query("df[df['ended_at'].notna()]")
        assert pipeline_prefilter(p) == {"ended_at": {"$ne": None}}

    def test_unpushable_predicates_skipped(self):
        # OR trees and str.contains stay behind; the executor re-applies them
        p = parse_query(
            "df[(df['status'] == 'FAILED') | (df['status'] == 'RUNNING')]"
        )
        assert pipeline_prefilter(p) == {}
        p = parse_query("df[df['generated.bond_id'].str.contains('C-H')]")
        assert pipeline_prefilter(p) == {}

    def test_none_literal_not_pushed(self):
        p = parse_query("df[df['ended_at'] == None]")
        assert pipeline_prefilter(p) == {}

    def test_neq_anywhere_disables_pushdown(self):
        # pruning can flip a column's inferred dtype, and != treats
        # missing values differently per dtype — so never push with !=
        p = parse_query("df[df['status'] == 'FINISHED'][df['duration'] != 5]")
        assert pipeline_prefilter(p) == {}
        p = parse_query("df[(df['status'] == 'FINISHED') & ~(df['hostname'] != 'h1')]")
        assert pipeline_prefilter(p) == {}

    def test_large_int_literals_not_pushed(self):
        # 2**53 + 1 is exact in the store but rounds onto 2**53 in a
        # float64 column, so exact-int pruning could drop frame matches
        p = parse_query(f"df[df['t_ns'] == {2**53}]")
        assert pipeline_prefilter(p) == {}
        p = parse_query("df[df['duration'] == 5]")
        assert pipeline_prefilter(p) == {"duration": 5}

    def test_literal_dotted_key_docs_match_pushed_prefilter(self):
        # flattened and nested documents must satisfy the same prefilter
        db = ProvenanceDatabase()
        db.insert({"task_id": "nested", "generated": {"bond_id": "C-H_1"}})
        db.insert({"task_id": "flat", "generated.bond_id": "C-H_1"})
        p = parse_query("df[df['generated.bond_id'] == 'C-H_1']")
        got = db.find(pipeline_prefilter(p))
        assert {d["task_id"] for d in got} == {"nested", "flat"}

    def test_pushdown_stops_at_membership_changing_step(self):
        p = parse_query("df.head(2)[df['status'] == 'FINISHED']")
        assert pipeline_prefilter(p) == {}

    def test_filters_after_sort_still_pushed(self):
        p = parse_query(
            "df.sort_values('duration')[df['status'] == 'FINISHED'].head(1)"
        )
        assert pipeline_prefilter(p) == {"status": "FINISHED"}

    def test_operator_shaped_literal_keeps_eq_wrapper(self):
        # a mapping literal containing $-keys must not be mistaken for
        # an operator document when pushed
        pipeline = q.Pipeline(
            (q.Filter(q.Compare(q.Field("meta"), "==", {"$gt": 5})),)
        )
        assert pipeline_prefilter(pipeline) == {"meta": {"$eq": {"$gt": 5}}}

    def test_merge_filters(self):
        assert merge_filters({"type": "task"}, {}) == {"type": "task"}
        assert merge_filters(None, {"a": 1}) == {"a": 1}
        # disjoint keys merge flat: a filter document is already an AND
        assert merge_filters({"type": "task"}, {"a": 1}) == {
            "type": "task",
            "a": 1,
        }
        # colliding keys keep both constraints via $and
        assert merge_filters({"a": 1}, {"a": {"$gt": 0}}) == {
            "$and": [{"a": 1}, {"a": {"$gt": 0}}]
        }
        assert merge_filters(
            {"$and": [{"a": 1}]}, {"$and": [{"b": 2}]}
        ) == {"$and": [{"$and": [{"a": 1}]}, {"$and": [{"b": 2}]}]}


@pytest.fixture
def store(task_records) -> ProvenanceDatabase:
    db = ProvenanceDatabase()
    for r in task_records:
        db.insert(dict(r, type="task"))
    return db


PIPELINES = [
    "df[df['status'] == 'FINISHED']['duration'].mean()",
    "df[(df['status'] == 'FINISHED') & (df['duration'] > 0.4)]",
    "df[df['activity_id'].isin(['run_dft'])].sort_values('duration', ascending=False).head(2)",
    "len(df[df['workflow_id'] == 'w1'])",
    "df[df['duration'].between(0.4, 2.5)]['task_id'].unique()",
    "df.groupby('hostname')['duration'].mean()",
]


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("code", PIPELINES)
    def test_reduced_frame_matches_full_frame(self, store, code):
        pipeline = parse_query(code)
        full = DataFrame.from_records(store.find({"type": "task"}), flatten=True)
        prefilter = pipeline_prefilter(pipeline)
        reduced_docs = store.find(merge_filters({"type": "task"}, prefilter))
        reduced = DataFrame.from_records(reduced_docs, flatten=True)

        got = execute_query(pipeline, reduced)
        want = execute_query(pipeline, full)
        if isinstance(got, DataFrame):
            assert got.to_dicts() == want.to_dicts()
        else:
            assert got == want
