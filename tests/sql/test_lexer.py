"""Lexer: token kinds, operator normalisation, positions, errors."""

from __future__ import annotations

import pytest

from repro.sql import SqlSyntaxError, tokenize_sql


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize_sql(source)]


class TestTokens:
    def test_kind_stream(self):
        toks = tokenize_sql("SELECT a, \"b.c\" FROM tasks WHERE x <> 'v'")
        assert [t.kind for t in toks] == [
            "KEYWORD", "NAME", "PUNCT", "QNAME", "KEYWORD", "NAME",
            "KEYWORD", "NAME", "OP", "STRING", "EOF",
        ]

    def test_keywords_are_case_insensitive(self):
        lower = tokenize_sql("select a from tasks")
        assert [t.kind for t in lower][:2] == ["KEYWORD", "NAME"]
        assert lower[0].value == "SELECT"

    def test_sql_operators_normalise_to_ir_spelling(self):
        toks = {t.text: t for t in tokenize_sql("a = 1 <> 2 != 3 <= >=")}
        assert "==" in toks  # SQL '=' is the IR's '=='
        assert toks["!="].value == "!="
        ops = [t.value for t in tokenize_sql("a = b <> c") if t.kind == "OP"]
        assert ops == ["==", "!="]

    def test_quoted_name_value_strips_quotes(self):
        tok = tokenize_sql('SELECT "telemetry_at_end.cpu.percent"')[1]
        assert tok.kind == "QNAME"
        assert tok.value == "telemetry_at_end.cpu.percent"

    def test_string_escape_doubles_quote(self):
        tok = tokenize_sql("SELECT 'it''s'")[1]
        assert tok.value == "it's"

    def test_number_values(self):
        values = [t.value for t in tokenize_sql("SELECT 1, 2.5") if t.kind == "NUMBER"]
        assert values == [1, 2.5]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_positions_are_one_based(self):
        toks = tokenize_sql("SELECT a\nFROM tasks")
        assert (toks[0].line, toks[0].column) == (1, 1)
        from_tok = next(t for t in toks if t.value == "FROM")
        assert (from_tok.line, from_tok.column) == (2, 1)


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize_sql("SELECT 'oops FROM tasks")
        assert "unterminated string" in str(exc.value)
        assert exc.value.column == 8

    def test_unexpected_character_is_positioned(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize_sql("SELECT a FROM tasks WHERE a @ 1")
        assert "'@'" in str(exc.value)
        assert exc.value.line == 1
        assert exc.value.column == 29

    def test_snippet_points_a_caret_at_the_column(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize_sql("SELECT a FROM tasks WHERE a @ 1")
        snippet = exc.value.snippet()
        text, caret = snippet.splitlines()
        assert text == "SELECT a FROM tasks WHERE a @ 1"
        assert caret.index("^") == exc.value.column - 1

    def test_diagnostic_payload_is_json_plain(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize_sql("SELECT 'oops")
        diag = exc.value.diagnostic()
        assert set(diag) == {"line", "column", "message", "snippet"}
        assert diag["line"] == 1
