"""Semantic checker: name resolution, typing, aggregate placement."""

from __future__ import annotations

import pytest

from repro.query import render_query
from repro.sql import SqlResolutionError, SqlUnsupportedError, compile_sql


class TestResolution:
    def test_alias_prefix_strips(self):
        p = compile_sql("SELECT t.task_id FROM tasks t WHERE t.duration > 2")
        assert render_query(p) == "df[df['duration'] > 2][['task_id']]"

    def test_table_prefix_strips(self):
        p = compile_sql("SELECT tasks.status FROM tasks")
        assert render_query(p) == "df[['status']]"

    def test_unknown_table_is_rejected(self):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql("SELECT a FROM runs")
        assert "only 'tasks' is queryable" in str(exc.value)

    def test_unknown_columns_pass_open_schema(self):
        # provenance documents are open maps; unseen fields are legal
        p = compile_sql("SELECT custom_field FROM tasks WHERE other_field = 1")
        assert render_query(p) == "df[df['other_field'] == 1][['custom_field']]"

    def test_aggregate_in_where_points_to_having(self):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql("SELECT * FROM tasks WHERE COUNT(a) > 1")
        assert "use HAVING" in str(exc.value)


class TestTyping:
    @pytest.mark.parametrize(
        "sql,fragment",
        [
            (
                "SELECT a FROM tasks WHERE status = 5",
                "'status' is a string field",
            ),
            (
                "SELECT a FROM tasks WHERE started_at = 'five'",
                "'started_at' is a numeric field",
            ),
            (
                "SELECT a FROM tasks WHERE duration BETWEEN 'x' AND 2",
                "BETWEEN bound",
            ),
            (
                "SELECT a FROM tasks WHERE status IN ('A', 5)",
                "IN list",
            ),
        ],
    )
    def test_impossible_comparisons_are_named(self, sql, fragment):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql(sql)
        assert fragment in str(exc.value)
        assert "can never match" in str(exc.value)

    def test_well_typed_comparisons_pass(self):
        compile_sql("SELECT a FROM tasks WHERE status = 'FAILED'")
        compile_sql("SELECT a FROM tasks WHERE duration > 2.5")


class TestAggregateRules:
    def test_mixing_aggregate_and_plain_needs_group_by(self):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql("SELECT status, COUNT(*) FROM tasks")
        assert "GROUP BY" in str(exc.value)

    def test_having_requires_group_by(self):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql("SELECT status FROM tasks HAVING COUNT(*) > 1")
        assert "HAVING requires GROUP BY" in str(exc.value)

    def test_grouped_order_by_must_use_output_columns(self):
        with pytest.raises(SqlResolutionError) as exc:
            compile_sql(
                "SELECT status, COUNT(*) FROM tasks GROUP BY status "
                "ORDER BY hostname"
            )
        assert "grouping column or the aggregate" in str(exc.value)

    def test_single_aggregate_restriction_lists_offenders(self):
        with pytest.raises(SqlUnsupportedError) as exc:
            compile_sql("SELECT COUNT(a), SUM(b) FROM tasks")
        assert "COUNT(a)" in str(exc.value)
        assert "SUM(b)" in str(exc.value)

    def test_unknown_function_names_the_alternatives(self):
        with pytest.raises(SqlUnsupportedError) as exc:
            compile_sql("SELECT MEDIAN(duration) FROM tasks")
        assert "AVG, COUNT, MAX, MIN, SUM" in str(exc.value)
