"""Parser: AST shapes, precedence, and positioned rejections."""

from __future__ import annotations

import pytest

from repro.sql import SqlSyntaxError, SqlUnsupportedError, parse_sql
from repro.sql.ast import (
    AndExpr,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    LikePredicate,
    NotExpr,
    NullTest,
    OrExpr,
    Star,
)


class TestSelectShape:
    def test_star_is_empty_items(self):
        st = parse_sql("SELECT * FROM tasks")
        assert st.items == ()
        assert st.table == "tasks"

    def test_clauses_land_in_fields(self):
        st = parse_sql(
            "SELECT DISTINCT a, b FROM tasks t "
            "ORDER BY a DESC, b LIMIT 5 OFFSET 2"
        )
        assert st.distinct is True
        assert st.alias == "t"
        assert [i.expr.path for i in st.items] == ["a", "b"]
        assert [(o.expr.path, o.ascending) for o in st.order_by] == [
            ("a", False),
            ("b", True),
        ]
        assert st.limit == 5
        assert st.offset == 2

    def test_aliased_item(self):
        st = parse_sql("SELECT task_id AS id FROM tasks")
        assert st.items[0].alias == "id"

    def test_count_star(self):
        st = parse_sql("SELECT COUNT(*) FROM tasks")
        call = st.items[0].expr
        assert isinstance(call, FuncCall)
        assert call.func == "COUNT"
        assert isinstance(call.arg, Star)

    def test_group_by_and_having(self):
        st = parse_sql(
            "SELECT status, COUNT(*) FROM tasks GROUP BY status "
            "HAVING COUNT(*) > 2"
        )
        assert [c.path for c in st.group_by] == ["status"]
        assert isinstance(st.having, Comparison)
        assert isinstance(st.having.left, FuncCall)


class TestPredicates:
    def where(self, clause: str):
        return parse_sql(f"SELECT * FROM tasks WHERE {clause}").where

    def test_and_binds_tighter_than_or(self):
        pred = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(pred, OrExpr)
        assert isinstance(pred.right, AndExpr)

    def test_parens_override_precedence(self):
        pred = self.where("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(pred, AndExpr)
        assert isinstance(pred.left, OrExpr)

    def test_not_wraps_a_predicate(self):
        pred = self.where("NOT status = 'FAILED'")
        assert isinstance(pred, NotExpr)
        assert isinstance(pred.operand, Comparison)

    def test_first_class_negated_forms(self):
        assert self.where("a NOT IN (1, 2)").negated is True
        assert self.where("a NOT LIKE 'x%'").negated is True
        assert self.where("a NOT BETWEEN 1 AND 2").negated is True
        null_test = self.where("a IS NOT NULL")
        assert isinstance(null_test, NullTest)
        assert null_test.negated is True

    def test_membership_and_range_forms(self):
        assert isinstance(self.where("a IN (1, 2, 3)"), InList)
        assert isinstance(self.where("a LIKE '%x%'"), LikePredicate)
        assert isinstance(self.where("a BETWEEN 1 AND 2"), BetweenPredicate)
        assert isinstance(self.where("a IS NULL"), NullTest)

    def test_signed_numbers_and_booleans(self):
        pred = self.where("a > -2.5")
        assert pred.value == -2.5
        assert self.where("a = TRUE").value is True
        assert self.where("a = NULL").value is None

    def test_dotted_column_via_quotes(self):
        pred = self.where("\"used.x\" >= 18")
        assert isinstance(pred.left, ColumnRef)
        assert pred.left.path == "used.x"


class TestRejections:
    @pytest.mark.parametrize(
        "sql,fragment",
        [
            ("INSERT INTO tasks VALUES (1)", "read-only"),
            ("UPDATE tasks SET a = 1", "read-only"),
            ("DELETE FROM tasks", "read-only"),
            ("SELECT * FROM tasks JOIN other ON 1", "JOIN"),
            ("SELECT * FROM tasks UNION SELECT * FROM tasks", "UNION"),
        ],
    )
    def test_recognised_but_unsupported(self, sql, fragment):
        with pytest.raises(SqlUnsupportedError) as exc:
            parse_sql(sql)
        assert fragment in str(exc.value)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM tasks WHERE",
            "SELECT a FROM tasks GROUP BY",
            "SELECT a FROM tasks ORDER BY LIMIT 1",
            "FROM tasks SELECT a",
            "SELECT a b c FROM tasks",
        ],
    )
    def test_malformed_is_syntax_error(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_sql(sql)

    def test_error_carries_position_and_snippet(self):
        with pytest.raises(SqlSyntaxError) as exc:
            parse_sql("SELECT * FROM tasks WHERE")
        assert exc.value.line == 1
        assert exc.value.column == 26
        assert exc.value.snippet().endswith("^")

    def test_aggregate_membership_form_is_explained(self):
        with pytest.raises(SqlSyntaxError) as exc:
            parse_sql("SELECT * FROM tasks WHERE COUNT(a) IN (1)")
        assert "not an aggregate" in str(exc.value)
