"""render_sql is a faithful inverse of the compiler.

``compile_sql(render_sql(p)) == p`` for every renderable pipeline, and
the renderer refuses (with :class:`SqlRenderError`) exactly the IR
shapes that have no SQL spelling — it never emits text that would
compile to a *different* pipeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import ast as q
from repro.query import parse_query
from repro.sql import SqlRenderError, compile_sql, render_sql


class TestExplicitRoundTrips:
    @pytest.mark.parametrize(
        "pandas",
        [
            "df",
            "df[['task_id', 'status']]",
            "df[df['status'] == 'FAILED'][['task_id']]",
            "df[(df['duration'] > 2) & (df['hostname'] == 'node-1')]",
            "df[(df['a'] > 1) | ~(df['b.c'] < 2)]"
            ".sort_values('a', ascending=False).iloc[2:].head(5)",
            "df[df['status'].isin(['FAILED', 'ABORTED'])]",
            "df[df['duration'].between(1, 2)]",
            "df[df['stdout'].notna()]",
            "df[df['stderr'].isna()]",
            "df[df['hostname'].str.startswith('node')]",
            "df[df['hostname'].str.endswith('-1')]",
            "df[df['stderr'].str.contains('error')]",
            "len(df)",
            "len(df[df['status'] == 'FAILED'])",
            "df['duration'].mean()",
            "df['duration'].max()",
            "df['status'].unique()",
            "df[['status', 'hostname']].drop_duplicates()",
            "df[['status', 'hostname']].drop_duplicates().iloc[2:].head(4)",
            "df.groupby('hostname')['duration'].mean()",
            "df.groupby('hostname')['duration'].sum()[df['duration'] > 10]"
            ".sort_values('duration', ascending=False).head(2)",
            "df.sort_values(['duration', 'task_id'], ascending=[False, True])"
            ".iloc[2:].head(4)",
        ],
    )
    def test_pipeline_survives_sql(self, pandas):
        pipeline = parse_query(pandas)
        assert compile_sql(render_sql(pipeline)) == pipeline

    def test_dotted_columns_render_quoted(self):
        pipeline = parse_query("df[df['used.x'] >= 18][['task_id', 'used.x']]")
        sql = render_sql(pipeline)
        assert '"used.x"' in sql
        assert compile_sql(sql) == pipeline


class TestUnrenderable:
    @pytest.mark.parametrize(
        "pipeline,fragment",
        [
            (parse_query("df.tail(3)"), "out of SQL clause order"),
            (parse_query("df['a'].median()"), "no SQL function"),
            (
                parse_query("df[df['a'].str.contains('x', case=False)]"),
                "case-insensitive",
            ),
            (q.Pipeline((q.Skip(0),)), "OFFSET 0"),
            (
                q.Pipeline((q.Filter(q.StrContains(q.Field("a"), "")),)),
                "LIKE",
            ),
            (
                q.Pipeline((q.Filter(q.IsIn(q.Field("a"), ())),)),
                "IN",
            ),
        ],
    )
    def test_refused_with_reason(self, pipeline, fragment):
        with pytest.raises(SqlRenderError) as exc:
            render_sql(pipeline)
        assert fragment in str(exc.value)


# -- hypothesis: the renderable subset round-trips exactly --------------------
#
# Column names stay off the typed provenance schema (no status/duration/...)
# so value typing never rejects a generated comparison; dotted names force
# the quoted spelling.

_columns = st.sampled_from(["a", "b", "zz", "b.c", "used.x"])
_fields = _columns.map(q.Field)
_numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
)
_strings = st.text(
    alphabet="abcXYZ0123456789_- .", min_size=0, max_size=8
)
_values = st.one_of(_numbers, _strings, st.booleans())
_patterns = st.text(alphabet="abcXYZ-", min_size=1, max_size=6)


def _comparisons():
    return st.builds(
        q.Compare,
        _fields,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        _values,
    )


def _leaves():
    return st.one_of(
        _comparisons(),
        st.builds(q.StrContains, _fields, _patterns),
        st.builds(q.StrStartsWith, _fields, _patterns),
        st.builds(q.StrEndsWith, _fields, _patterns),
        st.builds(
            q.IsIn, _fields, st.lists(_values, min_size=1, max_size=4).map(tuple)
        ),
        st.builds(q.Between, _fields, _numbers, _numbers),
        st.builds(q.IsNull, _fields),
        st.builds(q.NotNull, _fields),
    )


_predicates = st.recursive(
    _leaves(),
    lambda children: st.one_of(
        st.builds(q.And, children, children),
        st.builds(q.Or, children, children),
        st.builds(q.Not, children),
    ),
    max_leaves=6,
)


@st.composite
def _frame_pipelines(draw):
    steps: list[q.Step] = []
    if draw(st.booleans()):
        steps.append(q.Filter(draw(_predicates)))
    if draw(st.booleans()):
        n_keys = draw(st.integers(min_value=1, max_value=3))
        keys = draw(
            st.lists(_columns, min_size=n_keys, max_size=n_keys, unique=True)
        )
        ascending = draw(
            st.lists(st.booleans(), min_size=n_keys, max_size=n_keys)
        )
        steps.append(q.Sort(tuple(keys), tuple(ascending)))
    if draw(st.booleans()):
        steps.append(q.Skip(draw(st.integers(min_value=1, max_value=50))))
    if draw(st.booleans()):
        steps.append(q.Head(draw(st.integers(min_value=1, max_value=50))))
    if draw(st.booleans()):
        columns = draw(st.lists(_columns, min_size=1, max_size=3, unique=True))
        steps.append(q.Project(tuple(columns)))
    return q.Pipeline(tuple(steps))


@st.composite
def _grouped_pipelines(draw):
    steps: list[q.Step] = []
    if draw(st.booleans()):
        steps.append(q.Filter(draw(_leaves())))
    keys = draw(st.lists(_columns, min_size=1, max_size=2, unique=True))
    agg_column = draw(_columns.filter(lambda c: c not in keys))
    agg = draw(st.sampled_from(["count", "sum", "mean", "min", "max"]))
    steps.append(q.GroupAgg(tuple(keys), agg_column, agg))
    if draw(st.booleans()):
        steps.append(
            q.Filter(
                q.Compare(
                    q.Field(agg_column),
                    draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="])),
                    draw(_numbers),
                )
            )
        )
    if draw(st.booleans()):
        steps.append(q.Sort((keys[0],), (draw(st.booleans()),)))
    if draw(st.booleans()):
        steps.append(q.Head(draw(st.integers(min_value=1, max_value=20))))
    return q.Pipeline(tuple(steps))


@given(_frame_pipelines())
@settings(max_examples=120, deadline=None)
def test_frame_pipelines_roundtrip(pipeline):
    try:
        sql = render_sql(pipeline)
    except SqlRenderError:
        # the renderer may refuse shapes with no exact SQL spelling
        # (e.g. a bare single-column distinct); refusal is always legal
        return
    assert compile_sql(sql) == pipeline


@given(_grouped_pipelines())
@settings(max_examples=80, deadline=None)
def test_grouped_pipelines_roundtrip(pipeline):
    try:
        sql = render_sql(pipeline)
    except SqlRenderError:
        return
    assert compile_sql(sql) == pipeline


@given(_predicates)
@settings(max_examples=120, deadline=None)
def test_predicates_roundtrip_inside_where(predicate):
    pipeline = q.Pipeline((q.Filter(predicate),))
    try:
        sql = render_sql(pipeline)
    except SqlRenderError:
        return
    assert compile_sql(sql) == pipeline
