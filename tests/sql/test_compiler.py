"""Compiler: SELECT subset lowers to the one shared query IR.

Each case asserts the compiled pipeline *is* the IR the pandas-surface
parser produces for the equivalent chain — the two dialects meet at the
same values, so execution, pushdown, and caching are shared for free.
"""

from __future__ import annotations

import pytest

from repro.query import ast as q
from repro.query import parse_query
from repro.sql import SqlUnsupportedError, compile_sql


@pytest.mark.parametrize(
    "sql,pandas",
    [
        # projection / filters
        ("SELECT * FROM tasks", "df"),
        ("SELECT task_id, status FROM tasks", "df[['task_id', 'status']]"),
        (
            "SELECT * FROM tasks WHERE status = 'FAILED'",
            "df[df['status'] == 'FAILED']",
        ),
        (
            "SELECT * FROM tasks WHERE duration > 2 AND hostname = 'node-1'",
            "df[(df['duration'] > 2) & (df['hostname'] == 'node-1')]",
        ),
        (
            "SELECT * FROM tasks WHERE status = 'FAILED' OR NOT duration < 1",
            "df[(df['status'] == 'FAILED') | ~(df['duration'] < 1)]",
        ),
        (
            "SELECT * FROM tasks WHERE status IN ('FAILED', 'ABORTED')",
            "df[df['status'].isin(['FAILED', 'ABORTED'])]",
        ),
        (
            "SELECT * FROM tasks WHERE duration BETWEEN 1 AND 2",
            "df[df['duration'].between(1, 2)]",
        ),
        (
            "SELECT * FROM tasks WHERE stdout IS NOT NULL",
            "df[df['stdout'].notna()]",
        ),
        (
            "SELECT * FROM tasks WHERE stdout IS NULL",
            "df[df['stdout'].isna()]",
        ),
        # LIKE translations
        (
            "SELECT * FROM tasks WHERE hostname LIKE 'node%'",
            "df[df['hostname'].str.startswith('node')]",
        ),
        (
            "SELECT * FROM tasks WHERE hostname LIKE '%-1'",
            "df[df['hostname'].str.endswith('-1')]",
        ),
        (
            "SELECT * FROM tasks WHERE stderr LIKE '%error%'",
            "df[df['stderr'].str.contains('error')]",
        ),
        (
            "SELECT * FROM tasks WHERE hostname LIKE 'node-1'",
            "df[df['hostname'] == 'node-1']",
        ),
        # order / limit / offset
        (
            "SELECT task_id FROM tasks ORDER BY started_at DESC LIMIT 3",
            "df.sort_values('started_at', ascending=False).head(3)[['task_id']]",
        ),
        (
            "SELECT * FROM tasks ORDER BY duration DESC, task_id LIMIT 4 OFFSET 2",
            "df.sort_values(['duration', 'task_id'], ascending=[False, True])"
            ".iloc[2:].head(4)",
        ),
        # scalar aggregates
        ("SELECT COUNT(*) FROM tasks", "len(df)"),
        (
            "SELECT COUNT(*) FROM tasks WHERE status = 'FAILED'",
            "len(df[df['status'] == 'FAILED'])",
        ),
        ("SELECT AVG(duration) FROM tasks", "df['duration'].mean()"),
        ("SELECT MAX(duration) FROM tasks", "df['duration'].max()"),
        # grouped aggregates
        (
            "SELECT hostname, COUNT(*) FROM tasks GROUP BY hostname",
            "df.groupby('hostname')['hostname'].count()",
        ),
        (
            "SELECT activity_id, AVG(duration) FROM tasks GROUP BY activity_id",
            "df.groupby('activity_id')['duration'].mean()",
        ),
        (
            "SELECT hostname, SUM(duration) FROM tasks GROUP BY hostname "
            "HAVING SUM(duration) > 10 ORDER BY SUM(duration) DESC LIMIT 2",
            "df.groupby('hostname')['duration'].sum()[df['duration'] > 10]"
            ".sort_values('duration', ascending=False).head(2)",
        ),
        # distinct
        ("SELECT DISTINCT status FROM tasks", "df['status'].unique()"),
        (
            "SELECT DISTINCT status, hostname FROM tasks",
            "df[['status', 'hostname']].drop_duplicates()",
        ),
        (
            "SELECT DISTINCT status, hostname FROM tasks LIMIT 4 OFFSET 2",
            "df[['status', 'hostname']].drop_duplicates().iloc[2:].head(4)",
        ),
    ],
)
def test_sql_compiles_to_the_pandas_surface_ir(sql, pandas):
    assert compile_sql(sql) == parse_query(pandas)


class TestLoweringDetails:
    def test_grouped_projection_reorders_output(self):
        # natural GroupAgg output is (keys..., agg column); selecting the
        # aggregate first forces an explicit reordering projection
        p = compile_sql(
            "SELECT AVG(duration), hostname FROM tasks GROUP BY hostname"
        )
        assert isinstance(p.steps[-1], q.Project)
        assert p.steps[-1].columns == ("duration", "hostname")

    def test_offset_zero_is_dropped(self):
        assert compile_sql("SELECT * FROM tasks LIMIT 3 OFFSET 0") == parse_query(
            "df.head(3)"
        )

    def test_count_star_grouped_counts_first_key(self):
        p = compile_sql(
            "SELECT workflow_id, COUNT(*) FROM tasks GROUP BY workflow_id"
        )
        group = next(s for s in p.steps if isinstance(s, q.GroupAgg))
        assert group.column == "workflow_id"
        assert group.agg == "count"

    def test_inner_wildcard_like_is_unsupported(self):
        with pytest.raises(SqlUnsupportedError) as exc:
            compile_sql("SELECT * FROM tasks WHERE hostname LIKE 'a%b%'")
        assert "LIKE pattern" in str(exc.value)

    def test_underscore_wildcard_is_unsupported(self):
        with pytest.raises(SqlUnsupportedError):
            compile_sql("SELECT * FROM tasks WHERE hostname LIKE 'node-_'")
