"""The gateway's fourth dialect: sql requests through one query surface.

Parity is the tentpole property: a SQL request and its filter/pipeline
equivalent produce byte-identical replies and share cache entries,
because all three compile to the same IR before anything executes.
"""

from __future__ import annotations

import pytest

from repro.api import schemas as s
from repro.api.schemas import ErrorCode, ErrorEnvelope, QueryReply, QueryRequest

FAILED_SQL = (
    "SELECT task_id, status FROM tasks WHERE status = 'FAILED' "
    "ORDER BY task_id"
)
FAILED_CODE = (
    "df[df['status'] == 'FAILED'].sort_values('task_id', ascending=True)"
    "[['task_id', 'status']]"
)


class TestSqlDialect:
    def test_frame_reply(self, client):
        reply = client.sql("SELECT * FROM tasks WHERE status = 'FAILED'")
        assert isinstance(reply, QueryReply)
        assert reply.kind == "frame"
        assert {r["status"] for r in reply.frame.to_dicts()} == {"FAILED"}

    def test_scalar_reply(self, client):
        reply = client.sql("SELECT COUNT(*) FROM tasks")
        assert reply.kind == "scalar"
        assert reply.scalar == 20

    def test_aggregate_reply(self, client):
        reply = client.sql("SELECT AVG(duration) FROM tasks")
        assert reply.kind == "scalar"
        assert isinstance(reply.scalar, float)

    def test_distinct_reply_is_list(self, client):
        reply = client.sql("SELECT DISTINCT status FROM tasks")
        assert reply.kind == "scalar"
        assert set(reply.scalar) == {"FINISHED", "FAILED"}

    def test_grouped_reply(self, client):
        reply = client.sql(
            "SELECT hostname, COUNT(task_id) FROM tasks GROUP BY hostname"
        )
        rows = {r["hostname"]: r["task_id"] for r in reply.frame.to_dicts()}
        assert rows == {"node-0": 10, "node-1": 10}

    def test_dotted_column_via_quotes(self, client):
        reply = client.sql('SELECT task_id FROM tasks WHERE "used.x" >= 18')
        assert {r["task_id"] for r in reply.frame.to_dicts()} == {"t18", "t19"}


class TestCrossDialectParity:
    def test_sql_equals_filter_bytes(self, client):
        by_sql = client.query(QueryRequest(dialect="sql", sql=FAILED_SQL))
        by_filter = client.query(
            QueryRequest(
                dialect="filter",
                filter={"status": "FAILED"},
                sort=(("task_id", 1),),
            )
        )
        assert (
            {r["task_id"] for r in by_sql.frame.to_dicts()}
            == {r["task_id"] for r in by_filter.frame.to_dicts()}
        )

    def test_sql_equals_pipeline_bytes(self, client):
        by_sql = client.query(QueryRequest(dialect="sql", sql=FAILED_SQL))
        by_pipeline = client.query(
            QueryRequest(dialect="pipeline", code=FAILED_CODE)
        )
        # the reply echoes its dialect; everything computed is identical
        assert by_sql.frame == by_pipeline.frame
        assert by_sql.page == by_pipeline.page
        assert by_sql.summary == by_pipeline.summary
        assert s.to_json(by_sql).replace('"sql"', '"pipeline"', 1) == s.to_json(
            by_pipeline
        )

    def test_sql_and_pipeline_share_one_cache_entry(self, stack):
        """Equivalent requests through different dialects compile to the
        same IR, so the first warms the cache for the second."""
        service, gateway, client = stack
        client.query(QueryRequest(dialect="sql", sql=FAILED_SQL))
        before = service.query_cache.stats()["hits"]
        client.query(QueryRequest(dialect="pipeline", code=FAILED_CODE))
        assert service.query_cache.stats()["hits"] == before + 1

    def test_repeat_sql_hits_cache(self, stack):
        service, gateway, client = stack
        request = QueryRequest(dialect="sql", sql="SELECT COUNT(*) FROM tasks")
        first = client.query(request)
        before = service.query_cache.stats()["hits"]
        second = client.query(request)
        assert second == first
        assert service.query_cache.stats()["hits"] == before + 1


class TestPagination:
    def test_page_and_continue(self, client):
        first = client.sql("SELECT task_id FROM tasks", page_size=8)
        assert first.page.returned == 8
        assert first.page.next_cursor is not None
        rest = client.sql(
            "SELECT task_id FROM tasks", page_size=8, cursor=first.page.next_cursor
        )
        ids = {r["task_id"] for r in first.frame.to_dicts()} | {
            r["task_id"] for r in rest.frame.to_dicts()
        }
        assert len(ids) == 16

    def test_cursor_reuse_after_write_is_stale(self, stack, store):
        from tests.sql.conftest import task_doc

        service, gateway, client = stack
        first = client.sql("SELECT task_id FROM tasks", page_size=6)
        store.upsert(task_doc(99))
        err = client.sql(
            "SELECT task_id FROM tasks", page_size=6,
            cursor=first.page.next_cursor,
        )
        assert isinstance(err, ErrorEnvelope)
        assert err.code == ErrorCode.CURSOR_STALE

    def test_cursor_is_pinned_to_the_statement(self, client):
        first = client.sql("SELECT task_id FROM tasks", page_size=6)
        err = client.sql(
            "SELECT task_id FROM tasks WHERE status = 'FAILED'",
            page_size=6,
            cursor=first.page.next_cursor,
        )
        assert err.code == ErrorCode.CURSOR_INVALID


class TestErrors:
    def test_missing_sql_field(self, client):
        err = client.query(QueryRequest(dialect="sql"))
        assert err.code == ErrorCode.BAD_REQUEST
        assert "sql" in err.message

    def test_syntax_error_carries_diagnostic(self, client):
        err = client.sql("SELECT * FROM tasks WHERE")
        assert err.code == ErrorCode.QUERY_SYNTAX
        assert err.detail["line"] == 1
        assert err.detail["column"] == 26
        assert err.detail["snippet"].endswith("^")

    def test_unsupported_feature_is_bad_request_with_reason(self, client):
        err = client.sql("SELECT * FROM tasks JOIN other ON 1")
        assert err.code == ErrorCode.BAD_REQUEST
        assert "JOIN" in err.detail["message"]

    def test_resolution_error_is_bad_request(self, client):
        err = client.sql("SELECT a FROM runs")
        assert err.code == ErrorCode.BAD_REQUEST
        assert "only 'tasks' is queryable" in err.detail["message"]

    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT",
            "SELECT 'unterminated FROM tasks",
            "SELECT * FROM tasks WHERE a @ 1",
            "SELECT COUNT(a), SUM(b) FROM tasks",
            "SELECT * FROM tasks WHERE status = 5",
            "x" * 10_000,
            "SELECT * FROM tasks; DROP TABLE tasks",
        ],
    )
    def test_never_a_traceback(self, client, sql):
        reply = client.query(QueryRequest(dialect="sql", sql=sql))
        assert isinstance(reply, (QueryReply, ErrorEnvelope))
        if isinstance(reply, ErrorEnvelope):
            assert reply.code in ErrorCode.ALL


class TestForeignFields:
    @pytest.mark.parametrize(
        "request_obj,stray",
        [
            (
                QueryRequest(dialect="sql", sql="SELECT 1", filter={"a": 1}),
                "filter",
            ),
            (QueryRequest(dialect="sql", sql="SELECT 1", code="df"), "code"),
            (QueryRequest(dialect="sql", sql="SELECT 1", limit=5), "limit"),
            (
                QueryRequest(
                    dialect="sql", sql="SELECT 1", operation="upstream"
                ),
                "operation",
            ),
            (
                QueryRequest(dialect="sql", sql="SELECT 1", task_id="t1"),
                "task_id",
            ),
            (
                QueryRequest(dialect="filter", filter={}, sql="SELECT 1"),
                "sql",
            ),
            (
                QueryRequest(dialect="pipeline", code="df", sql="SELECT 1"),
                "sql",
            ),
            (
                QueryRequest(
                    dialect="graph", operation="roots", sql="SELECT 1"
                ),
                "sql",
            ),
            (
                QueryRequest(dialect="filter", filter={}, code="df"),
                "code",
            ),
        ],
    )
    def test_stray_field_is_bad_request(self, client, request_obj, stray):
        err = client.query(request_obj)
        assert err.code == ErrorCode.BAD_REQUEST
        assert stray in err.message


class TestExplain:
    def test_explain_reports_the_compiled_plan(self, client):
        reply = client.sql(
            "SELECT task_id FROM tasks WHERE workflow_id = 'wf-1'",
            explain=True,
        )
        assert reply.kind == "explain"
        detail = reply.scalar
        assert detail["sql"].startswith("SELECT")
        assert detail["pipeline"].startswith("df[")
        assert detail["cache"] == "miss"
        assert "store_version" in detail
        assert detail["pushdown"] == {"workflow_id": "wf-1"}
        # operator pushdown: the projection plan runs shard-side, the
        # pipeline itself replays at the coordinator over pruned docs
        assert detail["pushdown_mode"] == "project"
        assert detail["pushed_steps"]
        assert detail["coordinator_steps"]

    def test_explain_is_cache_aware_and_non_distorting(self, stack):
        service, gateway, client = stack
        sql = "SELECT COUNT(*) FROM tasks WHERE status = 'FAILED'"
        assert client.sql(sql, explain=True).scalar["cache"] == "miss"
        client.sql(sql)  # executes and warms the cache
        stats_before = service.query_cache.stats()["hits"]
        assert client.sql(sql, explain=True).scalar["cache"] == "hit"
        # explain peeks; it must not inflate hit accounting
        assert service.query_cache.stats()["hits"] == stats_before

    def test_explain_of_bad_sql_is_still_a_diagnostic(self, client):
        err = client.sql("SELECT * FROM tasks WHERE", explain=True)
        assert err.code == ErrorCode.QUERY_SYNTAX


class TestRemoteTransport:
    def test_sql_over_http_matches_in_process(self, stack):
        from repro.api.client import RemoteClient
        from repro.api.http import GatewayHTTPServer

        service, gateway, client = stack
        server = GatewayHTTPServer(gateway)
        server.start()
        try:
            with RemoteClient.for_server(server) as remote:
                local = client.sql(FAILED_SQL)
                over_http = remote.sql(FAILED_SQL)
                assert s.to_json(over_http) == s.to_json(local)
                err = remote.sql("SELECT * FROM tasks WHERE")
                assert err.code == ErrorCode.QUERY_SYNTAX
                assert err.detail["column"] == 26
        finally:
            server.stop()
