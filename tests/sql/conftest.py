"""Shared fixtures: a provenance stack behind a gateway, for SQL tests.

Mirrors ``tests/api/conftest.py`` so cross-dialect parity assertions run
over the same documents the filter/pipeline/graph dialect tests use.
"""

from __future__ import annotations

import pytest

from repro.agent.service import AgentService
from repro.api.client import GatewayClient
from repro.api.gateway import ProvenanceGateway
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI
from repro.storage import ProvenanceDatabase


def task_doc(i: int, **extra) -> dict:
    return dict(
        {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % 3}",
            "campaign_id": "sql-tests",
            "activity_id": f"a{i % 4}",
            "status": "FAILED" if i % 7 == 3 else "FINISHED",
            "started_at": 1000.0 + i,
            "ended_at": 1001.0 + i,
            "duration": 1.0 + (i % 5) * 0.5,
            "hostname": f"node-{i % 2}",
            "used": {"x": i, "_upstream": [f"t{i - 1}"] if i else []},
            "generated": {"y": i * i},
        },
        **extra,
    )


@pytest.fixture
def store() -> ProvenanceDatabase:
    db = ProvenanceDatabase()
    db.upsert_many([task_doc(i) for i in range(20)])
    return db


@pytest.fixture
def stack(store):
    ctx = CaptureContext()
    service = AgentService(ctx, llm=LLMServer(), query_api=QueryAPI(store))
    ctx.broker.publish_batch("provenance.task", store.all())
    gateway = ProvenanceGateway(service)
    client = GatewayClient(gateway)
    yield service, gateway, client
    service.close()


@pytest.fixture
def gateway(stack):
    return stack[1]


@pytest.fixture
def client(stack):
    return stack[2]
