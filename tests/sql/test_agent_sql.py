"""Agent integration: SELECT messages route to the SQL tool, no LLM."""

from __future__ import annotations

import pytest

from repro.agent.router import Intent, ToolRouter
from repro.agent.service import AgentService
from repro.agent.tools.sql_query import SqlQueryTool
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI


class TestRouting:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * FROM tasks",
            "select count(*) from tasks",
            "  SELECT task_id FROM tasks WHERE status = 'FAILED'",
        ],
    )
    def test_select_statements_route_to_sql(self, text):
        assert ToolRouter().classify(text) == Intent.SQL_QUERY

    def test_sql_wins_over_nl_vocabulary(self):
        # traversal/plot/historical words inside a SELECT must not reroute
        assert (
            ToolRouter().classify(
                "SELECT * FROM tasks WHERE stderr LIKE '%graph history%'"
            )
            == Intent.SQL_QUERY
        )

    def test_nl_questions_keep_their_routes(self):
        router = ToolRouter()
        assert router.classify("how many tasks failed?") == Intent.MONITORING_QUERY
        assert router.classify("hello") == Intent.GREETING


class TestSqlQueryTool:
    @pytest.fixture
    def tool(self, store):
        return SqlQueryTool(QueryAPI(store))

    def test_frame_result(self, tool):
        result = tool.invoke(sql="SELECT task_id FROM tasks WHERE status = 'FAILED'")
        assert result.ok
        assert result.details["dialect"] == "sql"
        assert result.code == "df[df['status'] == 'FAILED'][['task_id']]"
        assert len(result.data) == 3

    def test_question_keyword_also_accepted(self, tool):
        # router turns arrive as question=<chat message>
        result = tool.invoke(question="SELECT COUNT(*) FROM tasks")
        assert result.ok
        assert result.data == 20

    def test_cache_states(self, tool):
        assert tool.invoke(sql="SELECT COUNT(*) FROM tasks").details["cache"] in {
            "hit", "miss"
        }
        assert (
            tool.invoke(sql="SELECT COUNT(*) FROM tasks").details["cache"] == "hit"
        )

    def test_compile_failure_is_a_diagnostic(self, tool):
        result = tool.invoke(sql="SELECT * FROM tasks WHERE")
        assert not result.ok
        assert result.details["diagnostic"]["column"] == 26
        assert result.error.startswith("line 1, column 26")

    def test_empty_statement(self, tool):
        assert not tool.invoke(sql="   ").ok

    def test_no_llm_involved(self, tool):
        assert tool.uses_llm is False


class TestServiceIntegration:
    def test_chat_select_answers_without_llm(self, stack):
        service, gateway, client = stack
        before = service.llm.stats().get("requests", 0)
        service.create_session("sql-user")
        turn = service.chat(
            "sql-user", "SELECT task_id FROM tasks WHERE status = 'FAILED'"
        )
        assert turn.ok
        assert turn.intent == Intent.SQL_QUERY
        assert service.llm.stats().get("requests", 0) == before

    def test_tool_is_on_mcp_surface(self, stack):
        service, gateway, client = stack
        assert "provenance_sql_query" in service.registry.names()

    def test_without_store_select_falls_back_to_monitoring(self):
        ctx = CaptureContext()
        service = AgentService(ctx, llm=LLMServer())
        try:
            service.create_session("u")
            reply = service.chat("u", "SELECT COUNT(*) FROM tasks")
            assert reply.intent == Intent.MONITORING_QUERY
        finally:
            service.close()

    def test_turn_records_tool_name(self, stack):
        service, gateway, client = stack
        service.create_session("audit")
        service.chat("audit", "SELECT COUNT(*) FROM tasks")
        # the recorded tool execution carries the sql tool's name
        session = service.session("audit")
        assert session.turns[-1].intent == Intent.SQL_QUERY
