"""Restart semantics: caches, cursors, and lineage across a recovery.

A durable backend makes the *store* survive a crash — these tests pin
down what happens to everything layered on top of it when the process
comes back:

* a :class:`QueryCache` outliving its store (same process, reopened
  backend) must never serve pre-crash entries — the recovery epoch bump
  guarantees the post-recovery version can never equal a pre-crash one,
  so stale entries are unreachable, not merely unlikely;
* gateway cursors minted before the restart live client-side and *do*
  survive — replaying one must come back ``CURSOR_STALE`` (version
  pinned pre-crash) or ``CURSOR_INVALID`` (undecodable), never a
  silently wrong page;
* the in-memory :class:`LineageIndex` restarts empty and is rebuilt
  from the recovered store through keeper-identical validation
  (:meth:`ProvenanceKeeper.rebuild_lineage`,
  :meth:`LineageService.replay_store`).
"""

from __future__ import annotations

from dataclasses import replace

from repro.agent.service import AgentService
from repro.api.client import GatewayClient
from repro.api.gateway import ProvenanceGateway
from repro.api.schemas import ErrorCode, ErrorEnvelope, QueryRequest
from repro.capture.context import CaptureContext
from repro.lineage.index import LineageIndex
from repro.lineage.service import LineageService
from repro.llm.service import LLMServer
from repro.messaging.broker import InProcessBroker
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.query.cache import MISS, QueryCache
from repro.storage import DurableStore
from tests.api.conftest import task_doc

ALL_TASKS = QueryRequest(dialect="filter", filter={}, page_size=6)


def _populated(path: str, n: int = 20) -> DurableStore:
    store = DurableStore(path)
    store.upsert_many([task_doc(i) for i in range(n)])
    return store


# ---------------------------------------------------------------------------
# QueryCache
# ---------------------------------------------------------------------------


class TestCacheAcrossRestart:
    def test_pre_crash_entries_never_hit_after_recovery(self, tmp_path):
        path = str(tmp_path / "store")
        cache = QueryCache()
        store = _populated(path)
        api = QueryAPI(store, cache=cache)
        before = api.counts("status")
        assert cache.stats()["entries"] >= 1
        # the repeat answers from cache while the store is untouched
        assert api.counts("status") == before
        hits_pre = cache.stats()["hits"]
        assert hits_pre >= 1

        # crash: the store object is abandoned un-closed; same cache,
        # recovered backend
        del store, api
        recovered = DurableStore(path)
        recovered.upsert(task_doc(99, status="FAILED"))
        api = QueryAPI(recovered, cache=cache)

        after = api.counts("status")
        assert after["FAILED"] == before.get("FAILED", 0) + 1
        # the pre-crash entry was invalidated, not served: zero new hits
        assert cache.stats()["hits"] == hits_pre
        assert cache.stats()["invalidations"] >= 1
        recovered.close()

    def test_recovery_epoch_bump_makes_stale_versions_unreachable(self, tmp_path):
        """version() after recovery is strictly past every pre-crash
        observation, even when recovery replays zero new writes."""
        path = str(tmp_path / "store")
        store = _populated(path, n=5)
        v_pre = store.version()
        del store  # crash
        recovered = DurableStore(path)
        assert recovered.version() > v_pre
        # and a same-process cache keyed on the old version cannot match
        cache = QueryCache()
        cache.put("k", v_pre, "pre-crash rows")
        assert cache.get("k", recovered.version()) is MISS
        recovered.close()


# ---------------------------------------------------------------------------
# gateway cursors
# ---------------------------------------------------------------------------


def _stack(store):
    ctx = CaptureContext()
    service = AgentService(ctx, llm=LLMServer(), query_api=QueryAPI(store))
    ctx.broker.publish_batch("provenance.task", store.all())
    return service, GatewayClient(ProvenanceGateway(service))


class TestCursorsAcrossRestart:
    def test_pre_restart_cursor_returns_stale_not_wrong_page(self, tmp_path):
        path = str(tmp_path / "store")
        store = _populated(path)
        service, client = _stack(store)
        first = client.query(ALL_TASKS)
        assert first.page.next_cursor is not None
        pre_cursor = first.page.next_cursor
        service.close()
        del store  # crash

        recovered = DurableStore(path)
        service, client = _stack(recovered)
        try:
            err = client.query(replace(ALL_TASKS, cursor=pre_cursor))
            assert isinstance(err, ErrorEnvelope)
            assert err.code == ErrorCode.CURSOR_STALE
            assert err.detail["cursor_version"] < err.detail["store_version"]
            # restarting the walk sees the recovered rows, fully
            reply = client.query(ALL_TASKS)
            assert reply.page.total == 20
        finally:
            service.close()
            recovered.close()

    def test_pre_restart_cursor_stale_even_with_identical_contents(self, tmp_path):
        """The dangerous case: recovery reproduces byte-identical rows,
        so a silently-accepted cursor would LOOK right — the epoch bump
        is what forces the client through a fresh first page anyway."""
        path = str(tmp_path / "store")
        store = _populated(path)
        service, client = _stack(store)
        pages_pre = client.query(ALL_TASKS)
        service.close()
        store.close()  # clean shutdown: still a restart

        recovered = DurableStore(path)
        service, client = _stack(recovered)
        try:
            assert client.query(ALL_TASKS).frame == pages_pre.frame
            err = client.query(
                replace(ALL_TASKS, cursor=pages_pre.page.next_cursor)
            )
            assert err.code == ErrorCode.CURSOR_STALE
        finally:
            service.close()
            recovered.close()

    def test_garbage_cursor_still_invalid_after_restart(self, tmp_path):
        path = str(tmp_path / "store")
        _populated(path).close()
        recovered = DurableStore(path)
        service, client = _stack(recovered)
        try:
            err = client.query(replace(ALL_TASKS, cursor="!!pre-crash junk!!"))
            assert err.code == ErrorCode.CURSOR_INVALID
        finally:
            service.close()
            recovered.close()


# ---------------------------------------------------------------------------
# lineage rebuild
# ---------------------------------------------------------------------------


class TestLineageRebuild:
    def test_keeper_rebuild_lineage_restores_the_graph(self, tmp_path):
        path = str(tmp_path / "store")
        store = DurableStore(path)
        broker = InProcessBroker()
        index = LineageIndex()
        keeper = ProvenanceKeeper(broker, store, lineage_index=index)
        keeper.ingest_batch([task_doc(i) for i in range(12)])
        downstream_pre = index.downstream("t0")
        assert downstream_pre  # linear chain: t0 reaches everything
        del store, keeper, index  # crash: index state is gone

        recovered = DurableStore(path)
        fresh_index = LineageIndex()
        keeper = ProvenanceKeeper(broker, recovered, lineage_index=fresh_index)
        assert len(fresh_index) == 0
        applied = keeper.rebuild_lineage()
        assert applied == 12
        assert fresh_index.downstream("t0") == downstream_pre
        # rebuild is idempotent: running it again changes nothing
        keeper.rebuild_lineage()
        assert len(fresh_index) == 12
        # and live ingest keeps working on top of the rebuilt graph
        keeper.ingest(task_doc(12))
        assert "t12" in fresh_index.downstream("t0")
        recovered.close()

    def test_keeper_rebuild_without_index_is_a_noop(self, tmp_path):
        store = _populated(str(tmp_path / "store"), n=3)
        keeper = ProvenanceKeeper(InProcessBroker(), store)
        assert keeper.rebuild_lineage() == 0
        store.close()

    def test_service_replay_store_validates_like_ingest(self, tmp_path):
        """replay_store applies keeper-identical validation: documents
        live ingest would reject are rejected on replay too."""
        path = str(tmp_path / "store")
        store = DurableStore(path)
        store.upsert_many([task_doc(i) for i in range(6)])
        store.insert({"type": "note", "msg": "not a task"})  # schema-invalid
        store.close()

        recovered = DurableStore(path)
        service = LineageService(InProcessBroker())
        applied = service.replay_store(recovered)
        assert applied == 6
        assert service.rejected_count == 1
        assert len(service.index) == 6
        assert service.index.downstream("t0") == {f"t{i}" for i in range(1, 6)}
        recovered.close()
