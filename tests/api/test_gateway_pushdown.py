"""Per-query operator-pushdown decisions in the gateway's stats surface.

Every executed pipeline/sql query records one decision —
``pushed:<mode>``, ``fallback:<mode>``, ``classic``, or ``cache-hit`` —
plus scatter-payload totals and the last decision's detail, all
published through ``stats()`` and the ``gateway-stats`` MCP resource.
Explain requests plan without executing, so they must never move the
counters; the filter and graph dialects gained routing-aware explains
of their own.
"""

from __future__ import annotations

import pytest

from repro.agent.mcp.client import MCPClient
from repro.agent.service import AgentService
from repro.api.client import GatewayClient
from repro.api.gateway import ProvenanceGateway
from repro.api.schemas import QueryRequest
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI
from repro.storage import ShardedProvenanceStore
from tests.api.conftest import task_doc

MEAN = "df['duration'].mean()"


@pytest.fixture
def sharded_stack():
    """The api-test stack, but over a 4-shard store."""
    store = ShardedProvenanceStore(4)
    store.upsert_many([task_doc(i) for i in range(20)])
    ctx = CaptureContext()
    service = AgentService(ctx, llm=LLMServer(), query_api=QueryAPI(store))
    ctx.broker.publish_batch("provenance.task", store.all())
    gateway = ProvenanceGateway(service)
    client = GatewayClient(gateway)
    yield service, gateway, client
    service.close()


class TestDecisionCounters:
    def test_pushed_execution_is_counted_with_totals_and_last(
        self, sharded_stack
    ):
        _, _, client = sharded_stack
        reply = client.query(QueryRequest(dialect="pipeline", code=MEAN))
        assert reply.kind == "scalar"
        pushdown = client.stats().pushdown
        assert pushdown["decisions"] == {"pushed:partial": 1}
        assert pushdown["totals"]["rows_scanned"] == 20
        assert pushdown["last"]["mode"] == "partial"
        assert pushdown["last"]["pushed_steps"]

    def test_repeat_query_counts_a_cache_hit(self, sharded_stack):
        _, _, client = sharded_stack
        client.query(QueryRequest(dialect="pipeline", code=MEAN))
        client.query(QueryRequest(dialect="pipeline", code=MEAN))
        decisions = client.stats().pushdown["decisions"]
        assert decisions.get("pushed:partial") == 1
        assert decisions.get("cache-hit") == 1

    def test_unplannable_pipeline_counts_classic(self, sharded_stack):
        _, _, client = sharded_stack
        client.query(
            QueryRequest(dialect="pipeline", code="df.sort_values('duration')")
        )
        assert client.stats().pushdown["decisions"].get("classic") == 1

    def test_refused_combine_counts_a_fallback_with_reason(
        self, sharded_stack
    ):
        _, _, client = sharded_stack
        # zero matching rows: the combine refuses and the classic path
        # answers (with 0), so the reply is still correct
        reply = client.query(
            QueryRequest(
                dialect="pipeline",
                code="len(df[df['status'] == 'NO-SUCH-STATUS'])",
            )
        )
        assert reply.scalar == 0
        pushdown = client.stats().pushdown
        assert pushdown["decisions"].get("fallback:partial") == 1
        assert pushdown["last"]["fallback"] == "no matching rows"

    def test_sql_dialect_shares_the_same_counters(self, sharded_stack):
        _, _, client = sharded_stack
        client.sql("SELECT COUNT(*) FROM tasks")
        client.sql("SELECT status, COUNT(task_id) FROM tasks GROUP BY status")
        decisions = client.stats().pushdown["decisions"]
        assert decisions.get("pushed:partial") == 2

    def test_explain_never_moves_the_counters(self, sharded_stack):
        _, _, client = sharded_stack
        client.sql("SELECT COUNT(*) FROM tasks", explain=True)
        client.query(
            QueryRequest(dialect="pipeline", code=MEAN, explain=True)
        )
        assert client.stats().pushdown["decisions"] == {}

    def test_single_node_stack_pushes_down_too(self, client):
        # the default api-test stack runs the in-memory store, which
        # also exposes execute_partial (shards == 1)
        client.query(QueryRequest(dialect="pipeline", code=MEAN))
        pushdown = client.stats().pushdown
        assert pushdown["decisions"].get("pushed:partial") == 1
        assert pushdown["last"]["shards"] == 1


class TestStatsResource:
    def test_gateway_stats_resource_carries_pushdown(self, sharded_stack):
        service, _, client = sharded_stack
        client.query(QueryRequest(dialect="pipeline", code=MEAN))
        payload = MCPClient(service.mcp).read_resource("gateway-stats")
        assert payload["pushdown"]["decisions"]["pushed:partial"] == 1
        assert payload["pushdown"]["totals"]["rows_scanned"] == 20
        # the serving snapshot follows the front door and agrees
        serving = MCPClient(service.mcp).read_resource("serving-stats")
        assert serving["pushdown"] == payload["pushdown"]


class TestDialectExplains:
    def test_pipeline_explain_reports_the_plan_split(self, sharded_stack):
        _, _, client = sharded_stack
        reply = client.query(
            QueryRequest(
                dialect="pipeline",
                code="df.groupby('status')['duration'].mean()",
                explain=True,
            )
        )
        assert reply.kind == "explain"
        detail = reply.scalar
        assert detail["pushdown_mode"] == "partial"
        assert any(s.startswith("partial:") for s in detail["pushed_steps"])
        assert any(
            s.startswith("merge:") for s in detail["coordinator_steps"]
        )

    def test_filter_explain_is_the_store_access_plan(self, sharded_stack):
        _, _, client = sharded_stack
        reply = client.query(
            QueryRequest(
                dialect="filter",
                filter={"workflow_id": "wf-1"},
                explain=True,
            )
        )
        assert reply.kind == "explain"
        detail = reply.scalar
        assert detail["filter"] == {"workflow_id": "wf-1"}
        assert "plan" in detail and "store_version" in detail

    def test_graph_explain_names_the_lineage_index(self, sharded_stack):
        _, _, client = sharded_stack
        reply = client.query(
            QueryRequest(dialect="graph", operation="roots", explain=True)
        )
        assert reply.kind == "explain"
        detail = reply.scalar
        assert detail["source"] == "lineage-index"
        assert detail["pushdown_mode"] is None
        assert detail["coordinator_steps"] == ["graph:roots"]
