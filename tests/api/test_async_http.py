"""Asyncio transport: the full route matrix plus admission edges.

The route/status/negotiation/keep-alive classes are imported from
``test_http`` and re-collected here against this module's ``server``
fixture — the asyncio transport must pass the exact matrix the threaded
one does (the routing core is shared; this pins the transport-level
parsing and response encoding too).
"""

from __future__ import annotations

import http.client
import threading
import time

import pytest

from repro.api.admission import AdmissionController
from repro.api.aio import AsyncGatewayServer
from repro.api.schemas import ErrorCode, from_json

# re-collected against the asyncio server fixture below
from tests.api.test_http import (  # noqa: F401
    TestContentNegotiation,
    TestKeepAlive,
    TestRoutes,
    TestStatusCodes,
    call,
)


@pytest.fixture
def server(gateway):
    srv = AsyncGatewayServer(gateway).start()
    yield srv
    srv.stop()


@pytest.fixture
def conn(server):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    yield connection
    connection.close()


class TestTransportEdges:
    def test_bad_request_line_is_400(self, server):
        import socket

        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(65536)
        assert b"400" in reply.split(b"\r\n", 1)[0]
        assert b"BAD_REQUEST" in reply

    def test_oversize_body_refused_before_read(self, server):
        import socket

        from repro.api.routing import MAX_BODY_BYTES

        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n"
            )
            reply = sock.recv(65536)
        assert b"400" in reply.split(b"\r\n", 1)[0]
        assert b"body too large" in reply

    def test_http10_connection_closes(self, server):
        import socket

        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET /v1/stats HTTP/1.0\r\nHost: t\r\n\r\n")
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed, as HTTP/1.0 demands
                chunks.append(chunk)
        reply = b"".join(chunks)
        assert reply.split(b"\r\n", 1)[0].endswith(b"200 OK")
        assert b"Connection: close" in reply


class TestAdmissionOverHTTP:
    def test_queue_full_is_503_with_retry_after(self, gateway):
        admission = AdmissionController(max_concurrency=1, max_queue_depth=0)
        server = AsyncGatewayServer(
            gateway, executor_workers=1, admission=admission
        ).start()
        host, port = server.address
        release = threading.Event()
        entered = threading.Event()
        original_stats = gateway.stats

        def slow_stats():
            entered.set()
            release.wait(timeout=10)
            return original_stats()

        gateway.stats = slow_stats
        replies: dict[str, object] = {}

        def occupant():
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", "/v1/stats")
                response = conn.getresponse()
                replies["occupant"] = (response.status, response.read())
            finally:
                conn.close()

        try:
            holder = threading.Thread(target=occupant)
            holder.start()
            assert entered.wait(timeout=5)  # the one slot is taken
            t0 = time.perf_counter()
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", "/v1/stats")
                response = conn.getresponse()
                shed_elapsed = time.perf_counter() - t0
                assert response.status == 503
                assert response.getheader("Retry-After") is not None
                envelope = from_json(response.read())
                assert envelope.code == ErrorCode.OVERLOADED
            finally:
                conn.close()
            # shed BEFORE gateway work: the 503 never waited behind the
            # occupied slot
            assert shed_elapsed < 2.0
            release.set()
            holder.join(timeout=10)
            assert replies["occupant"][0] == 200
        finally:
            release.set()
            gateway.stats = original_stats
            server.stop()

    def test_noisy_session_is_isolated(self, gateway, stack):
        service = stack[0]
        admission = AdmissionController(
            max_concurrency=32, session_rate=0.001, session_burst=2.0
        )
        server = AsyncGatewayServer(gateway, admission=admission).start()
        try:
            service.create_session("noisy")
            service.create_session("calm")
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                statuses = []
                for _ in range(4):
                    status, _, body = call(
                        conn, "POST", "/v1/sessions/noisy/chat",
                        '{"message": "Hello!"}',
                    )
                    statuses.append(status)
                assert statuses[:2] == [200, 200]  # the burst
                assert set(statuses[2:]) == {429}
                _, _, raw = call(
                    conn, "POST", "/v1/sessions/noisy/chat",
                    '{"message": "Hello!"}',
                )
                envelope = from_json(raw)
                assert envelope.code == ErrorCode.RATE_LIMITED
                # the calm session on the same connection still has its
                # FULL burst: noisy exhausted only its own bucket
                for _ in range(2):
                    status, _, _ = call(
                        conn, "POST", "/v1/sessions/calm/chat",
                        '{"message": "Hello!"}',
                    )
                    assert status == 200
                # non-chat traffic has no session: never session-limited
                status, _, _ = call(conn, "GET", "/v1/stats")
                assert status == 200
            finally:
                conn.close()
        finally:
            server.stop()

    def test_drain_finishes_in_flight_then_503s(self, gateway, stack):
        service = stack[0]
        server = AsyncGatewayServer(gateway, executor_workers=2).start()
        host, port = server.address
        release = threading.Event()
        entered = threading.Event()
        original_stats = gateway.stats

        def slow_stats():
            entered.set()
            release.wait(timeout=10)
            return original_stats()

        gateway.stats = slow_stats
        outcome: dict[str, object] = {}

        def in_flight():
            conn = http.client.HTTPConnection(host, port, timeout=15)
            try:
                conn.request("GET", "/v1/stats")
                response = conn.getresponse()
                outcome["in_flight"] = (response.status, response.read())
            finally:
                conn.close()

        def closer():
            # the close hook drains the server: waits for the in-flight
            # request, then stops the loop
            service.close()
            outcome["closed"] = True

        try:
            flier = threading.Thread(target=in_flight)
            flier.start()
            assert entered.wait(timeout=5)
            closing = threading.Thread(target=closer)
            closing.start()
            # draining: a NEW request is shed with SERVICE_CLOSED now,
            # while the in-flight one is still running (probe a cheap
            # endpoint — the stats handler is the slowed one)
            deadline = time.time() + 5
            saw_shed = False
            while time.time() < deadline and not saw_shed:
                conn = http.client.HTTPConnection(host, port, timeout=5)
                try:
                    conn.request("GET", "/v1/lineage/t1")
                    response = conn.getresponse()
                    if response.status == 503:
                        envelope = from_json(response.read())
                        assert envelope.code == ErrorCode.SERVICE_CLOSED
                        saw_shed = True
                except (ConnectionError, http.client.HTTPException, OSError):
                    break  # listener already gone: drain had completed
                finally:
                    conn.close()
            release.set()
            flier.join(timeout=10)
            closing.join(timeout=15)
            # the accepted request got its real reply, not a 503
            assert outcome["in_flight"][0] == 200
            assert outcome.get("closed") is True
            assert saw_shed, "no request observed the draining window"
        finally:
            release.set()
            gateway.stats = original_stats
            server.stop()
