"""Transport parity: GatewayClient and RemoteClient are interchangeable.

The acceptance contract: for the same request, the in-process client
and the HTTP client return **byte-identical JSON** — across all three
query dialects, chat, lineage, CSV rendering, and error envelopes.
"""

from __future__ import annotations

import pytest

from repro.api.client import GatewayClient, RemoteClient
from repro.api.http import GatewayHTTPServer
from repro.api.schemas import ErrorEnvelope, QueryRequest, from_json

QUERY_MATRIX = [
    QueryRequest(dialect="filter", filter={"status": "FAILED"}),
    QueryRequest(dialect="filter", filter={}, sort=(("started_at", -1),), limit=5),
    QueryRequest(dialect="filter", filter={"used.x": {"$gte": 15}}),
    QueryRequest(dialect="filter", filter={}, page_size=7),
    QueryRequest(
        dialect="pipeline",
        code="df[df['status'] == 'FINISHED'][['task_id', 'duration']]",
    ),
    QueryRequest(dialect="pipeline", code="df['duration'].mean()"),
    QueryRequest(dialect="pipeline", code="df['status'].unique()"),
    QueryRequest(dialect="graph", operation="upstream", task_id="t5"),
    QueryRequest(dialect="graph", operation="causal_chain", task_id="t1", target="t4"),
    QueryRequest(dialect="graph", operation="impact_size", task_id="t10"),
    QueryRequest(dialect="graph", operation="roots"),
    # error envelopes are part of the parity surface too
    QueryRequest(dialect="sql"),
    QueryRequest(dialect="pipeline", code="df.!!!"),
    QueryRequest(dialect="graph", operation="upstream", task_id="ghost"),
    QueryRequest(dialect="filter", filter={}, page_size=0),
    QueryRequest(dialect="filter", filter={}, cursor="garbage"),
]


@pytest.fixture
def transports(stack):
    service, gateway, local = stack
    server = GatewayHTTPServer(gateway).start()
    remote = RemoteClient.for_server(server)
    yield local, remote
    remote.close()
    server.stop()


class TestByteParity:
    @pytest.mark.parametrize("request_obj", QUERY_MATRIX)
    def test_query_json_identical(self, transports, request_obj):
        local, remote = transports
        assert local.query_json(request_obj) == remote.query_json(request_obj)

    @pytest.mark.parametrize(
        "request_obj",
        [
            QueryRequest(dialect="filter", filter={"status": "FAILED"}),
            QueryRequest(dialect="pipeline", code="len(df)"),  # 406 path
        ],
    )
    def test_query_csv_identical(self, transports, request_obj):
        local, remote = transports
        assert local.query_csv(request_obj) == remote.query_csv(request_obj)

    def test_lineage_json_identical(self, transports):
        local, remote = transports
        assert local.lineage_json("t3", depth=2) == remote.lineage_json(
            "t3", depth=2
        )
        assert local.lineage_json("ghost") == remote.lineage_json("ghost")

    def test_chat_json_identical(self, transports):
        """Two sessions, same conversation, transport-identical replies."""
        local, remote = transports
        local.create_session("local-user")
        remote.create_session("remote-user")
        script = [
            "How many tasks have finished?",
            "In the database, how many tasks failed?",
            "What tasks are upstream of 't4'?",
        ]
        for message in script:
            a = from_json(local.chat_json("local-user", message))
            b = from_json(remote.chat_json("remote-user", message))
            # session_id naturally differs; everything else is identical
            assert (a.text, a.intent, a.ok, a.code, a.table, a.chart) == (
                b.text, b.intent, b.ok, b.code, b.table, b.chart
            )


class TestInterfaceParity:
    """The two clients expose the same surface, schema-for-schema."""

    def test_same_methods(self):
        shared = [
            "create_session", "chat", "chat_json", "query", "query_json",
            "query_csv", "lineage", "lineage_json", "stats",
        ]
        for name in shared:
            assert callable(getattr(GatewayClient, name))
            assert callable(getattr(RemoteClient, name))

    def test_same_schema_instances(self, transports):
        local, remote = transports
        request = QueryRequest(dialect="filter", filter={"status": "FAILED"})
        a, b = local.query(request), remote.query(request)
        assert type(a) is type(b)
        assert a == b

    def test_errors_come_back_typed(self, transports):
        local, remote = transports
        request = QueryRequest(dialect="sql")
        a, b = local.query(request), remote.query(request)
        assert isinstance(a, ErrorEnvelope) and isinstance(b, ErrorEnvelope)
        assert a == b

    def test_pagination_walk_across_transports(self, transports):
        """Pages fetched alternately via HTTP and in-process tile the
        same result set: cursors are transport-portable."""
        local, remote = transports
        from dataclasses import replace

        request = QueryRequest(dialect="filter", filter={}, page_size=6)
        ids: list[str] = []
        cursor = None
        clients = [local, remote]
        for hop in range(10):
            reply = clients[hop % 2].query(replace(request, cursor=cursor))
            ids.extend(r["task_id"] for r in reply.frame.to_dicts())
            cursor = reply.page.next_cursor
            if cursor is None:
                break
        assert ids == [f"t{i}" for i in range(20)]


class TestUrlEncoding:
    def test_session_ids_needing_escapes_work_over_http(self, transports):
        """Ids with spaces or slashes ride the URL path percent-encoded;
        both transports accept them identically."""
        local, remote = transports
        for client, sid in ((local, "team a/user 1"), (remote, "team b/user 2")):
            info = client.create_session(sid)
            assert info.session_id == sid
            reply = client.chat(sid, "How many tasks have finished?")
            assert reply.ok and reply.session_id == sid

    def test_lineage_task_id_is_percent_encoded(self, transports):
        local, remote = transports
        # an id that is not in the index but URL-hostile: both transports
        # must return the same typed UNKNOWN_TASK envelope, not a
        # transport error or NOT_FOUND route miss
        hostile = "no such/task?x=1#frag"
        assert local.lineage_json(hostile) == remote.lineage_json(hostile)
