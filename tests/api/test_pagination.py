"""Cursor pagination: walking pages, edge cases, staleness.

The satellite contract: empty result sets, cursors past the end,
``limit=0``, and cursor reuse across a store write (which must return
the stable ``CURSOR_STALE`` code, never silently shifted rows) all have
defined behaviour.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api.schemas import Cursor, ErrorCode, ErrorEnvelope, QueryRequest
from tests.api.conftest import task_doc

ALL_TASKS = QueryRequest(dialect="filter", filter={}, page_size=6)


def walk(client, request: QueryRequest) -> list:
    """Collect every page, asserting the envelope stays consistent."""
    pages = []
    cursor = None
    while True:
        reply = client.query(replace(request, cursor=cursor))
        assert not isinstance(reply, ErrorEnvelope), reply
        pages.append(reply)
        cursor = reply.page.next_cursor
        if cursor is None:
            return pages


class TestWalking:
    def test_pages_tile_the_result(self, client):
        pages = walk(client, ALL_TASKS)
        assert [p.page.offset for p in pages] == [0, 6, 12, 18]
        assert [p.page.returned for p in pages] == [6, 6, 6, 2]
        assert all(p.page.total == 20 for p in pages)
        ids = [r["task_id"] for p in pages for r in p.frame.to_dicts()]
        assert ids == [f"t{i}" for i in range(20)]

    def test_last_page_has_no_cursor(self, client):
        pages = walk(client, ALL_TASKS)
        assert pages[-1].page.next_cursor is None
        assert all(p.page.next_cursor is not None for p in pages[:-1])

    def test_pipeline_dialect_paginates(self, client):
        request = QueryRequest(
            dialect="pipeline",
            code="df.sort_values('task_id')[['task_id']]",
            page_size=8,
        )
        pages = walk(client, request)
        assert [p.page.returned for p in pages] == [8, 8, 4]

    def test_graph_dialect_paginates(self, client):
        request = QueryRequest(
            dialect="graph",
            operation="downstream",
            task_id="t0",
            page_size=7,
        )
        pages = walk(client, request)
        assert sum(p.page.returned for p in pages) == 19

    def test_unpaginated_returns_everything(self, client):
        reply = client.query(QueryRequest(dialect="filter", filter={}))
        assert reply.page.offset == 0
        assert reply.page.total == 20
        assert reply.page.returned == 20
        assert reply.page.next_cursor is None


class TestEdgeCases:
    def test_empty_result_set(self, client):
        reply = client.query(
            QueryRequest(
                dialect="filter", filter={"status": "NO_SUCH"}, page_size=5
            )
        )
        assert reply.page.total == 0
        assert reply.page.returned == 0
        assert reply.page.next_cursor is None
        assert reply.frame.rows == ()

    def test_limit_zero(self, client):
        reply = client.query(
            QueryRequest(dialect="filter", filter={}, limit=0)
        )
        assert reply.page.total == 0
        assert reply.frame.rows == ()

    def test_page_size_zero_is_bad_request(self, client):
        err = client.query(
            QueryRequest(dialect="filter", filter={}, page_size=0)
        )
        assert err.code == ErrorCode.BAD_REQUEST

    def test_cursor_past_end_is_empty_page(self, client):
        first = client.query(ALL_TASKS)
        cursor = Cursor.decode(first.page.next_cursor)
        past_end = Cursor(
            fingerprint=cursor.fingerprint, offset=999, version=cursor.version
        )
        reply = client.query(
            QueryRequest(
                dialect="filter", filter={}, page_size=6,
                cursor=past_end.encode(),
            )
        )
        assert not isinstance(reply, ErrorEnvelope)
        assert reply.page.returned == 0
        assert reply.page.offset == 999
        assert reply.page.next_cursor is None

    def test_garbage_cursor_is_invalid(self, client):
        err = client.query(
            QueryRequest(
                dialect="filter", filter={}, page_size=6, cursor="!!bogus!!"
            )
        )
        assert err.code == ErrorCode.CURSOR_INVALID

    def test_cursor_from_other_query_is_invalid(self, client):
        first = client.query(ALL_TASKS)
        err = client.query(
            QueryRequest(
                dialect="filter",
                filter={"status": "FAILED"},
                page_size=6,
                cursor=first.page.next_cursor,
            )
        )
        assert err.code == ErrorCode.CURSOR_INVALID


class TestStaleness:
    def test_cursor_reuse_after_write_is_stale(self, stack, store):
        service, gateway, client = stack
        first = client.query(ALL_TASKS)
        assert first.page.next_cursor is not None
        # new provenance lands between page reads
        store.upsert(task_doc(99))
        err = client.query(
            QueryRequest(
                dialect="filter", filter={}, page_size=6,
                cursor=first.page.next_cursor,
            )
        )
        assert isinstance(err, ErrorEnvelope)
        assert err.code == ErrorCode.CURSOR_STALE
        assert err.detail["cursor_version"] < err.detail["store_version"]

    def test_restarting_after_stale_sees_new_rows(self, stack, store):
        service, gateway, client = stack
        first = client.query(ALL_TASKS)
        store.upsert(task_doc(99))
        stale = client.query(
            QueryRequest(
                dialect="filter", filter={}, page_size=6,
                cursor=first.page.next_cursor,
            )
        )
        assert stale.code == ErrorCode.CURSOR_STALE
        pages = walk(client, ALL_TASKS)
        assert sum(p.page.returned for p in pages) == 21

    def test_same_version_cursor_stays_valid(self, client):
        first = client.query(ALL_TASKS)
        # reads do not bump the version: the cursor survives any number
        # of interleaved queries
        client.query(QueryRequest(dialect="filter", filter={"used.x": 3}))
        second = client.query(
            QueryRequest(
                dialect="filter", filter={}, page_size=6,
                cursor=first.page.next_cursor,
            )
        )
        assert second.page.offset == 6


class TestForgedCursors:
    def test_negative_offset_cursor_is_invalid(self, client):
        """Cursor tokens are client-forgeable: a negative offset must be
        rejected, never wrap python slicing around the result set."""
        first = client.query(ALL_TASKS)
        good = Cursor.decode(first.page.next_cursor)
        forged = Cursor(
            fingerprint=good.fingerprint, offset=-2, version=good.version
        )
        err = client.query(replace(ALL_TASKS, cursor=forged.encode()))
        assert err.code == ErrorCode.CURSOR_INVALID

    def test_graph_cursor_goes_stale_on_lineage_update(self, stack):
        """Graph cursors pin to the lineage index's applied counter: new
        provenance arriving between pages returns CURSOR_STALE."""
        service, gateway, client = stack
        request = QueryRequest(
            dialect="graph", operation="downstream", task_id="t0", page_size=5
        )
        first = client.query(request)
        assert first.page.next_cursor is not None
        # stream one more task through the broker; the live lineage
        # service applies it and bumps the index's applied counter
        service.capture_context.broker.publish(
            "provenance.task", task_doc(50)
        )
        err = client.query(replace(request, cursor=first.page.next_cursor))
        assert err.code == ErrorCode.CURSOR_STALE
