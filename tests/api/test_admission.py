"""Admission control units: buckets under a controlled clock, bounds."""

from __future__ import annotations

import pytest

from repro.api.admission import ADMITTED, AdmissionController, TokenBucket
from repro.api.schemas import ErrorCode


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_limit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == pytest.approx(1.0)

    def test_refill_is_monotonic_under_frozen_clock(self):
        """A stalled clock accrues nothing: the wait hint never shrinks."""
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take(clock()) == 0.0
        first_wait = bucket.try_take(clock())
        assert first_wait == pytest.approx(0.5)
        for _ in range(5):
            # polls under the frozen clock must not mint tokens
            assert bucket.try_take(clock()) == pytest.approx(first_wait)

    def test_partial_refill_shrinks_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_take(clock())
        clock.now = 0.25
        assert bucket.try_take(clock()) == pytest.approx(0.75)
        clock.now = 1.25
        assert bucket.try_take(clock()) == 0.0

    def test_backwards_clock_never_refills_retroactively(self):
        clock = FakeClock(now=10.0)
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_take(clock())  # empty at t=10
        clock.now = 2.0  # clock jumps back
        assert bucket.try_take(clock()) == pytest.approx(1.0)
        # the watermark moved with the jump: recovering the lost
        # interval does not refill it twice
        clock.now = 2.5
        assert bucket.try_take(clock()) == pytest.approx(0.5)
        clock.now = 3.0
        assert bucket.try_take(clock()) == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.now = 1e6  # eons pass
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admit_release_and_watermark(self):
        controller = AdmissionController(max_concurrency=2, max_queue_depth=1)
        decisions = [controller.admit() for _ in range(3)]
        assert all(d.admitted for d in decisions)
        shed = controller.admit()
        assert not shed.admitted
        assert shed.code == ErrorCode.OVERLOADED
        snapshot = controller.snapshot()
        assert snapshot["in_flight"] == 3
        assert snapshot["queued"] == 1
        assert snapshot["queued_high_watermark"] == 1
        assert snapshot["overloaded"] == 1
        for _ in range(3):
            controller.release()
        assert controller.active == 0
        # the watermark is a high-watermark: it survives the drain
        assert controller.snapshot()["queued_high_watermark"] == 1

    def test_queue_depth_zero_sheds_at_concurrency(self):
        controller = AdmissionController(max_concurrency=1, max_queue_depth=0)
        assert controller.admit().admitted
        assert controller.admit().code == ErrorCode.OVERLOADED

    def test_admitted_is_shared_singleton(self):
        controller = AdmissionController(max_concurrency=4)
        assert controller.admit() is ADMITTED

    def test_per_session_limit_isolates_noisy_session(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_concurrency=64,
            session_rate=1.0,
            session_burst=2.0,
            clock=clock,
        )
        noisy = [
            controller.admit(session="noisy") for _ in range(5)
        ]
        limited = [d for d in noisy if not d.admitted]
        assert len(limited) == 3
        assert all(d.code == ErrorCode.RATE_LIMITED for d in limited)
        assert all(d.retry_after_s and d.retry_after_s > 0 for d in limited)
        # a different session on the same controller is untouched
        assert controller.admit(session="calm").admitted
        assert controller.admit(session="calm").admitted

    def test_per_client_limit(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_concurrency=64, client_rate=1.0, client_burst=1.0, clock=clock
        )
        assert controller.admit(client="a").admitted
        shed = controller.admit(client="a")
        assert shed.code == ErrorCode.RATE_LIMITED
        assert controller.admit(client="b").admitted
        clock.now = 1.0
        assert controller.admit(client="a").admitted

    def test_rate_limit_checked_before_capacity(self):
        """A limited identity sees 429 even when the queue is full: the
        client must learn its own budget, not the server's load."""
        clock = FakeClock()
        controller = AdmissionController(
            max_concurrency=1, max_queue_depth=0,
            client_rate=1.0, client_burst=1.0, clock=clock,
        )
        assert controller.admit(client="a").admitted  # slot taken
        assert controller.admit(client="b").code == ErrorCode.OVERLOADED
        assert controller.admit(client="a").code == ErrorCode.RATE_LIMITED

    def test_drain_rejects_new_and_waits_for_active(self):
        controller = AdmissionController(max_concurrency=4)
        assert controller.admit().admitted
        controller.begin_drain()
        shed = controller.admit()
        assert shed.code == ErrorCode.SERVICE_CLOSED
        assert not controller.wait_idle(timeout=0.05)  # one still active
        controller.release()
        assert controller.wait_idle(timeout=1.0)
        assert controller.snapshot()["drained"] == 1

    def test_bucket_tracking_is_bounded(self):
        controller = AdmissionController(
            max_concurrency=10_000, client_rate=1000.0, max_tracked=8
        )
        for i in range(50):
            controller.admit(client=f"c{i}")
        assert len(controller._clients) <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=1, max_queue_depth=-1)
