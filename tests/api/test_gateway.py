"""ProvenanceGateway: one query surface, three dialects, stable errors."""

from __future__ import annotations

import pytest

from repro.api.schemas import (
    ChatRequest,
    CreateSessionRequest,
    ErrorCode,
    ErrorEnvelope,
    LineageRequest,
    QueryReply,
    QueryRequest,
    SessionInfo,
)


class TestSessions:
    def test_create_and_chat(self, client):
        info = client.create_session("alice")
        assert isinstance(info, SessionInfo)
        assert info.session_id == "alice"
        reply = client.chat("alice", "How many tasks have finished?")
        assert reply.ok
        assert reply.intent == "monitoring_query"
        assert "1" in reply.text or "task" in reply.text.lower()

    def test_auto_named_session(self, client):
        info = client.create_session()
        assert info.session_id.startswith("session-")

    def test_duplicate_session_is_stable_code(self, client):
        client.create_session("bob")
        err = client.create_session("bob")
        assert isinstance(err, ErrorEnvelope)
        assert err.code == ErrorCode.SESSION_EXISTS

    def test_chat_unknown_session(self, client):
        err = client.chat("nobody", "hello")
        assert isinstance(err, ErrorEnvelope)
        assert err.code == ErrorCode.UNKNOWN_SESSION

    def test_chat_after_close_is_service_closed(self, stack):
        service, gateway, client = stack
        client.create_session("alice")
        service.close()
        err = client.create_session("late")
        assert err.code == ErrorCode.SERVICE_CLOSED


class TestFilterDialect:
    def test_basic_filter(self, client):
        reply = client.query(
            QueryRequest(dialect="filter", filter={"status": "FAILED"})
        )
        assert isinstance(reply, QueryReply)
        assert reply.kind == "frame"
        statuses = {row["status"] for row in reply.frame.to_dicts()}
        assert statuses == {"FAILED"}

    def test_sort_and_limit(self, client):
        reply = client.query(
            QueryRequest(
                dialect="filter",
                filter={},
                sort=(("started_at", -1),),
                limit=3,
            )
        )
        starts = [row["started_at"] for row in reply.frame.to_dicts()]
        assert starts == sorted(starts, reverse=True)
        assert len(starts) == 3

    def test_operator_filter(self, client):
        reply = client.query(
            QueryRequest(
                dialect="filter", filter={"used.x": {"$gte": 18}}
            )
        )
        assert {r["task_id"] for r in reply.frame.to_dicts()} == {"t18", "t19"}

    def test_bad_sort_column_is_query_execution(self, client):
        err = client.query(
            QueryRequest(dialect="filter", filter={}, sort=(("nope", 1),))
        )
        assert err.code == ErrorCode.QUERY_EXECUTION


class TestPipelineDialect:
    def test_frame_result(self, client):
        reply = client.query(
            QueryRequest(
                dialect="pipeline",
                code="df[df['status'] == 'FAILED'][['task_id', 'status']]",
            )
        )
        assert reply.kind == "frame"
        assert all(r["status"] == "FAILED" for r in reply.frame.to_dicts())

    def test_scalar_result(self, client):
        reply = client.query(
            QueryRequest(dialect="pipeline", code="df['duration'].mean()")
        )
        assert reply.kind == "scalar"
        assert isinstance(reply.scalar, float)

    def test_list_result(self, client):
        reply = client.query(
            QueryRequest(dialect="pipeline", code="df['status'].unique()")
        )
        assert reply.kind == "scalar"
        assert set(reply.scalar) == {"FINISHED", "FAILED"}

    def test_syntax_error_code(self, client):
        err = client.query(QueryRequest(dialect="pipeline", code="df.!!!"))
        assert err.code == ErrorCode.QUERY_SYNTAX

    def test_execution_error_code(self, client):
        err = client.query(
            QueryRequest(dialect="pipeline", code="df['no_such_column'].mean()")
        )
        assert err.code == ErrorCode.QUERY_EXECUTION

    def test_missing_code(self, client):
        err = client.query(QueryRequest(dialect="pipeline"))
        assert err.code == ErrorCode.BAD_REQUEST

    def test_matches_filter_dialect(self, client):
        """The same question through two dialects gives the same rows."""
        by_filter = client.query(
            QueryRequest(dialect="filter", filter={"status": "FAILED"})
        )
        by_pipeline = client.query(
            QueryRequest(
                dialect="pipeline", code="df[df['status'] == 'FAILED']"
            )
        )
        assert (
            {r["task_id"] for r in by_filter.frame.to_dicts()}
            == {r["task_id"] for r in by_pipeline.frame.to_dicts()}
        )

    def test_repeated_pipeline_hits_shared_cache(self, stack):
        """Pipeline queries share the versioned cache (same key shape as
        the NL database tool), so a repeat answers without re-executing."""
        service, gateway, client = stack
        request = QueryRequest(
            dialect="pipeline", code="df[df['status'] == 'FINISHED']"
        )
        first = client.query(request)
        before = service.query_cache.stats()["hits"]
        second = client.query(request)
        assert second == first
        assert service.query_cache.stats()["hits"] == before + 1


class TestGraphDialect:
    def test_upstream(self, client):
        reply = client.query(
            QueryRequest(dialect="graph", operation="upstream", task_id="t3")
        )
        assert reply.kind == "frame"
        ids = {r["task_id"] for r in reply.frame.to_dicts()}
        assert ids == {"t0", "t1", "t2"}

    def test_depth_limited_downstream(self, client):
        reply = client.query(
            QueryRequest(
                dialect="graph", operation="downstream", task_id="t0", depth=2
            )
        )
        ids = {r["task_id"] for r in reply.frame.to_dicts()}
        assert ids == {"t1", "t2"}

    def test_impact_size_scalar(self, client):
        reply = client.query(
            QueryRequest(dialect="graph", operation="impact_size", task_id="t17")
        )
        assert reply.kind == "scalar"
        assert reply.scalar == 2

    def test_causal_chain(self, client):
        reply = client.query(
            QueryRequest(
                dialect="graph",
                operation="causal_chain",
                task_id="t1",
                target="t4",
            )
        )
        chain = [r["task_id"] for r in reply.frame.to_dicts()]
        assert chain == ["t1", "t2", "t3", "t4"]

    def test_unknown_task_code(self, client):
        err = client.query(
            QueryRequest(dialect="graph", operation="upstream", task_id="zzz")
        )
        assert err.code == ErrorCode.UNKNOWN_TASK

    def test_unknown_operation(self, client):
        err = client.query(
            QueryRequest(dialect="graph", operation="teleport", task_id="t1")
        )
        assert err.code == ErrorCode.BAD_REQUEST

    def test_missing_operation(self, client):
        err = client.query(QueryRequest(dialect="graph"))
        assert err.code == ErrorCode.BAD_REQUEST


class TestDialectValidation:
    def test_unknown_dialect(self, client):
        err = client.query(QueryRequest(dialect="sparql"))
        assert err.code == ErrorCode.UNKNOWN_DIALECT

    def test_sql_dialect_needs_sql_field(self, client):
        err = client.query(QueryRequest(dialect="sql"))
        assert err.code == ErrorCode.BAD_REQUEST

    def test_negative_limit(self, client):
        err = client.query(QueryRequest(dialect="filter", limit=-1))
        assert err.code == ErrorCode.BAD_REQUEST


class TestLineageView:
    def test_both_directions(self, client):
        reply = client.lineage("t2", depth=1)
        assert reply.upstream == ("t1",)
        assert reply.downstream == ("t3",)
        assert reply.node["workflow_id"] == "wf-2"

    def test_unknown_task(self, client):
        err = client.lineage("missing")
        assert err.code == ErrorCode.UNKNOWN_TASK

    def test_bad_direction(self, gateway):
        err = gateway.lineage_view(
            LineageRequest(task_id="t1", direction="sideways")
        )
        assert err.code == ErrorCode.BAD_REQUEST


class TestStats:
    def test_requests_and_errors_accounted(self, stack):
        service, gateway, client = stack
        client.create_session("alice")
        client.chat("alice", "How many tasks have finished?")
        client.query(QueryRequest(dialect="filter", filter={}))
        client.query(QueryRequest(dialect="sparql"))
        stats = client.stats()
        assert stats.requests["chat"] == 1
        assert stats.requests["query"] == 2
        assert stats.requests["sessions"] == 1
        assert stats.errors[ErrorCode.UNKNOWN_DIALECT] == 1
        assert stats.turns_completed == 1
        assert "hit_rate" in stats.query_cache

    def test_serving_stats_mcp_resource_routes_through_gateway(self, stack):
        from repro.agent.mcp.client import MCPClient

        service, gateway, client = stack
        client.query(QueryRequest(dialect="filter", filter={}))
        payload = MCPClient(service.mcp).read_resource("serving-stats")
        assert payload["requests"]["query"] >= 1
        assert payload["type"] == "v1/stats_reply"
        gw_payload = MCPClient(service.mcp).read_resource("gateway-stats")
        assert gw_payload["requests"]["query"] >= 1


class TestNoTracebacks:
    """Whatever the input, the gateway answers with a schema object."""

    @pytest.mark.parametrize(
        "request_obj",
        [
            QueryRequest(dialect=""),
            QueryRequest(dialect="filter", filter={"$bogus_op": 1}),
            QueryRequest(dialect="pipeline", code="x" * 10_000),
            QueryRequest(dialect="graph", operation="", task_id=""),
            QueryRequest(dialect="filter", cursor="garbage"),
        ],
    )
    def test_gateway_never_raises(self, client, request_obj):
        reply = client.query(request_obj)
        assert isinstance(reply, (QueryReply, ErrorEnvelope))
        if isinstance(reply, ErrorEnvelope):
            assert reply.code in ErrorCode.ALL

    def test_facade_chat_rides_gateway(self, store):
        """ProvenanceAgent.chat counts as gateway chat traffic."""
        from repro.agent.agent import ProvenanceAgent
        from repro.capture.context import CaptureContext
        from repro.llm.service import LLMServer
        from repro.provenance.query_api import QueryAPI

        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx, llm=LLMServer(), query_api=QueryAPI(store))
        try:
            ctx.broker.publish_batch("provenance.task", store.all())
            reply = agent.chat("How many tasks have finished?")
            assert reply.ok
            assert agent.gateway.stats().requests["chat"] == 1
        finally:
            agent.close()


class TestForeignDialectFields:
    """Fields from another dialect are rejected, never silently ignored."""

    @pytest.mark.parametrize(
        "request_obj,stray",
        [
            (QueryRequest(dialect="pipeline", code="df", limit=5), "limit"),
            (
                QueryRequest(dialect="pipeline", code="df", filter={"a": 1}),
                "filter",
            ),
            (
                QueryRequest(
                    dialect="filter", filter={}, operation="upstream"
                ),
                "operation",
            ),
            (
                QueryRequest(dialect="filter", filter={}, code="df"),
                "code",
            ),
            (
                QueryRequest(
                    dialect="graph", operation="roots", limit=3
                ),
                "limit",
            ),
            (
                QueryRequest(
                    dialect="graph", operation="roots", sort=(("a", 1),)
                ),
                "sort",
            ),
        ],
    )
    def test_stray_field_is_bad_request(self, client, request_obj, stray):
        err = client.query(request_obj)
        assert err.code == ErrorCode.BAD_REQUEST
        assert stray in err.message

    def test_pagination_fields_apply_everywhere(self, client):
        reply = client.query(
            QueryRequest(dialect="pipeline", code="df[['task_id']]", page_size=4)
        )
        assert reply.page.returned == 4


class TestCsvErrorAccounting:
    def test_not_acceptable_lands_in_gateway_errors(self, stack):
        service, gateway, client = stack
        client.query_csv(QueryRequest(dialect="pipeline", code="len(df)"))
        assert client.stats().errors[ErrorCode.NOT_ACCEPTABLE] == 1
