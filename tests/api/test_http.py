"""HTTP transport: routes, status codes, negotiation, keep-alive."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api.http import GatewayHTTPServer, STATUS_BY_CODE
from repro.api.schemas import ErrorCode, from_json


@pytest.fixture
def server(gateway):
    srv = GatewayHTTPServer(gateway).start()
    yield srv
    srv.stop()


@pytest.fixture
def conn(server):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    yield connection
    connection.close()


def call(conn, method, path, body=None, accept="application/json"):
    headers = {"Accept": accept}
    if body is not None:
        headers["Content-Type"] = "application/json"
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    return response.status, response.getheader("Content-Type"), response.read()


class TestRoutes:
    def test_create_session_and_chat(self, conn):
        status, ctype, body = call(
            conn, "POST", "/v1/sessions", '{"session_id": "alice"}'
        )
        assert status == 200
        assert ctype == "application/json"
        info = from_json(body)
        assert info.session_id == "alice"

        status, _, body = call(
            conn,
            "POST",
            "/v1/sessions/alice/chat",
            '{"message": "How many tasks have finished?"}',
        )
        assert status == 200
        reply = from_json(body)
        assert reply.ok
        assert reply.session_id == "alice"

    def test_query_roundtrip(self, conn):
        status, _, body = call(
            conn,
            "POST",
            "/v1/query",
            '{"dialect": "filter", "filter": {"status": "FAILED"}}',
        )
        assert status == 200
        reply = from_json(body)
        assert reply.kind == "frame"
        assert all(r["status"] == "FAILED" for r in reply.frame.to_dicts())

    def test_lineage_route_with_params(self, conn):
        status, _, body = call(
            conn, "GET", "/v1/lineage/t2?direction=upstream&depth=1"
        )
        assert status == 200
        reply = from_json(body)
        assert reply.upstream == ("t1",)
        assert reply.downstream == ()

    def test_stats_route(self, conn):
        call(conn, "POST", "/v1/query", '{"dialect": "filter"}')
        status, _, body = call(conn, "GET", "/v1/stats")
        assert status == 200
        stats = from_json(body)
        assert stats.requests["query"] >= 1


class TestStatusCodes:
    @pytest.mark.parametrize(
        "method,path,body,expected_code",
        [
            ("POST", "/v1/nope", "{}", ErrorCode.NOT_FOUND),
            ("GET", "/v1/nope", None, ErrorCode.NOT_FOUND),
            ("GET", "/v1/query", None, ErrorCode.METHOD_NOT_ALLOWED),
            ("GET", "/v1/sessions", None, ErrorCode.METHOD_NOT_ALLOWED),
            ("POST", "/v1/stats", "{}", ErrorCode.METHOD_NOT_ALLOWED),
            ("POST", "/v1/lineage/t1", "{}", ErrorCode.METHOD_NOT_ALLOWED),
            ("POST", "/v1/query", "{not json", ErrorCode.MALFORMED_JSON),
            ("POST", "/v1/query", "[]", ErrorCode.SCHEMA_VIOLATION),
            (
                "POST",
                "/v1/query",
                '{"dialect": "filter", "surprise": 1}',
                ErrorCode.SCHEMA_VIOLATION,
            ),
            ("POST", "/v1/query", '{"dialect": "sparql"}', ErrorCode.UNKNOWN_DIALECT),
            (
                "POST",
                "/v1/sessions/ghost/chat",
                '{"message": "hi"}',
                ErrorCode.UNKNOWN_SESSION,
            ),
            (
                "POST",
                "/v1/sessions/ghost/chat",
                '{"message": 7}',
                ErrorCode.SCHEMA_VIOLATION,
            ),
            ("GET", "/v1/lineage/ghost", None, ErrorCode.UNKNOWN_TASK),
            ("GET", "/v1/lineage/t1?depth=x", None, ErrorCode.BAD_REQUEST),
        ],
    )
    def test_error_envelope_and_status(self, conn, method, path, body, expected_code):
        status, ctype, raw = call(conn, method, path, body)
        assert ctype == "application/json"
        envelope = from_json(raw)
        assert envelope.code == expected_code
        assert status == STATUS_BY_CODE[expected_code]

    def test_cursor_stale_maps_to_410(self, conn, store):
        from tests.api.conftest import task_doc

        status, _, raw = call(
            conn, "POST", "/v1/query",
            '{"dialect": "filter", "filter": {}, "page_size": 5}',
        )
        first = from_json(raw)
        store.upsert(task_doc(55))
        status, _, raw = call(
            conn, "POST", "/v1/query",
            json.dumps(
                {
                    "dialect": "filter",
                    "filter": {},
                    "page_size": 5,
                    "cursor": first.page.next_cursor,
                }
            ),
        )
        assert status == 410
        assert from_json(raw).code == ErrorCode.CURSOR_STALE


class TestContentNegotiation:
    def test_csv_for_frames(self, conn):
        status, ctype, body = call(
            conn, "POST", "/v1/query",
            '{"dialect": "filter", "filter": {"status": "FAILED"}}',
            accept="text/csv",
        )
        assert status == 200
        assert ctype == "text/csv"
        lines = body.decode().split("\r\n")
        assert lines[0].startswith("type,task_id,")

    def test_csv_for_scalar_is_406(self, conn):
        status, ctype, body = call(
            conn, "POST", "/v1/query",
            '{"dialect": "pipeline", "code": "len(df)"}',
            accept="text/csv",
        )
        assert status == 406
        assert from_json(body).code == ErrorCode.NOT_ACCEPTABLE

    def test_json_stays_default(self, conn):
        status, ctype, _ = call(
            conn, "POST", "/v1/query", '{"dialect": "filter"}',
            accept="*/*",
        )
        assert status == 200
        assert ctype == "application/json"


class TestKeepAlive:
    def test_many_requests_one_connection(self, conn):
        """HTTP/1.1 keep-alive: the same socket serves a conversation."""
        for i in range(5):
            status, _, body = call(
                conn, "POST", "/v1/query",
                json.dumps({"dialect": "filter", "filter": {"used.x": i}}),
            )
            assert status == 200
            assert from_json(body).page.total == 1
        sock_after = conn.sock
        assert sock_after is not None  # never dropped to reconnect
