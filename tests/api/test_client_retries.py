"""RemoteClient resilience: Retry-After backoff and socket reconnect."""

from __future__ import annotations

import pytest

from repro.api.admission import AdmissionController
from repro.api.aio import AsyncGatewayServer
from repro.api.client import GatewayConnectionError, RemoteClient
from repro.api.http import GatewayHTTPServer
from repro.api.schemas import ErrorCode, ErrorEnvelope


class FrozenClock:
    def __call__(self) -> float:
        return 0.0


@pytest.fixture
def limited_server(gateway):
    """An asyncio server whose frozen-clock bucket allows exactly one
    request per client identity, then 429s with Retry-After: 2."""
    admission = AdmissionController(
        max_concurrency=8,
        client_rate=0.5,  # deficit of 1 token at rate 0.5 -> wait 2 s
        client_burst=1.0,
        clock=FrozenClock(),
    )
    server = AsyncGatewayServer(gateway, admission=admission).start()
    yield server
    server.stop()


class TestRetryAfterBackoff:
    def test_default_client_surfaces_the_429(self, limited_server):
        client = RemoteClient.for_server(limited_server)
        try:
            assert client.stats().requests is not None  # the one token
            envelope = client.stats()
            assert isinstance(envelope, ErrorEnvelope)
            assert envelope.code == ErrorCode.RATE_LIMITED
        finally:
            client.close()

    def test_retries_honor_retry_after(self, limited_server):
        sleeps: list[float] = []
        client = RemoteClient.for_server(
            limited_server, retries=2, sleep=sleeps.append
        )
        try:
            client.stats()  # consumes the only token
            envelope = client.stats()  # retried twice, still limited
            assert isinstance(envelope, ErrorEnvelope)
            assert envelope.code == ErrorCode.RATE_LIMITED
            # the server said Retry-After: 2 (ceil of 2.0 s deficit);
            # the hint dominates the 0.1/0.2 exponential schedule
            assert sleeps == [2.0, 2.0]
        finally:
            client.close()

    def test_backoff_cap_bounds_the_hint(self, limited_server):
        sleeps: list[float] = []
        client = RemoteClient.for_server(
            limited_server, retries=1, backoff_cap_s=0.5, sleep=sleeps.append
        )
        try:
            client.stats()
            client.stats()
            assert sleeps == [0.5]
        finally:
            client.close()

    def test_successful_retry_returns_the_reply(self, gateway):
        """When capacity frees up mid-backoff, the retry wins."""
        admission = AdmissionController(
            max_concurrency=8, client_rate=50.0, client_burst=1.0
        )
        server = AsyncGatewayServer(gateway, admission=admission).start()
        client = RemoteClient.for_server(server, retries=3)
        try:
            client.stats()  # token gone; refills in ~20 ms real time
            reply = client.stats()  # 429 -> sleep(Retry-After=1)... but
            # the real clock refills fast, so the retry succeeds
            assert not isinstance(reply, ErrorEnvelope)
            assert reply.requests["stats"] >= 2
        finally:
            client.close()
            server.stop()

    def test_retries_validation(self):
        with pytest.raises(ValueError):
            RemoteClient("127.0.0.1", 1, retries=-1)


class TestReconnect:
    @pytest.mark.parametrize(
        "server_cls", [GatewayHTTPServer, AsyncGatewayServer]
    )
    def test_stale_keepalive_socket_reconnects_once(self, gateway, server_cls):
        server = server_cls(gateway).start()
        host, port = server.address
        client = RemoteClient(host, port)
        try:
            assert client.stats().requests is not None
            # the server restarts on the same port: the client's pooled
            # socket is now a dead keep-alive connection
            server.stop()
            server = server_cls(gateway, port=port).start()
            reply = client.stats()  # ECONNRESET on reuse -> reconnect
            assert reply.requests is not None
        finally:
            client.close()
            server.stop()

    def test_fresh_connection_failure_raises_immediately(self, gateway):
        server = GatewayHTTPServer(gateway).start()
        host, port = server.address
        server.stop()  # nothing listens here any more
        client = RemoteClient(host, port)
        try:
            with pytest.raises(GatewayConnectionError):
                client.stats()
        finally:
            client.close()
