"""Server lifecycle: startup race, idempotent stop, close-hook wiring.

Regression suite for the start/stop race both transports had to fix:
``start()`` must not return until the server is actually serving (an
immediate connect used to land in the listen backlog of a thread that
had not reached its poll loop), and ``stop()`` must be safe to call
twice, from any thread, including via the ``AgentService.close`` hook.
"""

from __future__ import annotations

import http.client
import threading

import pytest

from repro.api.aio import AsyncGatewayServer
from repro.api.http import GatewayHTTPServer

TRANSPORTS = [GatewayHTTPServer, AsyncGatewayServer]


def _get_stats_status(address) -> int:
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=5)
    try:
        conn.request("GET", "/v1/stats")
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


@pytest.mark.parametrize("server_cls", TRANSPORTS)
class TestLifecycle:
    def test_connect_immediately_after_start(self, gateway, server_cls):
        """The startup race: a connect in the same instant start()
        returns must be served, every time."""
        for _ in range(5):
            server = server_cls(gateway).start()
            try:
                assert _get_stats_status(server.address) == 200
            finally:
                server.stop()

    def test_stop_is_idempotent(self, gateway, server_cls):
        server = server_cls(gateway).start()
        server.stop()
        server.stop()  # second stop: nothing to do, no error
        server.close()  # alias, equally safe

    def test_stop_never_started(self, gateway, server_cls):
        server_cls(gateway).stop()  # no bind happened: a clean no-op

    def test_address_requires_start(self, gateway, server_cls):
        server = server_cls(gateway)
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        server.start()
        try:
            host, port = server.address
            assert port > 0
        finally:
            server.stop()
        with pytest.raises(RuntimeError, match="not started"):
            server.address

    def test_start_is_idempotent_and_restartable(self, gateway, server_cls):
        server = server_cls(gateway).start()
        assert server.start() is server  # second start: same instance
        first = server.address
        assert _get_stats_status(first) == 200
        server.stop()
        server.start()
        try:
            # restart rebinds (possibly a fresh ephemeral port) and serves
            assert _get_stats_status(server.address) == 200
        finally:
            server.stop()

    def test_concurrent_stops_from_many_threads(self, gateway, server_cls):
        server = server_cls(gateway).start()
        errors: list[BaseException] = []

        def stopper():
            try:
                server.stop()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors

    def test_context_manager(self, gateway, server_cls):
        with server_cls(gateway) as server:
            assert _get_stats_status(server.address) == 200
        with pytest.raises(RuntimeError):
            server.address


@pytest.mark.parametrize("server_cls", TRANSPORTS)
def test_service_close_stops_server(stack, server_cls):
    """The close hook: closing the service takes the transport with it."""
    service, gateway, _client = stack
    server = server_cls(gateway).start()
    address = server.address
    assert _get_stats_status(address) == 200
    service.close()
    # the hook already stopped the server: nothing is listening
    with pytest.raises((ConnectionError, OSError)):
        _get_stats_status(address)
    server.stop()  # idempotent after the hook ran
