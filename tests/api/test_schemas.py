"""Schema layer: strict round-tripping, canonical JSON, stable errors.

The acceptance contract: every request/response schema survives
``from_json(to_json(x)) == x`` (hypothesis property tests below), and
malformed payloads raise :class:`SchemaViolation` — which the gateway
maps to :class:`ErrorEnvelope` codes — never anything else.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import schemas as s
from repro.api.schemas import (
    ChatReply,
    ChatRequest,
    CreateSessionRequest,
    Cursor,
    ErrorCode,
    ErrorEnvelope,
    FramePayload,
    LineageReply,
    LineageRequest,
    Page,
    QueryReply,
    QueryRequest,
    SchemaViolation,
    SessionInfo,
    StatsReply,
    from_json,
    to_json,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=24),
)

plain = st.one_of(
    scalars,
    st.lists(scalars, max_size=3),
    st.dictionaries(st.text(max_size=8), scalars, max_size=3),
)

json_objects = st.dictionaries(st.text(max_size=8), plain, max_size=4)
opt_text = st.none() | st.text(max_size=24)
opt_int = st.none() | st.integers(min_value=0, max_value=10**6)


@st.composite
def frames(draw):
    columns = draw(
        st.lists(st.text(max_size=10), max_size=4, unique=True)
    )
    n_rows = draw(st.integers(min_value=0, max_value=4)) if columns else 0
    rows = tuple(
        tuple(draw(plain) for _ in columns) for _ in range(n_rows)
    )
    return FramePayload(columns=tuple(columns), rows=rows)


@st.composite
def pages(draw):
    return Page(
        offset=draw(st.integers(min_value=0, max_value=10**6)),
        total=draw(st.integers(min_value=0, max_value=10**6)),
        returned=draw(st.integers(min_value=0, max_value=10**6)),
        next_cursor=draw(opt_text),
    )


@st.composite
def query_requests(draw):
    sort = draw(
        st.none()
        | st.lists(
            st.tuples(st.text(max_size=10), st.sampled_from([1, -1])),
            max_size=3,
        ).map(tuple)
    )
    return QueryRequest(
        dialect=draw(st.sampled_from(["filter", "pipeline", "graph", "weird"])),
        filter=draw(st.none() | json_objects),
        sort=sort,
        limit=draw(opt_int),
        code=draw(opt_text),
        operation=draw(opt_text),
        task_id=draw(opt_text),
        target=draw(opt_text),
        depth=draw(opt_int),
        workflow_id=draw(opt_text),
        page_size=draw(opt_int),
        cursor=draw(opt_text),
    )


@st.composite
def query_replies(draw):
    return QueryReply(
        dialect=draw(st.text(max_size=10)),
        kind=draw(st.sampled_from(["frame", "scalar"])),
        summary=draw(opt_text),
        frame=draw(st.none() | frames()),
        scalar=draw(plain),
        records=draw(st.none() | st.lists(json_objects, max_size=3).map(tuple)),
        page=draw(st.none() | pages()),
    )


@st.composite
def chat_replies(draw):
    return ChatReply(
        session_id=draw(st.text(max_size=16)),
        text=draw(st.text(max_size=64)),
        intent=draw(st.text(max_size=16)),
        ok=draw(st.booleans()),
        code=draw(opt_text),
        error=draw(opt_text),
        chart=draw(opt_text),
        table=draw(st.none() | frames()),
    )


@st.composite
def stats_replies(draw):
    str_ints = st.dictionaries(
        st.text(max_size=8), st.integers(min_value=0, max_value=10**9), max_size=3
    )
    return StatsReply(
        sessions=draw(st.integers(min_value=0, max_value=10**6)),
        turns_completed=draw(st.integers(min_value=0, max_value=10**6)),
        requests=draw(str_ints),
        errors=draw(str_ints),
        query_cache=draw(json_objects),
        llm=draw(json_objects),
    )


SCHEMA_STRATEGIES = [
    st.builds(CreateSessionRequest, session_id=opt_text, model=opt_text),
    st.builds(
        SessionInfo,
        session_id=st.text(max_size=16),
        model=st.text(max_size=16),
        turn_count=st.integers(min_value=0, max_value=10**6),
    ),
    st.builds(
        ChatRequest, session_id=st.text(max_size=16), message=st.text(max_size=64)
    ),
    chat_replies(),
    query_requests(),
    query_replies(),
    st.builds(
        LineageRequest,
        task_id=st.text(max_size=16),
        direction=st.sampled_from(["upstream", "downstream", "both"]),
        depth=opt_int,
    ),
    st.builds(
        LineageReply,
        task_id=st.text(max_size=16),
        upstream=st.lists(st.text(max_size=10), max_size=4).map(tuple),
        downstream=st.lists(st.text(max_size=10), max_size=4).map(tuple),
        node=st.none() | json_objects,
    ),
    stats_replies(),
    st.builds(
        ErrorEnvelope,
        code=st.sampled_from(ErrorCode.ALL),
        message=st.text(max_size=64),
        detail=st.none() | json_objects,
    ),
    frames(),
    pages(),
]

any_schema = st.one_of(SCHEMA_STRATEGIES)


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(obj=any_schema)
    def test_json_round_trip_is_identity(self, obj):
        assert from_json(to_json(obj)) == obj

    @settings(max_examples=100, deadline=None)
    @given(obj=any_schema)
    def test_canonical_json_is_deterministic(self, obj):
        text = to_json(obj)
        assert to_json(from_json(text)) == text
        # canonical form: sorted keys, no whitespace
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    @settings(max_examples=100, deadline=None)
    @given(obj=any_schema)
    def test_type_tag_dispatches(self, obj):
        data = json.loads(to_json(obj))
        assert data["type"].startswith("v1/")
        assert isinstance(from_json(to_json(obj)), type(obj))

    @settings(max_examples=100, deadline=None)
    @given(
        fingerprint=st.text(max_size=32),
        offset=st.integers(min_value=0, max_value=10**9),
        version=st.integers(min_value=0, max_value=10**12),
    )
    def test_cursor_round_trip(self, fingerprint, offset, version):
        cursor = Cursor(fingerprint=fingerprint, offset=offset, version=version)
        assert Cursor.decode(cursor.encode()) == cursor


# ---------------------------------------------------------------------------
# malformed payloads: SchemaViolation, never anything else
# ---------------------------------------------------------------------------


class TestMalformed:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not json",
            "[1, 2, 3]",
            '"just a string"',
            "{}",
            '{"type": "v1/nope"}',
            '{"type": 7}',
            '{"type": "v1/chat_request"}',  # missing required fields
            '{"type": "v1/chat_request", "session_id": 5, "message": "hi"}',
            '{"type": "v1/chat_request", "session_id": "s", "message": "m", '
            '"extra": 1}',
            '{"type": "v1/query_request"}',  # dialect missing
            '{"type": "v1/query_request", "dialect": "filter", "sort": "x"}',
            '{"type": "v1/query_request", "dialect": "filter", '
            '"sort": [["f", 2]]}',
            '{"type": "v1/query_request", "dialect": "filter", "limit": true}',
            '{"type": "v1/frame", "columns": ["a"], "rows": [[1, 2]]}',
            '{"type": "v1/frame", "columns": "a", "rows": []}',
            '{"type": "v1/error", "code": "NO_SUCH_CODE", "message": "m"}',
            '{"type": "v1/error", "code": "INTERNAL"}',  # message missing
            '{"type": "v1/stats_reply", "sessions": "many", '
            '"turns_completed": 0}',
            '{"type": "v1/page", "offset": 0, "total": 0, "returned": 0.5}',
        ],
    )
    def test_bad_payload_raises_schema_violation(self, text):
        with pytest.raises(SchemaViolation):
            from_json(text)

    def test_expected_type_mismatch(self):
        text = to_json(ChatRequest(session_id="s", message="m"))
        with pytest.raises(SchemaViolation):
            from_json(text, QueryRequest)

    def test_tagless_payload_with_expected_type(self):
        # route-implied parsing: the body of a typed endpoint may omit the tag
        req = from_json('{"dialect": "filter"}', QueryRequest)
        assert req == QueryRequest(dialect="filter")

    def test_tagless_payload_without_expected_type(self):
        with pytest.raises(SchemaViolation):
            from_json('{"dialect": "filter"}')

    @pytest.mark.parametrize("token", ["", "!!!", "eyJ4IjoxfQ", "abc=="])
    def test_bad_cursor_tokens(self, token):
        with pytest.raises(SchemaViolation):
            Cursor.decode(token)

    def test_booleans_are_not_integers(self):
        with pytest.raises(SchemaViolation):
            from_json(
                '{"type": "v1/session_info", "session_id": "s", '
                '"model": "m", "turn_count": true}'
            )


# ---------------------------------------------------------------------------
# frame payloads
# ---------------------------------------------------------------------------


class TestFramePayload:
    def test_from_frame_makes_values_plain(self):
        from repro.dataframe import DataFrame

        frame = DataFrame.from_records(
            [
                {"a": 1, "b": 1.5, "c": "x", "d": None},
                {"a": 2, "b": None, "c": "y", "d": None},
            ]
        )
        payload = FramePayload.from_frame(frame)
        assert payload.columns == ("a", "b", "c", "d")
        # NaN (the frame's missing-float marker) maps to null on the wire
        assert payload.rows[1][1] is None
        text = to_json(payload)
        assert from_json(text) == payload

    def test_to_dicts_matches_frame(self):
        from repro.dataframe import DataFrame

        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        payload = FramePayload.from_frame(DataFrame.from_records(records))
        assert payload.to_dicts() == records

    def test_csv_rendering_quotes_specials(self):
        payload = FramePayload(
            columns=("name", "note"),
            rows=(("plain", 'say "hi"'), ("with,comma", None)),
        )
        lines = payload.to_csv().split("\r\n")
        assert lines[0] == "name,note"
        assert lines[1] == 'plain,"say ""hi"""'
        assert lines[2] == '"with,comma",'

    def test_csv_of_query_reply(self):
        reply = QueryReply(
            dialect="filter",
            kind="frame",
            frame=FramePayload(columns=("a",), rows=((1,), (2,))),
        )
        content_type, text = s.render_query_csv(reply)
        assert content_type == "text/csv"
        assert text == "a\r\n1\r\n2\r\n"

    def test_csv_of_scalar_reply_is_not_acceptable(self):
        reply = QueryReply(dialect="pipeline", kind="scalar", scalar=4)
        content_type, text = s.render_query_csv(reply)
        assert content_type == "application/json"
        envelope = from_json(text)
        assert envelope.code == ErrorCode.NOT_ACCEPTABLE
