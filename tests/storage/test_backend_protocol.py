"""The StorageBackend seam: conformance, compat aliases, drop-in consumers."""

from __future__ import annotations

import pytest

from repro.messaging.broker import InProcessBroker
from repro.provenance.keeper import ProvenanceKeeper, TASK_TOPIC
from repro.provenance.query_api import QueryAPI
from repro.storage import (
    ProvenanceDatabase,
    ShardedProvenanceStore,
    StorageBackend,
)


def task_payload(task_id="t1", workflow_id="w1", **overrides):
    doc = {
        "task_id": task_id,
        "campaign_id": "c1",
        "workflow_id": workflow_id,
        "activity_id": "square",
        "used": {"x": 3},
        "generated": {"y": 9},
        "started_at": 1.0,
        "ended_at": 2.0,
        "status": "FINISHED",
        "type": "task",
    }
    doc.update(overrides)
    return doc


class TestProtocolConformance:
    def test_single_node_conforms(self):
        assert isinstance(ProvenanceDatabase(), StorageBackend)

    def test_sharded_conforms(self):
        assert isinstance(ShardedProvenanceStore(4), StorageBackend)

    def test_non_backend_rejected(self):
        assert not isinstance(object(), StorageBackend)

    def test_every_protocol_method_present_on_both(self):
        for method in (
            "insert",
            "insert_many",
            "upsert",
            "upsert_many",
            "find",
            "find_one",
            "count",
            "distinct",
            "field_counts",
            "aggregate",
            "explain",
            "all",
            "clear",
        ):
            assert callable(getattr(ProvenanceDatabase(), method))
            assert callable(getattr(ShardedProvenanceStore(2), method))


class TestCompatAliases:
    def test_provenance_database_module_still_imports(self):
        from repro.provenance.database import (
            DEFAULT_EQUALITY_INDEX_FIELDS,
            DEFAULT_RANGE_INDEX_FIELDS,
            ProvenanceDatabase as Legacy,
            get_path,
            merge_upsert_doc,
        )

        assert Legacy is ProvenanceDatabase
        assert get_path({"a": {"b": 1}}, "a.b") == 1
        assert merge_upsert_doc({"x": 1}, {"x": None})["x"] == 1
        assert "task_id" in DEFAULT_EQUALITY_INDEX_FIELDS
        assert "duration" in DEFAULT_RANGE_INDEX_FIELDS

    def test_top_level_exports(self):
        import repro

        assert repro.ShardedProvenanceStore is ShardedProvenanceStore
        assert repro.StorageBackend is StorageBackend


@pytest.fixture(params=["single", "sharded"])
def backend(request):
    if request.param == "single":
        return ProvenanceDatabase()
    return ShardedProvenanceStore(3)


class TestDropInConsumers:
    def test_keeper_ingests_into_any_backend(self, backend):
        broker = InProcessBroker()
        keeper = ProvenanceKeeper(broker, backend)
        keeper.start()
        broker.publish_batch(
            TASK_TOPIC,
            [task_payload(f"t{i}", workflow_id=f"w{i % 3}") for i in range(9)],
        )
        broker.publish(TASK_TOPIC, task_payload("t0", status="FAILED"))
        assert keeper.processed_count == 10
        assert len(backend) == 9  # t0 re-delivery collapsed
        assert backend.find_one({"task_id": "t0"})["status"] == "FAILED"

    def test_query_api_over_any_backend(self, backend):
        backend.upsert_many(
            [task_payload(f"t{i}", workflow_id=f"w{i % 2}") for i in range(6)]
        )
        api = QueryAPI(backend)
        assert {t["task_id"] for t in api.tasks()} == {f"t{i}" for i in range(6)}
        assert set(api.workflows()) == {"w0", "w1"}
        assert api.status_counts() == {"FINISHED": 6}
        assert api.counts("workflow_id") == {"w0": 3, "w1": 3}
        assert api.task("t3")["workflow_id"] == "w1"
        # traversal views build from the same find() surface
        assert api.graph().is_acyclic()

    def test_explain_reports_a_plan_everywhere(self, backend):
        backend.upsert_many([task_payload(f"t{i}") for i in range(4)])
        plan = QueryAPI(backend).explain({"workflow_id": "w1"})
        assert plan["total_docs"] == 4
        assert plan["candidates"] == 4
        if isinstance(backend, ShardedProvenanceStore):
            assert plan["backend"] == "sharded"
            assert plan["strategy"] in ("targeted", "scatter")
            assert plan["shards"]
        else:
            assert plan["strategy"] == "index"


class TestDurableConformance:
    def test_durable_conforms(self, tmp_path):
        from repro.storage import DurableStore

        store = DurableStore(str(tmp_path / "store"))
        try:
            assert isinstance(store, StorageBackend)
        finally:
            store.close()

    def test_durable_sharded_conforms(self, tmp_path):
        from repro.storage import open_durable_sharded

        store = open_durable_sharded(str(tmp_path / "store"), 3)
        try:
            assert isinstance(store, StorageBackend)
        finally:
            store.close()


class TestVersionContract:
    """The version() persistence clause every backend must honour.

    Monotonic within a process for every backend; for persistent
    backends additionally monotonic *across* reopen and never reset to
    zero — the property QueryCache keys and gateway cursors lean on.
    """

    def _all_backends(self, tmp_path):
        from repro.storage import DurableStore, open_durable_sharded

        return [
            ProvenanceDatabase(),
            ShardedProvenanceStore(3),
            DurableStore(str(tmp_path / "durable")),
            open_durable_sharded(str(tmp_path / "durable-sharded"), 2),
        ]

    def test_every_write_bumps_every_backend(self, tmp_path):
        for backend in self._all_backends(tmp_path):
            seen = [backend.version()]
            backend.upsert(task_payload("t1"))
            seen.append(backend.version())
            backend.upsert(task_payload("t1", status="FAILED"))  # re-delivery
            seen.append(backend.version())
            backend.insert_many([{"type": "note"}])
            seen.append(backend.version())
            backend.clear()  # a wipe is a write: cached results go stale
            seen.append(backend.version())
            assert seen == sorted(seen) and len(set(seen)) == len(seen), backend
            if hasattr(backend, "close"):
                backend.close()

    def test_reads_never_bump(self, tmp_path):
        for backend in self._all_backends(tmp_path):
            backend.upsert_many([task_payload(f"t{i}") for i in range(4)])
            v = backend.version()
            backend.find({"workflow_id": "w1"}, sort=[("started_at", 1)])
            backend.count({})
            backend.distinct("workflow_id")
            backend.aggregate([{"$count": "n"}])
            backend.explain({})
            assert backend.version() == v, backend
            if hasattr(backend, "close"):
                backend.close()

    def test_durable_version_survives_reopen_never_resets(self, tmp_path):
        from repro.storage import DurableStore

        path = str(tmp_path / "store")
        store = DurableStore(path)
        assert store.version() == 0  # brand-new directory only
        for i in range(5):
            store.upsert(task_payload(f"t{i}"))
        v_pre = store.version()
        store.close()
        observed = [v_pre]
        for _ in range(3):  # every reopen stays past all prior observations
            store = DurableStore(path)
            assert store.version() > observed[-1]
            observed.append(store.version())
            store.upsert(task_payload("t9"))
            observed.append(store.version())
            store.close()
        assert observed == sorted(observed)

    def test_durable_sharded_version_survives_reopen(self, tmp_path):
        from repro.storage import open_durable_sharded

        path = str(tmp_path / "store")
        store = open_durable_sharded(path, 2)
        store.upsert_many([task_payload(f"t{i}", workflow_id=f"w{i % 3}") for i in range(8)])
        v_pre = store.version()
        store.close()
        store = open_durable_sharded(path, 2)
        try:
            assert store.version() > v_pre
            assert store.version() > 0
        finally:
            store.close()
