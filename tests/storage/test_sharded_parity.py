"""Randomized parity: ShardedProvenanceStore == single-node reference.

The sharded store's contract is that routing, per-shard execution, and
coordinator merging are pure accelerators: for any stream of upserts
(including re-deliveries that change ``workflow_id``) and any filter /
sort / limit / aggregation the store supports, results are *identical*
to a single :class:`ProvenanceDatabase` fed the same stream.  Hypothesis
drives randomized streams and query shapes to hammer that invariant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage import ProvenanceDatabase, ShardedProvenanceStore

_WORKFLOWS = ["w0", "w1", "w2", "w3", "w4", None]
_STATUSES = ["FINISHED", "FAILED", "RUNNING", None]
_TASK_IDS = [f"t{i}" for i in range(12)]


@st.composite
def doc_streams(draw):
    n = draw(st.integers(1, 30))
    docs = []
    for _ in range(n):
        doc = {
            "type": "task",
            "task_id": draw(st.sampled_from(_TASK_IDS)),
            "workflow_id": draw(st.sampled_from(_WORKFLOWS)),
            "status": draw(st.sampled_from(_STATUSES)),
            "activity_id": draw(st.sampled_from(["a", "b", None])),
            "started_at": draw(
                st.one_of(
                    st.none(),
                    st.integers(0, 50),
                    st.floats(0, 50, allow_nan=False),
                    st.sampled_from(["early", "late"]),  # mixed-type sorts
                )
            ),
            "duration": draw(st.one_of(st.none(), st.floats(0, 9, allow_nan=False))),
            "generated": {"y": draw(st.integers(0, 5))},
        }
        if doc["workflow_id"] is None:
            del doc["workflow_id"]  # field genuinely absent, not null
        docs.append(doc)
    return docs


_filters = st.sampled_from(
    [
        {},
        {"workflow_id": "w1"},
        {"workflow_id": "w-none"},
        {"workflow_id": {"$in": ["w0", "w3"]}},
        {"workflow_id": {"$in": []}},
        {"status": "FINISHED"},
        {"workflow_id": "w2", "status": {"$ne": "FAILED"}},
        {"$or": [{"workflow_id": "w0"}, {"workflow_id": "w4"}]},
        {"$or": [{"workflow_id": "w1"}, {"status": "FAILED"}]},
        {"$and": [{"workflow_id": {"$in": ["w0", "w1", "w2"]}}, {"duration": {"$gt": 2.0}}]},
        {"started_at": {"$gte": 10, "$lt": 40}},
        {"workflow_id": {"$exists": True}},
        {"task_id": {"$regex": "t[0-3]$"}},
    ]
)

_sorts = st.sampled_from(
    [
        None,
        [("started_at", 1)],
        [("started_at", -1)],
        [("workflow_id", 1), ("started_at", -1)],
        [("duration", 1), ("task_id", 1)],
    ]
)

_limits = st.sampled_from([None, 0, 1, 3, 100])


def _mirror(stream, num_shards):
    single = ProvenanceDatabase()
    sharded = ShardedProvenanceStore(num_shards)
    for doc in stream:
        single.upsert(doc)
        sharded.upsert(doc)
    return single, sharded


@settings(max_examples=120, deadline=None)
@given(
    stream=doc_streams(),
    num_shards=st.sampled_from([1, 2, 4]),
    filt=_filters,
    sort=_sorts,
    limit=_limits,
)
def test_find_parity(stream, num_shards, filt, sort, limit):
    single, sharded = _mirror(stream, num_shards)
    assert sharded.find(filt, sort=sort, limit=limit) == single.find(
        filt, sort=sort, limit=limit
    )


@settings(max_examples=60, deadline=None)
@given(stream=doc_streams(), num_shards=st.sampled_from([2, 4]), filt=_filters)
def test_count_and_tallies_parity(stream, num_shards, filt):
    single, sharded = _mirror(stream, num_shards)
    assert sharded.count(filt) == single.count(filt)
    assert set(sharded.distinct("workflow_id", filt)) == set(
        single.distinct("workflow_id", filt)
    )
    assert sharded.field_counts("status", filt) == single.field_counts(
        "status", filt
    )


@settings(max_examples=60, deadline=None)
@given(
    stream=doc_streams(),
    num_shards=st.sampled_from([2, 4]),
    filt=_filters,
)
def test_aggregate_parity(stream, num_shards, filt):
    single, sharded = _mirror(stream, num_shards)
    pipeline = [
        {"$match": filt},
        {"$group": {"_id": "$workflow_id", "n": {"$sum": 1}, "avg": {"$avg": "$duration"}, "top": {"$max": "$generated.y"}}},
        {"$sort": {"n": -1}},
        {"$limit": 4},
    ]
    assert sharded.aggregate(pipeline) == single.aggregate(pipeline)
    assert sharded.aggregate([{"$count": "total"}]) == single.aggregate(
        [{"$count": "total"}]
    )


@settings(max_examples=60, deadline=None)
@given(stream=doc_streams(), num_shards=st.sampled_from([2, 4]))
def test_explain_candidates_cover_matches(stream, num_shards):
    """Routing must never prune a shard that holds a match."""
    single, sharded = _mirror(stream, num_shards)
    for wf in ("w0", "w1", "w2", "w3", "w4"):
        filt = {"workflow_id": wf}
        plan = sharded.explain(filt)
        assert plan["candidates"] >= single.count(filt)
        assert sharded.find(filt) == single.find(filt)
