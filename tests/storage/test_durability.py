"""Crash-injection matrix: recovery == the acknowledged prefix, always.

The durable store's contract is behavioural, so it is proven by
simulated kills rather than asserted: every filesystem mutation the
store performs (record appends — including *partial* appends that tear
a record mid-bytes — segment creation, snapshot rename, segment
deletion) is a crash point, and for **every** one of them recovery must
yield a store whose query results are parity-identical to an in-memory
reference holding exactly the acknowledged op prefix.

Mechanics: a recording :class:`FileOps` first replays the scripted op
sequence uncrashed and logs every mutation event.  The matrix then
re-runs the sequence once per crash point with a fault-injecting
subclass that performs mutations verbatim until the chosen event, where
it either refuses the operation outright or writes only a prefix of the
bytes — and raises :class:`SimulatedCrash` either way.  The op that was
in flight was never acknowledged, so recovery may legitimately surface
it (its bytes may have fully landed before the simulated kill) or drop
it (torn) — but never half-apply it, never lose an *acknowledged* op,
and never resurrect a torn one.

The scripted sequence is arranged (tiny segments, aggressive snapshot
cadence) so the event stream necessarily contains segment rotations,
snapshot writes, the atomic snapshot rename, and post-snapshot segment
deletions — the "crash mid-rotation" and "partial snapshot" cases fall
out of the same matrix instead of needing bespoke scenarios.
"""

from __future__ import annotations

import os
from typing import Any, BinaryIO

import pytest

from repro.storage import DurableStore, ProvenanceDatabase
from repro.storage.durable import FileOps


class SimulatedCrash(Exception):
    """The injected kill; escapes the store and aborts the run."""


# ---------------------------------------------------------------------------
# fault-injecting FileOps
# ---------------------------------------------------------------------------


class RecordingOps(FileOps):
    """Logs every mutation event: ("write", nbytes) / ("create", path) / ..."""

    def __init__(self) -> None:
        self.events: list[tuple[str, Any]] = []

    def open_append(self, path: str) -> BinaryIO:
        self.events.append(("append", os.path.basename(path)))
        return _TapFile(super().open_append(path), self)

    def open_create(self, path: str) -> BinaryIO:
        self.events.append(("create", os.path.basename(path)))
        return _TapFile(super().open_create(path), self)

    def replace(self, src: str, dst: str) -> None:
        self.events.append(("replace", os.path.basename(dst)))
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        self.events.append(("remove", os.path.basename(path)))
        super().remove(path)

    def on_write(self, n: int) -> None:
        self.events.append(("write", n))


class _TapFile:
    """File proxy reporting write sizes back to its ops object."""

    def __init__(self, real: BinaryIO, ops: "RecordingOps") -> None:
        self._real = real
        self._ops = ops

    def write(self, data: bytes) -> int:
        self._ops.on_write(len(data))
        return self._real.write(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)


class CrashingOps(FileOps):
    """Performs mutations verbatim until event ``crash_at``, then kills.

    ``partial_bytes`` applies only when the fatal event is a write: that
    many bytes land before the kill, modelling a torn record (0 bytes,
    1 byte, half a record, all-but-one — the matrix sweeps them).  For
    non-write events the operation simply never happens, modelling a
    kill between syscalls.
    """

    def __init__(self, crash_at: int, partial_bytes: int | None = None) -> None:
        self._countdown = crash_at
        self._partial = partial_bytes

    def _tick(self) -> None:
        if self._countdown <= 0:
            raise SimulatedCrash(f"injected kill (partial={self._partial})")
        self._countdown -= 1

    def open_append(self, path: str) -> BinaryIO:
        self._tick()
        return _CrashFile(super().open_append(path), self)

    def open_create(self, path: str) -> BinaryIO:
        self._tick()
        return _CrashFile(super().open_create(path), self)

    def replace(self, src: str, dst: str) -> None:
        self._tick()
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        self._tick()
        super().remove(path)

    def on_write(self, file: BinaryIO, data: bytes) -> bytes | None:
        """Full data to land, or None when this write is the kill."""
        if self._countdown <= 0:
            if self._partial:
                file.write(data[: self._partial])
            return None
        self._countdown -= 1
        return data


class _CrashFile:
    def __init__(self, real: BinaryIO, ops: "CrashingOps") -> None:
        self._real = real
        self._ops = ops

    def write(self, data: bytes) -> int:
        allowed = self._ops.on_write(self._real, data)
        if allowed is None:
            raise SimulatedCrash("injected kill mid-write")
        return self._real.write(allowed)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)


# ---------------------------------------------------------------------------
# the scripted op sequence
# ---------------------------------------------------------------------------


def _doc(i: int, **extra: Any) -> dict[str, Any]:
    return dict(
        {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % 3}",
            "activity_id": f"a{i % 2}",
            "status": "RUNNING",
            "started_at": 100.0 + i,
            "used": {"x": i},
            "generated": {},
        },
        **extra,
    )


def _script() -> list[tuple[str, Any]]:
    """Upserts, lifecycle re-deliveries, batches, inserts, and a clear.

    Small but adversarial: re-deliveries exercise the merge path (a
    recovered store must merge, not duplicate), the late ``clear``
    proves a logged wipe replays, and the tail writes after it prove
    the log keeps working past one.
    """
    ops: list[tuple[str, Any]] = []
    for i in range(6):
        ops.append(("upsert", _doc(i)))
    ops.append(
        (
            "upsert_many",
            [
                _doc(i, status="FINISHED", ended_at=200.0 + i, duration=2.0)
                for i in range(0, 6, 2)
            ],
        )
    )
    ops.append(("insert", {"type": "note", "msg": "keyless-a"}))
    ops.append(("upsert", _doc(6)))
    ops.append(("insert_many", [{"type": "note", "msg": f"k{i}"} for i in range(3)]))
    ops.append(("upsert", _doc(1, status="FAILED", workflow_id="wf-moved")))
    for i in range(7, 10):
        ops.append(("upsert", _doc(i)))
    ops.append(("clear", None))
    for i in range(10, 14):
        ops.append(("upsert", _doc(i)))
    ops.append(
        ("upsert_many", [_doc(i, status="FINISHED") for i in range(10, 14)])
    )
    return ops


def _apply_op(store: Any, op: tuple[str, Any]) -> None:
    kind, arg = op
    if kind == "upsert":
        store.upsert(arg)
    elif kind == "upsert_many":
        store.upsert_many(arg)
    elif kind == "insert":
        store.insert(arg)
    elif kind == "insert_many":
        store.insert_many(arg)
    else:
        store.clear()


def _reference(ops: list[tuple[str, Any]]) -> ProvenanceDatabase:
    ref = ProvenanceDatabase()
    for op in ops:
        _apply_op(ref, op)
    return ref


#: store geometry: segments rotate every ~600 bytes and a snapshot runs
#: every 7 ops, so the scripted run crosses several rotations and at
#: least two full snapshot+compaction cycles
_GEOMETRY = dict(segment_max_bytes=1024, snapshot_every_ops=7, fsync="never")


def _run_until_crash(
    path: str, ops: list[tuple[str, Any]], file_ops: FileOps
) -> list[tuple[str, Any]]:
    """Apply ops until the injected kill; returns the acknowledged ones."""
    acked: list[tuple[str, Any]] = []
    try:
        store = DurableStore(path, file_ops=file_ops, **_GEOMETRY)
    except SimulatedCrash:
        return acked
    try:
        for op in ops:
            _apply_op(store, op)
            acked.append(op)
    except SimulatedCrash:
        pass
    return acked


def _assert_parity(recovered: DurableStore, reference: ProvenanceDatabase) -> None:
    """Query-level equivalence, not just document-count equivalence."""
    assert recovered.find({}) == reference.find({})
    assert recovered.find(
        {"status": "FINISHED"}, sort=[("started_at", -1)], limit=5
    ) == reference.find({"status": "FINISHED"}, sort=[("started_at", -1)], limit=5)
    assert recovered.count({"workflow_id": "wf-1"}) == reference.count(
        {"workflow_id": "wf-1"}
    )
    assert recovered.distinct("workflow_id") == reference.distinct("workflow_id")
    pipeline = [
        {"$match": {"type": "task"}},
        {"$group": {"_id": "$status", "n": {"$sum": 1}}},
        {"$sort": {"n": -1}},
    ]
    assert recovered.aggregate(pipeline) == reference.aggregate(pipeline)


def _crash_points() -> list[tuple[int, int | None]]:
    """Every mutation event, with sub-write tear offsets for writes."""
    recorder = RecordingOps()
    tmp_ops = _script()
    import tempfile, shutil

    tmp = tempfile.mkdtemp(prefix="durable-record-")
    try:
        store = DurableStore(tmp, file_ops=recorder, **_GEOMETRY)
        for op in tmp_ops:
            _apply_op(store, op)
        store.close()
    finally:
        shutil.rmtree(tmp)
    points: list[tuple[int, int | None]] = []
    for idx, (kind, detail) in enumerate(recorder.events):
        points.append((idx, None))  # kill just before the event
        if kind == "write":
            size = int(detail)
            for cut in {1, size // 2, size - 1}:
                if 0 < cut < size:
                    points.append((idx, cut))  # kill mid-write: torn bytes
    return points


_POINTS = _crash_points()


def test_matrix_covers_rotation_and_snapshot_machinery():
    """The geometry really produces the events the matrix must cover."""
    recorder = RecordingOps()
    import tempfile, shutil

    tmp = tempfile.mkdtemp(prefix="durable-events-")
    try:
        store = DurableStore(tmp, file_ops=recorder, **_GEOMETRY)
        for op in _script():
            _apply_op(store, op)
        store.close()
    finally:
        shutil.rmtree(tmp)
    kinds = {kind for kind, _ in recorder.events}
    assert kinds == {"append", "create", "write", "replace", "remove"}
    renames = [d for k, d in recorder.events if k == "replace"]
    assert any(d.endswith(".snap") for d in renames), "no snapshot in script"
    creates = [d for k, d in recorder.events if k == "create"]
    assert sum(d.endswith(".log") for d in creates) >= 2, "no rotation in script"
    assert len(_POINTS) > 100, "matrix unexpectedly small"


@pytest.mark.parametrize("crash_at,partial", _POINTS)
def test_recovery_after_kill_at_every_write_boundary(tmp_path, crash_at, partial):
    path = str(tmp_path / "store")
    ops = _script()
    acked = _run_until_crash(path, ops, CrashingOps(crash_at, partial))
    assert len(acked) < len(ops), "crash point beyond the scripted run"

    recovered = DurableStore(path)  # plain FileOps: recovery is never faulty
    try:
        acked_ref = _reference(acked)
        if recovered.find({}) == acked_ref.find({}):
            _assert_parity(recovered, acked_ref)
        else:
            # the in-flight op's bytes may have fully landed before the
            # kill (e.g. the crash hit the snapshot that followed it) —
            # it was unacknowledged, so surfacing it whole is legal;
            # surfacing anything else is not
            in_flight_ref = _reference(acked + ops[len(acked) : len(acked) + 1])
            _assert_parity(recovered, in_flight_ref)

        # an acknowledged write is never lost: versions keep moving
        # forward, and the store still accepts writes
        post = _doc(99, status="POST-RECOVERY")
        v_before = recovered.version()
        recovered.upsert(post)
        assert recovered.version() > v_before
        assert recovered.find_one({"task_id": "t99"})["status"] == "POST-RECOVERY"
    finally:
        recovered.close()

    # double-crash robustness: recovery truncated any torn tail, so a
    # second cold start must see a clean log and identical contents
    again = DurableStore(path)
    try:
        assert again.find_one({"task_id": "t99"}) is not None
        assert again.version() > 0
    finally:
        again.close()


# ---------------------------------------------------------------------------
# targeted edges the matrix cannot hit from the outside
# ---------------------------------------------------------------------------


def test_torn_tail_is_discarded_and_acked_prefix_survives(tmp_path):
    """Byte-level truncation of the final record == classic torn write."""
    path = str(tmp_path / "store")
    store = DurableStore(path, fsync="never")
    for i in range(8):
        store.upsert(_doc(i))
    store.close()
    (seg,) = [p for p in os.listdir(path) if p.endswith(".log")]
    seg_path = os.path.join(path, seg)
    size = os.path.getsize(seg_path)
    for cut in (size - 1, size - 7, size // 2 + 3):
        with open(seg_path, "rb") as f:
            data = f.read()
        with open(seg_path, "wb") as f:
            f.write(data[:cut])
        recovered = DurableStore(path)
        try:
            # some acked suffix is gone (we mutilated the file), but
            # what remains must be a clean *prefix* of the history —
            # never a half-applied document
            docs = recovered.find({}, sort=[("task_id", 1)])
            ids = [d["task_id"] for d in docs]
            assert ids == [f"t{i}" for i in range(len(ids))]
            for d in docs:
                assert d["status"] == "RUNNING" and "used" in d
        finally:
            recovered.close()
        # restore for the next cut
        with open(seg_path, "wb") as f:
            f.write(data)


def test_zero_filled_tail_is_not_a_record(tmp_path):
    """A sparse/zeroed tail must read as torn, not as an empty record."""
    path = str(tmp_path / "store")
    store = DurableStore(path, fsync="never")
    store.upsert(_doc(0))
    store.close()
    (seg,) = [p for p in os.listdir(path) if p.endswith(".log")]
    with open(os.path.join(path, seg), "ab") as f:
        f.write(b"\x00" * 64)
    recovered = DurableStore(path)
    try:
        assert len(recovered) == 1
        recovered.upsert(_doc(1))
        assert len(recovered) == 2
    finally:
        recovered.close()
    again = DurableStore(path)
    try:
        assert len(again) == 2  # the post-truncation append replays clean
    finally:
        again.close()


def test_partial_snapshot_falls_back_to_wal(tmp_path):
    """A torn .snap (or leftover .tmp) must not shadow the real history."""
    path = str(tmp_path / "store")
    store = DurableStore(path, fsync="never")
    for i in range(10):
        store.upsert(_doc(i))
    snap_path = store.snapshot()
    for i in range(10, 14):
        store.upsert(_doc(i))
    store.close()
    reference = _reference([("upsert", _doc(i)) for i in range(14)])

    # 1) leftover .tmp from a crash before rename: ignored + cleaned up
    tmp_snap = os.path.join(path, "snap-9999999999999999.tmp")
    with open(tmp_snap, "wb") as f:
        f.write(b"half a snapshot")
    recovered = DurableStore(path)
    try:
        _assert_parity(recovered, reference)
    finally:
        recovered.close()
    assert not os.path.exists(tmp_snap)

    # 2) the latest snapshot itself torn: recovery must not trust it.
    # All pre-snapshot WAL segments were compacted away, so the torn
    # snapshot costs those documents — but the store must come up
    # consistent, never half-load: losing a *prefix* silently would be
    # corruption, so it must refuse nothing while keeping post-snapshot
    # writes (their WAL survived) replayable on an empty base.
    with open(snap_path, "rb") as f:
        snap_bytes = f.read()
    with open(snap_path, "wb") as f:
        f.write(snap_bytes[: len(snap_bytes) // 2])
    recovered = DurableStore(path)
    try:
        ids = {d["task_id"] for d in recovered.find({})}
        assert ids == {f"t{i}" for i in range(10, 14)}
        for d in recovered.find({}):  # each survivor is whole
            assert d["status"] == "RUNNING" and d["used"] == {"x": int(d["task_id"][1:])}
    finally:
        recovered.close()


def test_corrupt_mid_segment_record_is_an_error_not_a_guess(tmp_path):
    """Bit-rot *inside* the history must refuse loudly, not replay past.

    A torn record is only legal as the tail of the *final* segment —
    that is the crash model (one in-flight append).  A bad record in an
    earlier segment is real corruption, and replaying the segments
    after it would resurrect history with a hole in the middle, so
    recovery must raise instead.
    """
    from repro.errors import DatabaseError

    path = str(tmp_path / "store")
    store = DurableStore(path, fsync="never", segment_max_bytes=1024)
    for i in range(30):
        store.upsert(_doc(i))
    store.close()
    segs = sorted(p for p in os.listdir(path) if p.endswith(".log"))
    assert len(segs) >= 2, "geometry failed to rotate"
    first = os.path.join(path, segs[0])
    data = bytearray(open(first, "rb").read())
    data[len(data) // 2] ^= 0xFF  # flip one bit mid-history
    with open(first, "wb") as f:
        f.write(bytes(data))
    with pytest.raises(DatabaseError, match="corrupt WAL segment"):
        DurableStore(path)

    # the same damage in the FINAL segment reads as a torn tail (that
    # is exactly what a crash produces): clean prefix survives
    path2 = str(tmp_path / "store2")
    store = DurableStore(path2, fsync="never")
    for i in range(6):
        store.upsert(_doc(i))
    store.close()
    (seg,) = [p for p in os.listdir(path2) if p.endswith(".log")]
    seg_path = os.path.join(path2, seg)
    data = bytearray(open(seg_path, "rb").read())
    data[len(data) // 3] ^= 0xFF
    with open(seg_path, "wb") as f:
        f.write(bytes(data))
    recovered = DurableStore(path2)
    try:
        ids = [d["task_id"] for d in recovered.find({})]
        assert ids == [f"t{i}" for i in range(len(ids))] and len(ids) < 6
    finally:
        recovered.close()


def test_crash_between_snapshot_rename_and_segment_delete(tmp_path):
    """Snapshot + stale WAL overlap: records <= snap version replay once."""
    path = str(tmp_path / "store")

    class NoRemoveOps(FileOps):
        def remove(self, p: str) -> None:
            raise SimulatedCrash("kill before compaction delete")

    store = DurableStore(path, fsync="never", file_ops=NoRemoveOps())
    for i in range(9):
        store.upsert(_doc(i))
    with pytest.raises(SimulatedCrash):
        store.snapshot()
    # snapshot renamed durably, old segments still on disk
    assert any(p.endswith(".snap") for p in os.listdir(path))
    assert any(p.endswith(".log") for p in os.listdir(path))
    recovered = DurableStore(path)
    try:
        _assert_parity(recovered, _reference([("upsert", _doc(i)) for i in range(9)]))
        # no double-application: 9 distinct tasks, one doc each
        assert len(recovered) == 9
    finally:
        recovered.close()
