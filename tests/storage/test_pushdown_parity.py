"""Randomized parity: operator pushdown == classic gather-everything.

:func:`repro.query.engine.run_cached_pipeline` over a sharded store
with operator pushdown enabled must be observationally identical to the
same pipeline over a single-node store with pushdown disabled — same
values, same dtypes, same value *types* (an int must not come back as
a float), same errors.  Hypothesis drives hostile document streams
(absent fields, mixed int/float/str/bool columns, >=2**53 integers,
re-upserts that move documents between shards) through a pipeline pool
covering every plan mode (``partial``/``topk``/``project``) plus shapes
that must refuse and fall back; whatever the combine decides, the
answer must match byte-for-byte.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame
from repro.errors import QueryExecutionError
from repro.provenance.query_api import QueryAPI
from repro.query import parse_query
from repro.query.engine import run_cached_pipeline
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore

_WORKFLOWS = [f"w{i}" for i in range(6)] + [None]
_STATUSES = ["FINISHED", "FAILED", "RUNNING", None]
_TASK_IDS = [f"t{i}" for i in range(12)]

#: every plan mode, every guard, plus shapes with no plan at all
_PIPELINES = [
    # partial: counts and scalar aggregations
    "len(df)",
    "len(df[df['status'] == 'FAILED'])",
    f"len(df[df['duration'] >= {2**53}])",  # unpushable literal, local replay
    "df['duration'].sum()",
    "df['duration'].mean()",
    "df['duration'].min()",
    "df['duration'].max()",
    "df['duration'].count()",
    "df[df['workflow_id'] == 'w1']['duration'].sum()",
    "df[df['duration'] > 2]['retries'].count()",
    "df.sort_values('task_id')['duration'].mean()",  # skippable sort
    # partial: unique and grouped aggregations (+ suffix)
    "df['status'].unique()",
    "df['duration'].unique()",
    "df.groupby('status')['duration'].mean()",
    "df.groupby('workflow_id')['duration'].count()",
    "df.groupby('status')['duration'].sum()"
    ".sort_values('duration', ascending=False).head(1)",
    "df[df['status'] == 'FINISHED'].groupby('workflow_id')['retries'].max()",
    # topk: sorted head/tail with and without skip/projection
    "df.sort_values('duration').head(3)",
    "df.sort_values('duration', ascending=False).head(4)"
    "[['task_id', 'duration']]",
    "df.sort_values('duration').iloc[1:].head(2)",
    "df.sort_values('duration').tail(3)",
    "df.sort_values('task_id').head(5)",
    "df[df['status'] == 'FAILED'].sort_values('duration').head(2)",
    # project: non-decomposable aggregations and plain pagination
    "df['duration'].median()",
    "df['duration'].std()",
    "df['duration'].nunique()",
    "df[['task_id', 'status']].head(6)",
    "df[df['status'] == 'FINISHED'][['task_id', 'retries']]",
    # no plan: identity-ish pipelines stay classic
    "df.sort_values('duration')",
    "df.head(4)",
    # absent-column errors must reproduce exactly
    "df['no_such'].sum()",
    "df.groupby('no_such')['duration'].mean()",
]


@st.composite
def doc_streams(draw):
    n = draw(st.integers(0, 25))
    docs = []
    for _ in range(n):
        doc = {
            "type": "task",
            "task_id": draw(st.sampled_from(_TASK_IDS)),
            "workflow_id": draw(st.sampled_from(_WORKFLOWS)),
            "status": draw(st.sampled_from(_STATUSES)),
            # one column, every dtype hazard: ints, >=2**53 ints,
            # floats, strings, bools, nulls, absence
            "duration": draw(
                st.one_of(
                    st.none(),
                    st.integers(0, 6),
                    st.integers(2**53, 2**53 + 2),
                    st.floats(0.25, 9, allow_nan=False),
                    st.sampled_from(["slow", "fast", True]),
                )
            ),
            "retries": draw(st.one_of(st.none(), st.integers(0, 3))),
        }
        for key in ("workflow_id", "status", "duration", "retries"):
            if doc[key] is None and draw(st.booleans()):
                del doc[key]  # genuinely absent, not null
        docs.append(doc)
    return docs


def _mirror(stream, num_shards):
    single = ProvenanceDatabase()
    sharded = ShardedProvenanceStore(num_shards)
    for doc in stream:
        single.upsert(doc)
        sharded.upsert(doc)
    return single, sharded


def _normalise(result):
    if isinstance(result, DataFrame):
        return (
            "frame",
            tuple(result.columns),
            tuple(result.column(c).dtype for c in result.columns),
            tuple(
                tuple((type(v).__name__, repr(v)) for v in row.values())
                for row in result.to_dicts()
            ),
        )
    if isinstance(result, list):
        return ("list", tuple((type(v).__name__, repr(v)) for v in result))
    return ("scalar", type(result).__name__, repr(result))


def _outcome(store, code, **kw):
    try:
        run = run_cached_pipeline(
            QueryAPI(store),
            parse_query(code),
            base_filter={"type": "task"},
            **kw,
        )
    except QueryExecutionError as exc:
        return ("error", type(exc).__name__, str(exc))
    return _normalise(run.result)


@settings(max_examples=150, deadline=None)
@given(
    stream=doc_streams(),
    num_shards=st.sampled_from([1, 2, 4]),
    code=st.sampled_from(_PIPELINES),
)
def test_pushdown_is_observationally_invisible(stream, num_shards, code):
    single, sharded = _mirror(stream, num_shards)
    assert _outcome(sharded, code) == _outcome(
        single, code, operator_pushdown=False
    )


@settings(max_examples=40, deadline=None)
@given(
    stream=doc_streams(),
    code=st.sampled_from(_PIPELINES),
)
def test_skewed_placement_all_docs_on_one_shard(stream, code):
    # a constant routing key sends everything to one shard of four:
    # three shards contribute empty partials to every merge
    for doc in stream:
        doc["workflow_id"] = "w0"
    single, sharded = _mirror(stream, 4)
    assert _outcome(sharded, code) == _outcome(
        single, code, operator_pushdown=False
    )


@settings(max_examples=40, deadline=None)
@given(
    stream=doc_streams(),
    num_shards=st.sampled_from([2, 4]),
    code=st.sampled_from(_PIPELINES),
)
def test_pushdown_agrees_with_its_own_classic_path(stream, num_shards, code):
    # same sharded store, pushdown on vs off: isolates the scatter /
    # combine from any single-vs-sharded gather difference
    _, sharded = _mirror(stream, num_shards)
    assert _outcome(sharded, code) == _outcome(
        sharded, code, operator_pushdown=False
    )
