"""Randomized parity: DurableStore (± reopen cycles) == memory reference.

Same contract style as ``test_sharded_parity.py``: durability is a pure
accelerator-of-nothing — WAL framing, segment rotation, snapshot
compaction, and cold-start recovery must never change a query result.
Hypothesis drives randomized op streams with **reopen events
interleaved**, so every example may cross several crash-free restart
boundaries (the crash-ful ones live in ``test_durability.py``), and
every supported read — find/sort/limit, count, distinct, field_counts,
aggregate — must match a single in-memory :class:`ProvenanceDatabase`
fed the same stream.

Documents are JSON-clean by construction (the durable store's contract;
the provenance pipeline's normalised messages always are).
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.storage import DurableStore, ProvenanceDatabase, open_durable_sharded

_WORKFLOWS = ["w0", "w1", "w2", "w3", "w4", None]
_STATUSES = ["FINISHED", "FAILED", "RUNNING", None]
_TASK_IDS = [f"t{i}" for i in range(12)]

#: aggressive geometry so even short streams cross rotations/snapshots
_GEOMETRY = dict(segment_max_bytes=1024, snapshot_every_ops=5, fsync="never")


@st.composite
def op_streams(draw):
    """Upserts, batch upserts, keyless inserts, clears — and reopens."""
    n = draw(st.integers(1, 30))
    ops = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["upsert", "upsert", "upsert", "upsert_many", "insert", "clear", "reopen", "reopen"]
            )
        )
        if kind == "upsert":
            ops.append(("upsert", draw(_docs())))
        elif kind == "upsert_many":
            ops.append(("upsert_many", draw(st.lists(_docs(), max_size=4))))
        elif kind == "insert":
            ops.append(("insert", {"type": "note", "n": draw(st.integers(0, 9))}))
        else:
            ops.append((kind, None))
    return ops


@st.composite
def _docs(draw):
    doc = {
        "type": "task",
        "task_id": draw(st.sampled_from(_TASK_IDS)),
        "workflow_id": draw(st.sampled_from(_WORKFLOWS)),
        "status": draw(st.sampled_from(_STATUSES)),
        "activity_id": draw(st.sampled_from(["a", "b", None])),
        "started_at": draw(
            st.one_of(
                st.none(),
                st.integers(0, 50),
                st.floats(0, 50, allow_nan=False),
                st.sampled_from(["early", "late"]),  # mixed-type sorts
            )
        ),
        "duration": draw(st.one_of(st.none(), st.floats(0, 9, allow_nan=False))),
        "generated": {"y": draw(st.integers(0, 5))},
    }
    if doc["workflow_id"] is None:
        del doc["workflow_id"]  # field genuinely absent, not null
    return doc


_filters = st.sampled_from(
    [
        {},
        {"workflow_id": "w1"},
        {"workflow_id": {"$in": ["w0", "w3"]}},
        {"status": "FINISHED"},
        {"workflow_id": "w2", "status": {"$ne": "FAILED"}},
        {"$or": [{"workflow_id": "w1"}, {"status": "FAILED"}]},
        {"started_at": {"$gte": 10, "$lt": 40}},
        {"workflow_id": {"$exists": True}},
        {"task_id": {"$regex": "t[0-3]$"}},
    ]
)

_sorts = st.sampled_from(
    [
        None,
        [("started_at", 1)],
        [("started_at", -1)],
        [("workflow_id", 1), ("started_at", -1)],
        [("duration", 1), ("task_id", 1)],
    ]
)

_limits = st.sampled_from([None, 0, 1, 3, 100])


def _replay(path, ops, opener):
    """Run the stream against (durable-on-disk, in-memory reference)."""
    reference = ProvenanceDatabase()
    durable = opener(path)
    for kind, arg in ops:
        if kind == "reopen":
            durable.close()
            durable = opener(path)
            continue
        if kind == "upsert":
            reference.upsert(arg)
            durable.upsert(arg)
        elif kind == "upsert_many":
            reference.upsert_many(arg)
            durable.upsert_many(arg)
        elif kind == "insert":
            reference.insert(arg)
            durable.insert(arg)
        else:
            reference.clear()
            durable.clear()
    return reference, durable


def _check_all_reads(durable, reference, filt, sort, limit):
    assert durable.find(filt, sort=sort, limit=limit) == reference.find(
        filt, sort=sort, limit=limit
    )
    assert durable.count(filt) == reference.count(filt)
    assert set(durable.distinct("workflow_id", filt)) == set(
        reference.distinct("workflow_id", filt)
    )
    assert durable.field_counts("status", filt) == reference.field_counts(
        "status", filt
    )
    pipeline = [
        {"$match": filt},
        {
            "$group": {
                "_id": "$workflow_id",
                "n": {"$sum": 1},
                "avg": {"$avg": "$duration"},
                "top": {"$max": "$generated.y"},
            }
        },
        {"$sort": {"n": -1}},
        {"$limit": 4},
    ]
    assert durable.aggregate(pipeline) == reference.aggregate(pipeline)
    assert len(durable) == len(reference)


@settings(max_examples=50, deadline=None)
@given(ops=op_streams(), filt=_filters, sort=_sorts, limit=_limits)
def test_durable_parity_across_reopen_cycles(ops, filt, sort, limit):
    tmp = tempfile.mkdtemp(prefix="durable-parity-")
    durable = None
    try:
        reference, durable = _replay(
            tmp, ops, lambda p: DurableStore(p, **_GEOMETRY)
        )
        _check_all_reads(durable, reference, filt, sort, limit)
        # one final cold start over everything the stream produced
        durable.close()
        durable = DurableStore(tmp)
        _check_all_reads(durable, reference, filt, sort, limit)
    finally:
        if durable is not None:
            durable.close()
        shutil.rmtree(tmp)


@settings(max_examples=30, deadline=None)
@given(
    ops=op_streams(),
    num_shards=st.sampled_from([1, 3]),
    filt=_filters,
    sort=_sorts,
)
def test_durable_sharded_parity_across_reopen_cycles(ops, num_shards, filt, sort):
    """open_durable_sharded: recovery must also rebuild coordinator state.

    Reopen cycles here exercise :meth:`rebuild_routing` — key→home-shard
    stripes, stray tracking for re-deliveries that changed
    ``workflow_id``, and the global sequence counter all come back from
    the recovered shard contents, or global ordering and targeted
    routing would silently drift from the reference.
    """
    tmp = tempfile.mkdtemp(prefix="durable-sharded-parity-")
    store = None

    def opener(path):
        return open_durable_sharded(path, num_shards, **_GEOMETRY)

    try:
        reference, store = _replay(tmp, ops, opener)
        _check_all_reads(store, reference, filt, sort, None)
        # targeted single-workflow routing after however many reopens
        for wf in ("w0", "w2", "w4"):
            wf_filt = {"workflow_id": wf}
            assert store.find(wf_filt) == reference.find(wf_filt)
            assert store.explain(wf_filt)["candidates"] >= reference.count(wf_filt)
        store.close()
        store = opener(tmp)
        _check_all_reads(store, reference, filt, sort, None)
    finally:
        if store is not None:
            store.close()
        shutil.rmtree(tmp)
