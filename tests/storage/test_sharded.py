"""Sharded store: routing decisions, scatter-gather edge cases, parity."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DatabaseError
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore


def make_doc(i, workflow="w0", **overrides):
    doc = {
        "type": "task",
        "task_id": f"t{i}",
        "workflow_id": workflow,
        "campaign_id": "c1",
        "activity_id": f"a{i % 3}",
        "status": ("FINISHED", "FAILED", "RUNNING")[i % 3],
        "started_at": float((i * 37) % 100),
        "duration": float(i % 5) or None,
        "used": {},
        "generated": {"y": i},
    }
    doc.update(overrides)
    return doc


def mirrored(n=30, workflows=("w0", "w1", "w2", "w3", "w4")):
    """A single-node and a sharded store fed identical documents."""
    single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
    docs = [make_doc(i, workflows[i % len(workflows)]) for i in range(n)]
    single.upsert_many(docs)
    sharded.upsert_many(docs)
    return single, sharded


class TestRouting:
    def test_workflow_equality_routes_to_one_shard(self):
        _, sharded = mirrored()
        plan = sharded.explain({"workflow_id": "w1"})
        assert plan["strategy"] == "targeted"
        assert len(plan["shards"]) == 1
        assert plan["routing_values"] == ["w1"]

    def test_in_filter_spanning_shards_routes_to_their_union(self):
        single, sharded = mirrored()
        filt = {"workflow_id": {"$in": ["w0", "w1", "w2", "w3", "w4"]}}
        plan = sharded.explain(filt)
        homes = {
            sharded.explain({"workflow_id": w})["shards"][0]
            for w in ("w0", "w1", "w2", "w3", "w4")
        }
        assert set(plan["shards"]) == homes
        assert sharded.find(filt) == single.find(filt)

    def test_or_of_equalities_routes_to_union(self):
        _, sharded = mirrored()
        plan = sharded.explain(
            {"$or": [{"workflow_id": "w0"}, {"workflow_id": "w1"}]}
        )
        u = set(sharded.explain({"workflow_id": "w0"})["shards"]) | set(
            sharded.explain({"workflow_id": "w1"})["shards"]
        )
        assert set(plan["shards"]) == u

    def test_and_intersects_routing(self):
        _, sharded = mirrored()
        plan = sharded.explain(
            {"$and": [{"workflow_id": "w0"}, {"workflow_id": {"$in": ["w0", "w1"]}}]}
        )
        assert plan["shards"] == sharded.explain({"workflow_id": "w0"})["shards"]

    def test_unroutable_shapes_scatter(self):
        _, sharded = mirrored()
        for filt in (
            {"status": "FINISHED"},
            {"workflow_id": {"$regex": "w"}},
            {"workflow_id": {"$gt": "w0"}},
            {"workflow_id": None},
            {"workflow_id": {"$in": ["w0", None]}},
            {"$or": [{"workflow_id": "w0"}, {"status": "FAILED"}]},
        ):
            assert sharded.explain(filt)["strategy"] == "scatter", filt

    def test_unroutable_stored_workflow_still_reachable_by_equal_literal(self):
        # Decimal(5) == 5 but Decimal cannot route; targeted queries for
        # the routable literal must still visit the shard hosting it
        from decimal import Decimal

        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
        for store in (single, sharded):
            store.upsert(make_doc(0, workflow=Decimal(5)))
            store.upsert(make_doc(1, workflow=5))
        for filt in (
            {"workflow_id": 5},
            {"workflow_id": 5.0},
            {"workflow_id": {"$in": [5]}},
        ):
            assert sharded.find(filt) == single.find(filt), filt
        # same via a re-delivery that changes to an unroutable value
        s2, sh2 = ProvenanceDatabase(), ShardedProvenanceStore(4)
        for store in (s2, sh2):
            store.upsert(make_doc(2, workflow="plain"))
            store.upsert({"type": "task", "task_id": "t2", "workflow_id": Decimal(7)})
        assert sh2.find({"workflow_id": 7}) == s2.find({"workflow_id": 7})

    def test_cross_type_numeric_workflow_ids_route_together(self):
        sharded = ShardedProvenanceStore(4)
        sharded.upsert(make_doc(0, workflow=1))
        assert sharded.find({"workflow_id": 1.0}) == sharded.find(
            {"workflow_id": 1}
        )
        assert len(sharded.find({"workflow_id": True})) == 1

    def test_empty_in_routes_nowhere(self):
        _, sharded = mirrored()
        assert sharded.find({"workflow_id": {"$in": []}}) == []
        assert sharded.count({"workflow_id": {"$in": []}}) == 0

    def test_malformed_filter_rejected_even_when_routed_to_nothing(self):
        _, sharded = mirrored()
        with pytest.raises(DatabaseError):
            sharded.find({"workflow_id": {"$in": []}, "status": {"$bogus": 1}})


class TestRedelivery:
    def test_redelivery_lands_on_home_shard(self):
        sharded = ShardedProvenanceStore(4)
        sharded.upsert(make_doc(1, workflow="alpha", status="RUNNING"))
        sharded.upsert(make_doc(1, workflow="alpha", status="FINISHED"))
        assert len(sharded) == 1
        assert sharded.find_one({"task_id": "t1"})["status"] == "FINISHED"

    def test_workflow_first_seen_on_redelivery_stays_findable(self):
        sharded = ShardedProvenanceStore(4)
        doc = make_doc(2)
        del doc["workflow_id"]
        sharded.upsert(doc)  # routed by key: workflow unknown yet
        sharded.upsert(make_doc(2, workflow="late-wf"))
        assert len(sharded) == 1
        hits = sharded.find({"workflow_id": "late-wf"})
        assert [d["task_id"] for d in hits] == ["t2"]
        # the stray shard is part of the targeted route, not a scatter
        assert sharded.explain({"workflow_id": "late-wf"})["strategy"] in (
            "targeted",
            "scatter",  # only if the stray union happens to cover all shards
        )

    def test_workflow_change_keeps_both_queries_exact(self):
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
        for store in (single, sharded):
            store.upsert(make_doc(3, workflow="old-wf"))
            store.upsert({"type": "task", "task_id": "t3", "workflow_id": "new-wf"})
        for filt in ({"workflow_id": "old-wf"}, {"workflow_id": "new-wf"}):
            assert sharded.find(filt) == single.find(filt)

    def test_upsert_without_key_raises_like_single_node(self):
        sharded = ShardedProvenanceStore(2)
        with pytest.raises(DatabaseError, match="task_id"):
            sharded.upsert({"workflow_id": "w0"})


class TestScatterGatherEdgeCases:
    def test_empty_shards_are_harmless(self):
        # one workflow -> every doc on one shard, three shards empty
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
        docs = [make_doc(i, "only-wf") for i in range(10)]
        single.upsert_many(docs)
        sharded.upsert_many(docs)
        sizes = sorted(len(s) for s in sharded.shards)
        assert sizes == [0, 0, 0, 10]
        assert sharded.find({"status": "FINISHED"}) == single.find(
            {"status": "FINISHED"}
        )
        assert sharded.find({}, sort=[("started_at", -1)], limit=3) == single.find(
            {}, sort=[("started_at", -1)], limit=3
        )
        assert sharded.aggregate(
            [{"$group": {"_id": "$status", "n": {"$sum": 1}}}]
        ) == single.aggregate([{"$group": {"_id": "$status", "n": {"$sum": 1}}}])

    def test_empty_store_queries(self):
        sharded = ShardedProvenanceStore(4)
        assert sharded.find({"status": "FINISHED"}) == []
        assert sharded.all() == []
        assert sharded.count() == 0
        assert sharded.distinct("workflow_id") == []
        assert sharded.field_counts("status") == {}
        assert sharded.aggregate([{"$count": "n"}]) == [{"n": 0}]

    def test_unsorted_results_preserve_global_insertion_order(self):
        single, sharded = mirrored(40)
        assert sharded.find({}) == single.find({})
        assert sharded.all() == single.all()

    def test_sort_ties_break_by_global_insertion_order(self):
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
        docs = [make_doc(i, f"w{i % 4}", started_at=1.0) for i in range(12)]
        single.upsert_many(docs)
        sharded.upsert_many(docs)
        key = [("started_at", 1)]
        assert sharded.find({}, sort=key) == single.find({}, sort=key)
        assert sharded.find({}, sort=key, limit=5) == single.find(
            {}, sort=key, limit=5
        )

    def test_limit_without_sort_is_global_prefix(self):
        single, sharded = mirrored(25)
        for limit in (0, 1, 3, 24, 100):
            assert sharded.find({}, limit=limit) == single.find({}, limit=limit)

    def test_projection_parity(self):
        single, sharded = mirrored()
        proj = ["task_id", "generated.y"]
        assert sharded.find({"status": "FAILED"}, projection=proj) == single.find(
            {"status": "FAILED"}, projection=proj
        )
        # single-shard route with projection
        assert sharded.find(
            {"workflow_id": "w1"}, projection=proj
        ) == single.find({"workflow_id": "w1"}, projection=proj)

    def test_mixed_type_sort_merges_exactly(self):
        # one shard sorts numerically, the merge sees mixed types: the
        # coordinator must reproduce the single-node string fallback
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(4)
        docs = [
            make_doc(0, "w0", started_at=30.0),
            make_doc(1, "w0", started_at=9.0),
            make_doc(2, "w1", started_at="almost-now"),
            make_doc(3, "w2", started_at=None),
        ]
        for d in docs:
            single.upsert(d)
            sharded.upsert(d)
        key = [("started_at", 1)]
        for limit in (1, 2, 4):
            assert sharded.find({}, sort=key, limit=limit) == single.find(
                {}, sort=key, limit=limit
            )

    def test_distinct_same_values_and_counts_match(self):
        single, sharded = mirrored(30)
        assert set(sharded.distinct("workflow_id")) == set(
            single.distinct("workflow_id")
        )
        assert set(sharded.distinct("status", {"workflow_id": "w2"})) == set(
            single.distinct("status", {"workflow_id": "w2"})
        )
        assert sharded.field_counts("status") == single.field_counts("status")
        assert sharded.field_counts("duration") == single.field_counts("duration")

    def test_aggregate_targeted_and_scattered(self):
        single, sharded = mirrored(30)
        pipelines = [
            [{"$match": {"workflow_id": "w1"}}, {"$group": {"_id": "$status", "n": {"$sum": 1}}}],
            [
                {"$match": {"status": "FINISHED"}},
                {"$group": {"_id": "$workflow_id", "total": {"$sum": "$generated.y"}}},
                {"$sort": {"total": -1}},
                {"$limit": 3},
            ],
            [{"$sort": {"started_at": 1}}, {"$project": ["task_id", "started_at"]}],
        ]
        for pipe in pipelines:
            assert sharded.aggregate(pipe) == single.aggregate(pipe), pipe


class TestLifecycle:
    def test_clear_resets_everything(self):
        _, sharded = mirrored()
        sharded.clear()
        assert len(sharded) == 0
        assert sharded.find({"workflow_id": "w0"}) == []
        sharded.upsert(make_doc(0, "w0"))
        assert len(sharded) == 1

    def test_single_shard_degenerate_store(self):
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(1)
        docs = [make_doc(i, f"w{i}") for i in range(8)]
        single.upsert_many(docs)
        sharded.upsert_many(docs)
        assert sharded.find({}, sort=[("started_at", 1)]) == single.find(
            {}, sort=[("started_at", 1)]
        )

    def test_zero_shards_rejected(self):
        with pytest.raises(DatabaseError):
            ShardedProvenanceStore(0)

    def test_insert_without_key_round_trips(self):
        single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(3)
        rows = [{"workflow_id": f"w{i % 2}", "v": i} for i in range(6)]
        rows.append({"v": 99})  # no workflow either
        for r in rows:
            single.insert(r)
            sharded.insert(r)
        assert sharded.all() == single.all()
        assert sharded.find({"workflow_id": "w1"}) == single.find(
            {"workflow_id": "w1"}
        )

    def test_context_manager_closes_pool(self):
        with ShardedProvenanceStore(2, scatter_parallel_min=0) as store:
            store.upsert_many([make_doc(i, f"w{i}") for i in range(4)])
            assert store.find({"status": "FINISHED"}) != []
        # close() is idempotent
        store.close()


class TestConcurrentIngest:
    def test_concurrent_bulk_loads_keep_position_sequence_invariant(self):
        # unsorted limit pushdown takes each shard's positional prefix,
        # which is only sound if every shard's local order follows the
        # global sequence stamps — including when bulk loads race
        sharded = ShardedProvenanceStore(4)
        batches = [
            [{"workflow_id": f"w{(w * 31 + j) % 9}", "v": f"{w}-{j}"} for j in range(50)]
            for w in range(8)
        ]
        threads = [
            threading.Thread(target=sharded.insert_many, args=(b,))
            for b in batches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sharded) == 400
        for shard in sharded.shards:
            seqs = [d["__shard_seq__"] for d in shard._docs]
            assert seqs == sorted(seqs)
        assert sharded.find({}, limit=7) == sharded.find({})[:7]


    def test_parallel_writers_converge(self):
        sharded = ShardedProvenanceStore(4, ingest_parallel_min=1)
        single = ProvenanceDatabase()
        docs = [make_doc(i, f"w{i % 8}") for i in range(400)]
        single.upsert_many(docs)
        chunks = [docs[i::4] for i in range(4)]

        def writer(chunk):
            for j in range(0, len(chunk), 25):
                sharded.upsert_many(chunk[j : j + 25])

        threads = [threading.Thread(target=writer, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sharded) == 400
        # content parity (order across writers is nondeterministic)
        key = [("task_id", 1)]
        assert sharded.find({}, sort=key) == single.find({}, sort=key)
        assert sharded.field_counts("workflow_id") == single.field_counts(
            "workflow_id"
        )
