"""Tests for @flow_task and the capture context."""

from __future__ import annotations

import pytest

from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.provenance.keeper import ProvenanceKeeper


@pytest.fixture
def ctx():
    CaptureContext.reset_default()
    return CaptureContext(hostname="node-x")


@pytest.fixture
def keeper(ctx):
    k = ProvenanceKeeper(ctx.broker)
    k.start()
    return k


class TestFlowTask:
    def test_captures_used_and_generated(self, ctx, keeper):
        @flow_task(context=ctx)
        def square(x):
            return {"y": x * x}

        assert square(3) == {"y": 9}
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "square"})
        assert doc["used"] == {"x": 3}
        assert doc["generated"] == {"y": 9}
        assert doc["status"] == "FINISHED"

    def test_custom_activity_id(self, ctx, keeper):
        @flow_task("my_activity", context=ctx)
        def fn():
            return None

        fn()
        ctx.flush()
        assert keeper.database.find_one({"activity_id": "my_activity"})

    def test_scalar_result_wrapped(self, ctx, keeper):
        @flow_task(context=ctx)
        def answer():
            return 42

        answer()
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "answer"})
        assert doc["generated"] == {"result": 42}

    def test_failure_recorded_and_reraised(self, ctx, keeper):
        @flow_task(context=ctx)
        def boom():
            raise ValueError("broken")

        with pytest.raises(ValueError):
            boom()
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "boom"})
        assert doc["status"] == "FAILED"
        assert "broken" in doc["generated"]["error"]

    def test_upstream_and_hostname_kwargs(self, ctx, keeper):
        @flow_task(context=ctx)
        def fn(x):
            return {"x": x}

        fn(1, _upstream=["parent-task"], _hostname="frontier00099")
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "fn"})
        assert doc["used"]["_upstream"] == ["parent-task"]
        assert doc["hostname"] == "frontier00099"

    def test_telemetry_snapshots_attached(self, ctx, keeper):
        @flow_task(context=ctx)
        def fn():
            return {}

        fn()
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "fn"})
        assert "percent" in doc["telemetry_at_start"]["cpu"]
        assert "percent" in doc["telemetry_at_end"]["cpu"]

    def test_large_values_summarised(self, ctx, keeper):
        @flow_task(context=ctx)
        def fn(big):
            return {}

        fn(list(range(1000)))
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "fn"})
        assert doc["used"]["big"]["_summary"] == "sequence of 1000 items"

    def test_nested_dict_values_captured(self, ctx, keeper):
        @flow_task(context=ctx)
        def fn(frags):
            return {}

        fn({"label": "C-H_3", "fragment2": "[H]"})
        ctx.flush()
        doc = keeper.database.find_one({"activity_id": "fn"})
        assert doc["used"]["frags"]["label"] == "C-H_3"

    def test_default_context_used_when_unspecified(self, keeper):
        # keeper fixture subscribes to ctx.broker, but default ctx is fresh:
        CaptureContext.reset_default()

        @flow_task()
        def fn():
            return {}

        fn()
        default = CaptureContext.default()
        default.flush()
        assert default.buffer.appended_count == 1


class TestWorkflowRun:
    def test_emits_running_and_finished(self, ctx, keeper):
        with WorkflowRun("my_wf", ctx) as run:
            pass
        docs = keeper.database.find({"type": "workflow"})
        assert len(docs) == 1  # upserted RUNNING -> FINISHED
        assert docs[0]["status"] == "FINISHED"
        assert docs[0]["workflow_id"] == run.workflow_id

    def test_failure_marks_failed(self, ctx, keeper):
        with pytest.raises(RuntimeError):
            with WorkflowRun("my_wf", ctx):
                raise RuntimeError("bad")
        docs = keeper.database.find({"type": "workflow"})
        assert docs[0]["status"] == "FAILED"

    def test_tasks_inside_scope_get_workflow_id(self, ctx, keeper):
        @flow_task(context=ctx)
        def fn():
            return {}

        with WorkflowRun("wf", ctx) as run:
            fn()
        doc = keeper.database.find_one({"activity_id": "fn"})
        assert doc["workflow_id"] == run.workflow_id

    def test_nested_workflows_stack(self, ctx):
        with WorkflowRun("outer", ctx) as outer:
            assert ctx.workflow_id == outer.workflow_id
            with WorkflowRun("inner", ctx) as inner:
                assert ctx.workflow_id == inner.workflow_id
            assert ctx.workflow_id == outer.workflow_id
        assert ctx.workflow_id is None
