"""Tests for observability adapters."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.capture.adapters.filesystem import FileSystemAdapter
from repro.capture.adapters.mlflow_like import MLFlowLikeAdapter
from repro.capture.adapters.sqlite import SQLiteAdapter
from repro.capture.context import CaptureContext
from repro.provenance.keeper import ProvenanceKeeper


@pytest.fixture
def ctx():
    return CaptureContext()


@pytest.fixture
def keeper(ctx):
    k = ProvenanceKeeper(ctx.broker)
    k.start()
    return k


class TestFileSystemAdapter:
    def test_new_file_observed(self, tmp_path, ctx, keeper):
        adapter = FileSystemAdapter(tmp_path, ctx)
        assert adapter.poll() == 0
        (tmp_path / "out.log").write_text("hello")
        assert adapter.poll() == 1
        doc = keeper.database.find_one({"activity_id": "fs_file_created"})
        assert doc["generated"]["size_bytes"] == 5

    def test_unchanged_file_not_reemitted(self, tmp_path, ctx):
        (tmp_path / "a.txt").write_text("x")
        adapter = FileSystemAdapter(tmp_path, ctx)
        assert adapter.poll() == 1
        assert adapter.poll() == 0

    def test_suffix_filter(self, tmp_path, ctx):
        (tmp_path / "keep.json").write_text("{}")
        (tmp_path / "skip.tmp").write_text("")
        adapter = FileSystemAdapter(tmp_path, ctx, suffixes=(".json",))
        assert adapter.poll() == 1

    def test_missing_root_is_empty(self, tmp_path, ctx):
        adapter = FileSystemAdapter(tmp_path / "ghost", ctx)
        assert adapter.poll() == 0


class TestSQLiteAdapter:
    def make_db(self, path):
        con = sqlite3.connect(path)
        con.execute("CREATE TABLE runs (name TEXT, energy REAL)")
        con.commit()
        return con

    def test_rows_observed_incrementally(self, tmp_path, ctx, keeper):
        db_path = tmp_path / "results.db"
        con = self.make_db(db_path)
        adapter = SQLiteAdapter(db_path, "runs", ctx)
        assert adapter.poll() == 0
        con.execute("INSERT INTO runs VALUES ('dft-1', -154.99)")
        con.commit()
        assert adapter.poll() == 1
        con.execute("INSERT INTO runs VALUES ('dft-2', -39.81)")
        con.commit()
        assert adapter.poll() == 1  # only the new row
        con.close()
        doc = keeper.database.find_one({"generated.name": "dft-2"})
        assert doc["generated"]["energy"] == -39.81

    def test_missing_db_is_empty(self, tmp_path, ctx):
        adapter = SQLiteAdapter(tmp_path / "nope.db", "runs", ctx)
        assert adapter.poll() == 0

    def test_suspicious_table_rejected(self, tmp_path, ctx):
        with pytest.raises(ValueError):
            SQLiteAdapter(tmp_path / "x.db", "runs; DROP TABLE", ctx)


class TestMLFlowLikeAdapter:
    def test_lines_tailed(self, tmp_path, ctx, keeper):
        log = tmp_path / "runs.jsonl"
        log.write_text(
            json.dumps({"run_id": "r1", "params": {"lr": 0.01}, "metrics": {"loss": 0.5}})
            + "\n"
        )
        adapter = MLFlowLikeAdapter(log, ctx)
        assert adapter.poll() == 1
        with open(log, "a") as f:
            f.write(json.dumps({"run_id": "r2", "metrics": {"loss": 0.4}}) + "\n")
        assert adapter.poll() == 1
        doc = keeper.database.find_one({"generated.run_id": "r1"})
        assert doc["generated"]["param.lr"] == 0.01
        assert doc["generated"]["metric.loss"] == 0.5

    def test_malformed_lines_counted_not_fatal(self, tmp_path, ctx):
        log = tmp_path / "runs.jsonl"
        log.write_text("not json\n" + json.dumps({"run_id": "ok"}) + "\n")
        adapter = MLFlowLikeAdapter(log, ctx)
        assert adapter.poll() == 1
        assert adapter.malformed_lines == 1

    def test_missing_file_is_empty(self, tmp_path, ctx):
        adapter = MLFlowLikeAdapter(tmp_path / "ghost.jsonl", ctx)
        assert adapter.poll() == 0
