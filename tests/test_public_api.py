"""Tests for the top-level public API surface."""

from __future__ import annotations

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "0.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_flow_works_via_top_level_imports(self):
        ctx = repro.CaptureContext()
        agent = repro.ProvenanceAgent(ctx)

        @repro.flow_task()
        def square(x):
            return {"y": x * x}

        for x in range(10):
            square(x, _ctx=ctx)
        ctx.flush()

        reply = agent.chat("How many tasks have finished?")
        assert reply.ok
        assert "10" in reply.text
        assert reply.code.startswith("len(")
