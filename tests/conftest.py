"""Shared fixtures: canonical provenance-like frames used across test modules."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame


@pytest.fixture
def task_records() -> list[dict]:
    """A small, hand-checkable set of task provenance rows (flattened form)."""
    return [
        {
            "task_id": "1000.1_0",
            "campaign_id": "c1",
            "workflow_id": "w1",
            "activity_id": "run_dft",
            "status": "FINISHED",
            "hostname": "frontier00084",
            "started_at": 1000.1,
            "ended_at": 1002.1,
            "duration": 2.0,
            "telemetry_at_end.cpu.percent": 53.8,
            "generated.bond_id": "C-H_1",
            "generated.bd_enthalpy": 100.2,
        },
        {
            "task_id": "1000.2_1",
            "campaign_id": "c1",
            "workflow_id": "w1",
            "activity_id": "run_dft",
            "status": "RUNNING",
            "hostname": "frontier00085",
            "started_at": 1000.2,
            "ended_at": None,
            "duration": None,
            "telemetry_at_end.cpu.percent": 88.0,
            "generated.bond_id": "C-C_1",
            "generated.bd_enthalpy": 89.5,
        },
        {
            "task_id": "1000.3_2",
            "campaign_id": "c1",
            "workflow_id": "w1",
            "activity_id": "postprocess",
            "status": "FINISHED",
            "hostname": "frontier00084",
            "started_at": 1000.3,
            "ended_at": 1000.8,
            "duration": 0.5,
            "telemetry_at_end.cpu.percent": 23.4,
            "generated.bond_id": "C-H_2",
            "generated.bd_enthalpy": 99.8,
        },
        {
            "task_id": "1000.4_3",
            "campaign_id": "c1",
            "workflow_id": "w2",
            "activity_id": "run_dft",
            "status": "FAILED",
            "hostname": "frontier00086",
            "started_at": 1000.4,
            "ended_at": 1000.9,
            "duration": 0.5,
            "telemetry_at_end.cpu.percent": 12.0,
            "generated.bond_id": "O-H_1",
            "generated.bd_enthalpy": 104.9,
        },
    ]


@pytest.fixture
def task_frame(task_records) -> DataFrame:
    return DataFrame.from_records(task_records)
