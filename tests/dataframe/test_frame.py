"""Tests for DataFrame operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, concat, flatten_record
from repro.errors import ColumnNotFoundError, LengthMismatchError


class TestFlattenRecord:
    def test_nested_dicts_get_dot_keys(self):
        rec = {"used": {"frags": {"label": "C-H_3"}}, "status": "FINISHED"}
        flat = flatten_record(rec)
        assert flat == {"used.frags.label": "C-H_3", "status": "FINISHED"}

    def test_lists_stay_opaque(self):
        flat = flatten_record({"cpu": [1, 2, 3]})
        assert flat == {"cpu": [1, 2, 3]}

    def test_empty_dict_value_preserved(self):
        assert flatten_record({"x": {}}) == {"x": {}}

    def test_max_depth_stops_recursion(self):
        rec = {"a": {"b": {"c": {"d": {"e": 1}}}}}
        flat = flatten_record(rec, max_depth=2)
        assert flat == {"a.b.c": {"d": {"e": 1}}}


class TestConstruction:
    def test_from_records_unions_keys(self):
        df = DataFrame.from_records([{"a": 1}, {"b": 2}])
        assert df.columns == ["a", "b"]
        assert df.column("a").to_list() == [1, None]
        assert df.column("b").to_list() == [None, 2]

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        df = DataFrame()
        assert df.shape == (0, 0)
        assert df.empty

    def test_missing_column_raises_with_suggestions(self):
        df = DataFrame({"activity_id": ["a"]})
        with pytest.raises(ColumnNotFoundError) as err:
            df.column("node")
        assert "activity_id" in str(err.value)


class TestIndexing:
    def test_string_key_returns_column(self, task_frame):
        assert task_frame["status"].name == "status"

    def test_list_of_strings_projects(self, task_frame):
        sub = task_frame[["task_id", "status"]]
        assert sub.columns == ["task_id", "status"]

    def test_boolean_mask_filters(self, task_frame):
        out = task_frame[task_frame["status"] == "FINISHED"]
        assert len(out) == 2

    def test_bad_key_type(self, task_frame):
        with pytest.raises(TypeError):
            task_frame[42]


class TestRowOps:
    def test_head_tail(self, task_frame):
        assert len(task_frame.head(2)) == 2
        assert task_frame.tail(1).row(0)["task_id"] == "1000.4_3"

    def test_head_beyond_length(self, task_frame):
        assert len(task_frame.head(100)) == 4

    def test_sort_values_single_key(self, task_frame):
        out = task_frame.sort_values("duration")
        durations = out.column("duration").to_list()
        assert durations[:3] == [0.5, 0.5, 2.0]
        assert durations[3] is None  # nulls last

    def test_sort_descending_nulls_still_last(self, task_frame):
        out = task_frame.sort_values("duration", ascending=False)
        assert out.column("duration").to_list()[-1] is None

    def test_multi_key_sort(self):
        df = DataFrame({"a": [1, 1, 0], "b": [2.0, 1.0, 9.0]})
        out = df.sort_values(["a", "b"], ascending=[True, False])
        assert out.column("b").to_list() == [9.0, 2.0, 1.0]

    def test_nlargest(self, task_frame):
        out = task_frame.nlargest(1, "telemetry_at_end.cpu.percent")
        assert out.row(0)["hostname"] == "frontier00085"

    def test_drop_duplicates_subset(self, task_frame):
        out = task_frame.drop_duplicates(subset="hostname")
        assert len(out) == 3

    def test_dropna_subset(self, task_frame):
        out = task_frame.dropna(subset=["duration"])
        assert len(out) == 3

    def test_filter_mask_length_checked(self, task_frame):
        with pytest.raises(LengthMismatchError):
            task_frame.filter(np.array([True]))


class TestAssignSelect:
    def test_assign_adds_column(self, task_frame):
        out = task_frame.assign(double=task_frame["duration"] * 2)
        assert out.column("double").to_list()[0] == 4.0
        assert "double" not in task_frame  # immutability

    def test_assign_wrong_length(self, task_frame):
        with pytest.raises(LengthMismatchError):
            task_frame.assign(bad=[1])

    def test_drop(self, task_frame):
        out = task_frame.drop("status")
        assert "status" not in out

    def test_drop_missing_raises(self, task_frame):
        with pytest.raises(ColumnNotFoundError):
            task_frame.drop("nope")

    def test_rename(self, task_frame):
        out = task_frame.rename({"status": "state"})
        assert "state" in out and "status" not in out


class TestExport:
    def test_to_dicts_roundtrip(self, task_records):
        df = DataFrame.from_records(task_records)
        assert df.to_dicts() == [
            {k: r.get(k) for k in df.columns} for r in task_records
        ]

    def test_row_out_of_range(self, task_frame):
        with pytest.raises(IndexError):
            task_frame.row(99)

    def test_to_string_contains_header_and_ellipsis(self, task_frame):
        s = task_frame.to_string(max_rows=2)
        assert "task_id" in s
        assert "more rows" in s

    def test_itertuples(self, task_frame):
        rows = list(task_frame.itertuples())
        assert len(rows) == 4
        assert rows[0][0] == "1000.1_0"


class TestEquals:
    def test_equal_frames(self):
        a = DataFrame({"x": [1.0, 2.0]})
        b = DataFrame({"x": [1.0, 2.0 + 1e-15]})
        assert a.equals(b)

    def test_unequal_values(self):
        assert not DataFrame({"x": [1]}).equals(DataFrame({"x": [2]}))

    def test_unequal_columns(self):
        assert not DataFrame({"x": [1]}).equals(DataFrame({"y": [1]}))


class TestConcat:
    def test_union_of_columns(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [2]})
        out = concat([a, b])
        assert out.columns == ["x", "y"]
        assert out.column("x").to_list() == [1, None]

    def test_concat_empty_list(self):
        assert concat([]).empty

    def test_concat_preserves_order(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"x": [3]})
        assert concat([a, b]).column("x").to_list() == [1, 2, 3]


class TestAggShortcuts:
    def test_frame_agg_spec(self, task_frame):
        out = task_frame.agg({"duration": ["min", "max"], "status": "count"})
        assert out["duration"]["min"] == 0.5
        assert out["status"] == 4

    def test_count_per_column(self, task_frame):
        counts = task_frame.count()
        assert counts["duration"] == 3
        assert counts["task_id"] == 4
