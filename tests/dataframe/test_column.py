"""Tests for Column: comparisons, aggregations, ordering, string ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe.column import Column
from repro.errors import AggregationError


class TestConstruction:
    def test_infers_dtype(self):
        assert Column("x", [1, 2]).dtype == "int64"
        assert Column("x", [1.5]).dtype == "float64"
        assert Column("x", ["a"]).dtype == "object"

    def test_iteration_restores_python_values(self):
        col = Column("x", [1.5, None, 2.5])
        assert col.to_list() == [1.5, None, 2.5]

    def test_getitem(self):
        col = Column("x", [10, 20])
        assert col[1] == 20
        assert isinstance(col[1], int)

    def test_rename_shares_storage(self):
        a = Column("x", [1, 2])
        b = a.rename("y")
        assert b.name == "y"
        assert b.to_numpy() is a.to_numpy()


class TestComparisons:
    def test_numeric_comparison(self):
        col = Column("x", [1.0, 5.0, 3.0])
        assert (col > 2.0).tolist() == [False, True, True]

    def test_equality_on_strings(self):
        col = Column("s", ["a", "b", "a"])
        assert (col == "a").tolist() == [True, False, True]

    def test_null_never_matches(self):
        col = Column("x", [1.0, None])
        assert (col > 0).tolist() == [True, False]
        assert (col == 1.0).tolist() == [True, False]

    def test_mixed_type_comparison_is_false_not_error(self):
        col = Column("s", ["a", None, "b"])
        assert (col > 5).tolist() == [False, False, False]

    def test_isin(self):
        col = Column("s", ["a", "b", "c"])
        assert col.isin(["a", "c"]).tolist() == [True, False, True]

    def test_between_inclusive(self):
        col = Column("x", [1.0, 2.0, 3.0])
        assert col.between(1.0, 2.0).tolist() == [True, True, False]

    def test_column_vs_column(self):
        a = Column("a", [1.0, 5.0])
        b = Column("b", [2.0, 2.0])
        assert (a > b).tolist() == [False, True]


class TestAggregations:
    def test_sum_mean_skip_nulls(self):
        col = Column("x", [1.0, None, 3.0])
        assert col.sum() == 4.0
        assert col.mean() == 2.0

    def test_median(self):
        assert Column("x", [1.0, 9.0, 2.0]).median() == 2.0

    def test_std_sample(self):
        col = Column("x", [1.0, 2.0, 3.0])
        assert col.std() == pytest.approx(1.0)

    def test_std_of_single_value_is_none(self):
        assert Column("x", [1.0]).std() is None

    def test_min_max_on_strings(self):
        col = Column("s", ["b", "a", "c"])
        assert col.min() == "a"
        assert col.max() == "c"

    def test_count_ignores_nulls(self):
        assert Column("x", [1.0, None, 2.0]).count() == 2

    def test_nunique_and_unique_preserve_first_seen_order(self):
        col = Column("s", ["b", "a", "b", None])
        assert col.nunique() == 2
        assert col.unique() == ["b", "a"]

    def test_idxmin_idxmax(self):
        col = Column("x", [3.0, 1.0, 2.0])
        assert col.idxmin() == 1
        assert col.idxmax() == 0

    def test_idxmin_all_nan_is_none(self):
        assert Column("x", [None, None]).idxmin() is None

    def test_numeric_agg_on_object_column_raises(self):
        with pytest.raises(AggregationError):
            Column("s", ["a"]).mean()

    def test_empty_aggregations(self):
        col = Column("x", [])
        assert col.sum() == 0.0
        assert col.mean() is None
        assert col.min() is None

    def test_agg_dispatch(self):
        col = Column("x", [2.0, 4.0])
        assert col.agg("mean") == 3.0
        with pytest.raises(AggregationError):
            col.agg("frobnicate")


class TestOrdering:
    def test_argsort_ascending(self):
        col = Column("x", [3.0, 1.0, 2.0])
        assert col.argsort(True).tolist() == [1, 2, 0]

    def test_argsort_descending(self):
        col = Column("x", [3.0, 1.0, 2.0])
        assert col.argsort(False).tolist() == [0, 2, 1]

    def test_nulls_sort_last_both_directions(self):
        col = Column("x", [None, 1.0, 2.0])
        assert col.argsort(True).tolist()[-1] == 0
        assert col.argsort(False).tolist()[-1] == 0

    def test_string_sort(self):
        col = Column("s", ["b", "a", "c"])
        assert col.argsort(True).tolist() == [1, 0, 2]

    def test_stable_on_ties(self):
        col = Column("x", [1.0, 1.0, 0.0])
        assert col.argsort(True).tolist() == [2, 0, 1]


class TestStringAccessor:
    def test_contains(self):
        col = Column("s", ["C-H_1", "C-C_1", None])
        assert col.str.contains("C-H").tolist() == [True, False, False]

    def test_contains_case_insensitive(self):
        col = Column("s", ["Run_DFT"])
        assert col.str.contains("run_dft", case=False).tolist() == [True]

    def test_startswith_endswith(self):
        col = Column("s", ["frontier00084"])
        assert col.str.startswith("frontier").tolist() == [True]
        assert col.str.endswith("84").tolist() == [True]

    def test_non_string_values_are_false(self):
        col = Column("s", [1, "ab"])
        assert col.str.contains("a").tolist() == [False, True]

    def test_lower_upper(self):
        col = Column("s", ["Ab"])
        assert col.str.lower().to_list() == ["ab"]
        assert col.str.upper().to_list() == ["AB"]


class TestArithmetic:
    def test_subtract_columns(self):
        a = Column("end", [3.0, 5.0])
        b = Column("start", [1.0, 2.0])
        assert (a - b).to_list() == [2.0, 3.0]

    def test_scalar_ops(self):
        col = Column("x", [1.0, 2.0])
        assert (col * 2).to_list() == [2.0, 4.0]
        assert (col + 1).to_list() == [2.0, 3.0]

    def test_arith_on_object_raises(self):
        with pytest.raises(AggregationError):
            Column("s", ["a"]) + 1

    def test_null_propagates(self):
        col = Column("x", [1.0, None])
        assert (col + 1).to_list() == [2.0, None]


class TestTakeMask:
    def test_take(self):
        col = Column("x", [10, 20, 30])
        assert col.take([2, 0]).to_list() == [30, 10]

    def test_mask(self):
        col = Column("x", [10, 20, 30])
        assert col.mask(np.array([True, False, True])).to_list() == [10, 30]

    def test_apply(self):
        col = Column("x", [1, None, 3])
        assert col.apply(lambda v: v * 10).to_list() == [10, None, 30]
