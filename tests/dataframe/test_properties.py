"""Property-based tests for the DataFrame engine (hypothesis).

The engine is checked against naive pure-Python reference implementations
on randomly generated frames — filters, sorts and groupbys must agree
with the obvious O(n^2) formulation for every input.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame, concat

# Small alphabets keep group cardinality interesting.
_keys = st.sampled_from(["a", "b", "c"])
_values = st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32))


@st.composite
def frames(draw, min_rows=0, max_rows=30):
    n = draw(st.integers(min_rows, max_rows))
    return DataFrame(
        {
            "k": draw(st.lists(_keys, min_size=n, max_size=n)),
            "v": draw(st.lists(_values, min_size=n, max_size=n)),
        }
    )


class TestFilterProperties:
    @given(frames(), st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_filter_matches_naive(self, df, threshold):
        out = df[df["v"] > threshold]
        expected = [
            r for r in df.to_dicts() if r["v"] is not None and r["v"] > threshold
        ]
        assert out.to_dicts() == expected

    @given(frames())
    def test_filter_complement_partitions_rows(self, df):
        mask = df["v"] > 0
        assert len(df[mask]) + len(df[~mask]) == len(df)

    @given(frames(), st.sampled_from(["a", "b", "c"]))
    def test_eq_filter_only_keeps_matches(self, df, key):
        out = df[df["k"] == key]
        assert all(r["k"] == key for r in out.to_dicts())


class TestSortProperties:
    @given(frames())
    def test_sort_is_permutation(self, df):
        out = df.sort_values("v")
        assert sorted(map(repr, out.to_dicts())) == sorted(map(repr, df.to_dicts()))

    @given(frames())
    def test_sorted_non_null_prefix_is_monotone(self, df):
        out = df.sort_values("v").column("v").to_list()
        non_null = [v for v in out if v is not None]
        assert non_null == sorted(non_null)
        # nulls must be a suffix
        if None in out:
            assert all(v is None for v in out[out.index(None):])

    @given(frames())
    def test_sort_desc_reverses_non_null_order(self, df):
        asc = [v for v in df.sort_values("v").column("v").to_list() if v is not None]
        desc = [
            v
            for v in df.sort_values("v", ascending=False).column("v").to_list()
            if v is not None
        ]
        assert desc == list(reversed(asc))


class TestGroupByProperties:
    @given(frames())
    def test_group_sizes_sum_to_total(self, df):
        sizes = df.groupby("k").size()
        assert sum(sizes.column("size").to_list()) == len(df)

    @given(frames())
    def test_group_sum_matches_naive(self, df):
        out = {
            r["k"]: r["v"] for r in df.groupby("k")["v"].sum().to_dicts()
        }
        naive: dict[str, float] = {}
        for r in df.to_dicts():
            naive.setdefault(r["k"], 0.0)
            if r["v"] is not None:
                naive[r["k"]] += r["v"]
        for k, total in naive.items():
            assert abs(out[k] - total) < 1e-6 * max(1.0, abs(total))

    @given(frames())
    def test_groupby_count_never_exceeds_size(self, df):
        counts = {r["k"]: r["v"] for r in df.groupby("k")["v"].count().to_dicts()}
        sizes = {r["k"]: r["size"] for r in df.groupby("k").size().to_dicts()}
        for k in counts:
            assert counts[k] <= sizes[k]


class TestConcatProperties:
    @given(frames(), frames())
    @settings(max_examples=50)
    def test_concat_length(self, a, b):
        assert len(concat([a, b])) == len(a) + len(b)

    @given(frames())
    def test_concat_identity(self, df):
        assert concat([df]).equals(df)


class TestHeadProperties:
    @given(frames(), st.integers(0, 40))
    def test_head_length(self, df, n):
        assert len(df.head(n)) == min(n, len(df))

    @given(frames(), st.integers(0, 40))
    def test_head_plus_tail_cover(self, df, n):
        assert len(df.head(n)) + len(df.tail(max(0, len(df) - n))) == len(df)
