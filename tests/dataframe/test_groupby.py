"""Tests for the group-by engine."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.errors import ColumnNotFoundError


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame(
        {
            "activity": ["a", "b", "a", "a", "b"],
            "host": ["h1", "h1", "h2", "h2", "h1"],
            "dur": [1.0, 2.0, 3.0, None, 4.0],
        }
    )


class TestGroupBy:
    def test_selected_column_mean(self, frame):
        out = frame.groupby("activity")["dur"].mean()
        assert out.to_dicts() == [
            {"activity": "a", "dur": 2.0},
            {"activity": "b", "dur": 3.0},
        ]

    def test_group_order_is_first_appearance(self, frame):
        out = frame.groupby("host")["dur"].count()
        assert out.column("host").to_list() == ["h1", "h2"]

    def test_multi_key_grouping(self, frame):
        # pairs: (a,h1), (b,h1), (a,h2), (a,h2), (b,h1) -> 3 distinct groups
        out = frame.groupby(["activity", "host"])["dur"].sum()
        assert len(out) == 3

    def test_size(self, frame):
        out = frame.groupby("activity").size()
        assert out.to_dicts() == [
            {"activity": "a", "size": 3},
            {"activity": "b", "size": 2},
        ]

    def test_agg_spec_multiple(self, frame):
        out = frame.groupby("activity").agg({"dur": ["min", "max"]})
        row = out.to_dicts()[0]
        assert row["dur_min"] == 1.0 and row["dur_max"] == 3.0

    def test_count_skips_nulls(self, frame):
        out = frame.groupby("activity")["dur"].count()
        assert out.to_dicts()[0]["dur"] == 2

    def test_missing_group_key_raises(self, frame):
        with pytest.raises(ColumnNotFoundError):
            frame.groupby("nope")

    def test_missing_selected_column_raises(self, frame):
        with pytest.raises(ColumnNotFoundError):
            frame.groupby("activity")["nope"]

    def test_frame_level_mean_aggregates_numeric_columns(self, frame):
        out = frame.groupby("activity").mean()
        assert "dur" in out.columns
        assert "host" not in out.columns or out.column("host") is not None

    def test_len_is_group_count(self, frame):
        assert len(frame.groupby("activity")) == 2

    def test_groups_mapping(self, frame):
        groups = frame.groupby("activity").groups()
        assert groups[("a",)] == [0, 2, 3]

    def test_nunique(self, frame):
        out = frame.groupby("activity")["host"].nunique()
        assert out.to_dicts() == [
            {"activity": "a", "host": 2},
            {"activity": "b", "host": 1},
        ]

    def test_first_last(self, frame):
        first = frame.groupby("activity")["dur"].first()
        assert first.to_dicts()[0]["dur"] == 1.0
        last = frame.groupby("activity")["dur"].last()
        assert last.to_dicts()[1]["dur"] == 4.0
