"""Tests for dtype inference and storage."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dataframe import dtypes as dt


class TestInferDtype:
    @pytest.mark.parametrize(
        "values,expected",
        [
            ([1, 2, 3], dt.INT),
            ([1.0, 2.5], dt.FLOAT),
            ([1, 2.5], dt.FLOAT),
            ([True, False], dt.BOOL),
            (["a", "b"], dt.OBJECT),
            ([1, None], dt.FLOAT),
            ([None, None], dt.FLOAT),
            ([], dt.OBJECT),
            ([{"k": 1}], dt.OBJECT),
            ([1, "a"], dt.OBJECT),
            ([True, 1], dt.OBJECT),
            ([True, None], dt.OBJECT),
        ],
    )
    def test_inference_table(self, values, expected):
        assert dt.infer_dtype(values) == expected

    def test_nan_counts_as_null(self):
        assert dt.infer_dtype([1, float("nan")]) == dt.FLOAT

    def test_numpy_scalars_recognised(self):
        assert dt.infer_dtype([np.int64(1), np.int64(2)]) == dt.INT
        assert dt.infer_dtype([np.float64(1.5)]) == dt.FLOAT
        assert dt.infer_dtype([np.bool_(True)]) == dt.BOOL


class TestToStorage:
    def test_float_storage_uses_nan_for_null(self):
        arr = dt.to_storage([1.5, None], dt.FLOAT)
        assert arr.dtype == np.float64
        assert math.isnan(arr[1])

    def test_int_storage(self):
        arr = dt.to_storage([1, 2], dt.INT)
        assert arr.dtype == np.int64

    def test_object_storage_normalises_nan_to_none(self):
        arr = dt.to_storage(["a", float("nan")], dt.OBJECT)
        assert arr[1] is None


class TestPromote:
    def test_same_dtype_identity(self):
        assert dt.promote(dt.INT, dt.INT) == dt.INT

    def test_int_float_promotes_to_float(self):
        assert dt.promote(dt.INT, dt.FLOAT) == dt.FLOAT

    def test_mixed_promotes_to_object(self):
        assert dt.promote(dt.BOOL, dt.FLOAT) == dt.OBJECT
        assert dt.promote(dt.OBJECT, dt.INT) == dt.OBJECT
