"""Tests for the plotting, summary, and database-query tools."""

from __future__ import annotations

import pytest

from repro.agent.agent import ProvenanceAgent
from repro.agent.tools.summarize import summarize
from repro.capture.context import CaptureContext
from repro.dataframe import DataFrame
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.workflows.synthetic import run_synthetic_campaign


@pytest.fixture(scope="module")
def env():
    ctx = CaptureContext()
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    agent = ProvenanceAgent(ctx, model="gpt-4", query_api=QueryAPI(keeper.database))
    run_synthetic_campaign(ctx, n_inputs=8)
    return ctx, keeper, agent


class TestSummarize:
    def test_scalar(self):
        assert summarize(42) == "The answer is 42."

    def test_float_formatting(self):
        assert summarize(98.64865792890485) == "The answer is 98.6487."

    def test_empty_frame(self):
        assert "no tasks" in summarize(DataFrame({"a": []})).lower()

    def test_one_by_one_frame(self):
        assert summarize(DataFrame({"x": [7]})) == "The answer is 7."

    def test_single_row_lists_fields(self):
        out = summarize(DataFrame({"a": [1], "b": ["x"]}))
        assert "a = 1" in out and "b = x" in out

    def test_multi_row_mentions_count(self):
        out = summarize(DataFrame({"a": [1, 2, 3]}))
        assert out.startswith("3 rows")

    def test_unique_list(self):
        out = summarize(["B3LYP"])
        assert "B3LYP" in out

    def test_long_list_truncated(self):
        out = summarize([str(i) for i in range(20)])
        assert "12 more" in out

    def test_chemical_enrichment(self):
        out = summarize(
            DataFrame({"used.multiplicity": [1], "used.charge": [0]})
        )
        assert "singlet" in out and "neutral" in out

    def test_doublet_enrichment(self):
        out = summarize(DataFrame({"used.multiplicity": [2], "used.charge": [0]}))
        assert "doublet" in out

    def test_none(self):
        assert summarize(None) == "No result."


class TestPlottingTool:
    def test_plot_of_grouped_data(self, env):
        _, _, agent = env
        reply = agent.chat("Plot a bar graph of the average duration per activity.")
        assert reply.ok and reply.chart is not None
        assert "duration" in reply.chart

    def test_plot_failure_without_plottable_result(self, env):
        _, _, agent = env
        result = agent.plot_tool.invoke(question="plot how many tasks finished")
        # a count is scalar -> not plottable rows
        assert not result.ok

    def test_axis_inference(self):
        from repro.agent.tools.plotting import _pick_axes

        frame = DataFrame({"label": ["a"], "started_at": [1.0], "value": [2.0]})
        label, value = _pick_axes(frame)
        assert label == "label"
        assert value == "value"  # *_at columns skipped


class TestDatabaseQueryTool:
    def test_historical_question_routed_to_db(self, env):
        _, keeper, agent = env
        reply = agent.chat("From the database history, how many tasks have finished?")
        assert reply.intent.value == "historical_query"
        assert reply.ok
        assert str(keeper.database.count({"type": "task", "status": "FINISHED"})) in reply.text

    def test_db_tool_reports_bad_query(self, env):
        _, _, agent = env
        result = agent.db_tool.invoke(question="")
        assert not result.ok


class TestQueryToolRetry:
    def test_attempts_recorded(self, env):
        _, _, agent = env
        result = agent.query_tool.invoke(question="How many tasks have finished?")
        assert result.ok
        assert result.details["attempts"] >= 1
