"""Concurrent heterogeneous workflows streaming into one agent.

The paper claims the design "supports interactive use across multiple
concurrent and agentic workflows" — here the synthetic campaign, the
chemistry workflow, and the LPBF build all stream into the same hub;
the agent's schema merges all three domains and queries can target each
by workflow/activity.
"""

from __future__ import annotations

import threading

import pytest

from repro.agent.agent import ProvenanceAgent
from repro.capture.context import CaptureContext
from repro.provenance.keeper import ProvenanceKeeper
from repro.workflows.chemistry import run_bde_workflow
from repro.workflows.manufacturing import run_lpbf_build
from repro.workflows.synthetic import run_synthetic_campaign


@pytest.fixture(scope="module")
def multi_env():
    ctx = CaptureContext()
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    agent = ProvenanceAgent(ctx, model="gpt-4")

    threads = [
        threading.Thread(target=run_synthetic_campaign, args=(ctx,), kwargs={"n_inputs": 5}),
        threading.Thread(target=run_bde_workflow, args=("CCO", ctx), kwargs={"n_conformers": 2}),
        threading.Thread(target=run_lpbf_build, args=("part-X", ctx), kwargs={"height_mm": 0.4}),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    ctx.flush()
    return ctx, keeper, agent


class TestMergedContext:
    def test_all_domains_in_schema(self, multi_env):
        _, _, agent = multi_env
        fields = set(agent.context_manager.schema.dataflow_fields)
        assert "generated.value" in fields  # synthetic
        assert "generated.bd_energy" in fields  # chemistry
        assert "generated.melt_pool_temp_k" in fields  # manufacturing

    def test_activity_namespaces_disjoint(self, multi_env):
        _, _, agent = multi_env
        acts = set(agent.context_manager.schema.activities)
        assert {"power", "run_dft", "laser_melt"} <= acts

    def test_no_messages_lost_under_concurrency(self, multi_env):
        ctx, keeper, agent = multi_env
        # keeper and context manager both subscribed to the same hub
        assert keeper.database.count({"type": "task"}) == agent.context_manager.buffer_count

    def test_cross_domain_grouping_query(self, multi_env):
        _, _, agent = multi_env
        reply = agent.chat("How many tasks were executed per activity?")
        assert reply.ok
        activities = {r["activity_id"] for r in reply.table.to_dicts()}
        assert {"power", "run_dft", "laser_melt"} <= activities

    def test_workflow_attribution_correct_under_concurrency(self, multi_env):
        """Thread-local workflow scopes: a chemistry task must never be
        attributed to the synthetic run's workflow_id."""
        _, keeper, _ = multi_env
        for doc in keeper.database.find({"activity_id": "run_dft"}):
            wf = keeper.database.find_one(
                {"type": "workflow", "workflow_id": doc["workflow_id"]}
            )
            assert wf is not None
            assert wf["activity_id"] == "chemistry_bde_workflow"
        for doc in keeper.database.find({"activity_id": "laser_melt"}):
            wf = keeper.database.find_one(
                {"type": "workflow", "workflow_id": doc["workflow_id"]}
            )
            assert wf["activity_id"] == "lpbf_build_workflow"

    def test_domain_scoped_query(self, multi_env):
        _, _, agent = multi_env
        from repro.llm.intents import register_intent
        from repro.query import parse_query

        nl = "How many DFT calculations ran?"
        register_intent(nl, parse_query("len(df[df['activity_id'] == 'run_dft'])"))
        reply = agent.chat(nl)
        assert reply.ok
        assert "17" in reply.text  # 1 parent + 2 x 8 bonds
