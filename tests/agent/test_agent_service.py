"""AgentService: multi-session serving, isolation, ordering, stats."""

from __future__ import annotations

import random
import threading

import pytest

from repro.agent.prompts import PromptConfig
from repro.agent.service import AgentService
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.storage import ProvenanceDatabase


def _task_docs(n: int) -> list[dict]:
    rng = random.Random(5)
    docs = []
    for i in range(n):
        started = 1000.0 + rng.random() * 100
        docs.append(
            {
                "type": "task",
                "task_id": f"t{i}",
                "workflow_id": f"wf-{i % 4}",
                "campaign_id": "svc-test",
                "activity_id": f"a{i % 3}",
                "status": "FINISHED",
                "started_at": started,
                "ended_at": started + 1.0,
                "duration": 1.0,
                "used": {"x": i},
                "generated": {"y": i * 2},
            }
        )
    return docs


@pytest.fixture
def service():
    store = ProvenanceDatabase()
    docs = _task_docs(60)
    store.upsert_many(docs)
    ctx = CaptureContext()
    svc = AgentService(ctx, query_api=QueryAPI(store))
    ctx.broker.publish_batch("provenance.task", docs)
    yield svc
    svc.close()


class TestSessions:
    def test_create_and_lookup(self, service):
        s = service.create_session("alice")
        assert service.session("alice") is s
        assert s.session_id == "alice"

    def test_auto_ids_unique(self, service):
        a = service.create_session()
        b = service.create_session()
        assert a.session_id != b.session_id

    def test_duplicate_rejected(self, service):
        service.create_session("alice")
        with pytest.raises(ValueError):
            service.create_session("alice")

    def test_unknown_session_rejected(self, service):
        with pytest.raises(KeyError):
            service.chat("nobody", "hello")

    def test_get_or_create(self, service):
        a = service.get_or_create_session("alice")
        assert service.get_or_create_session("alice") is a


class TestSessionIsolation:
    def test_guidelines_do_not_leak(self, service):
        service.create_session("alice")
        service.create_session("bob")
        reply = service.chat("alice", "use the field lr to filter learning rates")
        assert reply.intent.value == "add_guideline"
        alice, bob = service.session("alice"), service.session("bob")
        assert len(alice.guidelines.user_defined) == 1
        assert len(bob.guidelines.user_defined) == 0
        assert "lr" in alice.guidelines_text()
        assert "lr" not in bob.guidelines_text()

    def test_guideline_reaches_only_that_sessions_prompts(self, service):
        service.create_session("alice")
        service.create_session("bob")
        service.chat("alice", "use the field lr to filter learning rates")
        service.llm.keep_history = True
        service.chat("alice", "How many tasks have finished?")
        alice_prompt = service.llm.history[-1][0].prompt
        service.chat("bob", "How many tasks have finished?")
        bob_prompt = service.llm.history[-1][0].prompt
        assert "lr" in alice_prompt
        assert "lr" not in bob_prompt

    def test_prompt_config_is_per_session(self, service):
        full = service.create_session("alice")
        bare = service.create_session(
            "bob", prompt_config=PromptConfig().with_baseline()
        )
        assert full.prompt_config != bare.prompt_config
        service.llm.keep_history = True
        service.chat("alice", "How many tasks have finished?")
        alice_prompt = service.llm.history[-1][0].prompt
        service.chat("bob", "How many tasks have finished?")
        bob_prompt = service.llm.history[-1][0].prompt
        # the full config carries schema/guidelines sections; bare doesn't
        assert len(bob_prompt) < len(alice_prompt)

    def test_history_is_per_session(self, service):
        service.create_session("alice")
        service.create_session("bob")
        service.chat("alice", "hello!")
        service.chat("bob", "How many tasks have finished?")
        alice, bob = service.session("alice"), service.session("bob")
        assert [m for m, _ in alice.history] == ["hello!"]
        assert [m for m, _ in bob.history] == ["How many tasks have finished?"]
        assert len(alice.turns) == 1 and len(bob.turns) == 1

    def test_recorder_identity_is_per_session(self):
        store = ProvenanceDatabase()
        ctx = CaptureContext()
        keeper = ProvenanceKeeper(ctx.broker, store)
        keeper.start()
        svc = AgentService(ctx, query_api=QueryAPI(store), keeper=keeper)
        try:
            svc.create_session("alice")
            svc.create_session("bob")
            svc.chat("alice", "hello!")
            svc.chat("bob", "hello!")
            execs = store.find({"type": "tool_execution"})
            agents = {d["agent_id"] for d in execs}
            workflows = {d["workflow_id"] for d in execs}
            assert agents == {
                "provenance-agent/alice",
                "provenance-agent/bob",
            }
            assert workflows == {
                "agent-session/alice",
                "agent-session/bob",
            }
        finally:
            svc.close()

    def test_model_override_per_session(self, service):
        service.create_session("alice", model="llama3-8b")
        service.llm.keep_history = True
        service.chat("alice", "How many tasks have finished?")
        assert service.llm.history[-1][0].model == "llama3-8b"


class TestServing:
    def test_chat_matches_submit(self, service):
        service.create_session("a")
        service.create_session("b")
        direct = service.chat("a", "How many tasks have finished?")
        queued = service.submit("b", "How many tasks have finished?").result()
        assert direct.ok and queued.ok
        assert direct.text == queued.text

    def test_per_session_fifo_under_concurrent_submit(self, service):
        sessions = [f"s{i}" for i in range(4)]
        for sid in sessions:
            service.create_session(sid)
        scripts = {
            sid: [
                "hello!",
                "How many tasks have finished?",
                "use the field lr to filter learning rates",
                "What is the average duration per activity?",
            ]
            for sid in sessions
        }
        futures = []
        for turn in range(4):
            for sid in sessions:
                futures.append(service.submit(sid, scripts[sid][turn]))
        for f in futures:
            assert f.result() is not None
        for sid in sessions:
            assert [m for m, _ in service.session(sid).history] == scripts[sid]

    def test_concurrent_chat_from_many_threads(self, service):
        for i in range(6):
            service.create_session(f"u{i}")
        errors: list[BaseException] = []

        def user(i: int) -> None:
            try:
                for _ in range(3):
                    reply = service.chat(f"u{i}", "How many tasks have finished?")
                    assert reply.ok and "60" in reply.text
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=user, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.stats()["turns_completed"] == 18

    def test_replies_identical_across_interleavings(self, service):
        # serialized on one session vs pool-driven on another: same script
        service.create_session("serial")
        service.create_session("pooled")
        script = [
            "How many tasks have finished?",
            "In the database, how many tasks have finished?",
            "What is the average duration per activity?",
        ]
        serial = [service.chat("serial", q) for q in script]
        pooled = [f.result() for f in [service.submit("pooled", q) for q in script]]
        assert [(r.text, r.ok, r.code) for r in serial] == [
            (r.text, r.ok, r.code) for r in pooled
        ]

    def test_submit_after_close_rejected(self, service):
        service.create_session("a")
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("a", "hello")


class TestStatsAndMCP:
    def test_stats_shape(self, service):
        service.create_session("alice")
        service.chat("alice", "How many tasks have finished?")
        stats = service.stats()
        assert stats["sessions"] == 1
        assert stats["turns_completed"] == 1
        assert stats["llm"]["requests"] >= 1
        assert "hit_rate" in stats["query_cache"]

    def test_serving_stats_mcp_resource(self, service):
        from repro.agent.mcp.client import MCPClient

        service.create_session("alice")
        service.chat("alice", "In the database, how many tasks have finished?")
        payload = MCPClient(service.mcp).read_resource("serving-stats")
        assert payload["turns_completed"] == 1
        assert payload["llm"]["requests"] >= 1
        assert payload["llm"]["latency_p50_s"] is not None

    def test_lineage_stats_carries_llm_accounting(self, service):
        from repro.agent.mcp.client import MCPClient

        service.create_session("alice")
        service.chat("alice", "How many tasks have finished?")
        payload = MCPClient(service.mcp).read_resource("lineage-stats")
        assert payload["llm"]["requests"] >= 1


class TestTurnPipeline:
    def test_llm_interaction_recorded_for_db_turns(self):
        # pre-refactor, db-tool turns recorded a stale LLM interaction
        # (the in-memory tool's last response); now the actual response
        # travels in the tool result
        store = ProvenanceDatabase()
        store.upsert_many(_task_docs(10))
        ctx = CaptureContext()
        keeper_store = ProvenanceDatabase()
        keeper = ProvenanceKeeper(ctx.broker, keeper_store)
        keeper.start()
        svc = AgentService(ctx, query_api=QueryAPI(store), keeper=keeper)
        try:
            svc.create_session("alice")
            reply = svc.chat(
                "alice", "In the database, how many tasks have finished?"
            )
            assert reply.ok
            llm_docs = keeper_store.find({"type": "llm_interaction"})
            assert len(llm_docs) == 1
            assert llm_docs[0]["informed_by"]
            tool_doc = keeper_store.find_one(
                {"task_id": llm_docs[0]["informed_by"]}
            )
            assert tool_doc["activity_id"] == "provenance_db_query"
        finally:
            svc.close()

    def test_greeting_records_no_llm_interaction(self):
        ctx = CaptureContext()
        keeper_store = ProvenanceDatabase()
        keeper = ProvenanceKeeper(ctx.broker, keeper_store)
        keeper.start()
        svc = AgentService(ctx, keeper=keeper)
        try:
            svc.create_session("alice")
            svc.chat("alice", "hello!")
            assert keeper_store.count({"type": "llm_interaction"}) == 0
            assert keeper_store.count({"type": "tool_execution"}) == 1
        finally:
            svc.close()


class TestGetOrCreateRace:
    def test_concurrent_get_or_create_returns_one_session(self, service):
        import threading as _threading

        results, errors = [], []
        barrier = _threading.Barrier(8)

        def worker():
            try:
                barrier.wait(5)
                results.append(service.get_or_create_session("shared"))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [_threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({id(s) for s in results}) == 1


class TestGracefulClose:
    """close() drains accepted turns, rejects new work, and is idempotent."""

    def _service(self):
        store = ProvenanceDatabase()
        docs = _task_docs(40)
        store.upsert_many(docs)
        ctx = CaptureContext()
        svc = AgentService(ctx, query_api=QueryAPI(store))
        ctx.broker.publish_batch("provenance.task", docs)
        return svc

    def test_submit_just_before_close_resolves(self):
        """The regression: a turn accepted right before close() must
        resolve its future with a real reply, never dangle."""
        svc = self._service()
        svc.create_session("alice")
        futures = [
            svc.submit("alice", "How many tasks have finished?")
            for _ in range(4)
        ]
        svc.close()
        replies = [f.result(timeout=10) for f in futures]
        assert all(r.ok for r in replies)
        assert svc.stats()["turns_completed"] == 4
        assert svc.stats()["turns_queued"] == 0

    def test_many_sessions_drain_on_close(self):
        svc = self._service()
        futures = []
        for i in range(5):
            svc.create_session(f"s{i}")
            futures.extend(
                svc.submit(f"s{i}", "How many tasks have finished?")
                for _ in range(3)
            )
        svc.close()
        assert all(f.result(timeout=10).ok for f in futures)
        assert svc.stats()["turns_queued"] == 0

    def test_double_close_is_idempotent(self):
        svc = self._service()
        svc.create_session("alice")
        svc.chat("alice", "How many tasks have finished?")
        svc.close()
        svc.close()  # second close: no error, nothing left to do
        svc.close()

    def test_submit_after_close_rejected_without_dangling(self):
        svc = self._service()
        svc.create_session("alice")
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit("alice", "hello")
        with pytest.raises(RuntimeError):
            svc.chat("alice", "hello")
        assert len(svc.session("alice")._pending) == 0

    def test_create_session_after_close_rejected(self):
        svc = self._service()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.create_session("late")

    def test_racing_submits_against_close(self):
        """Hammer close() with concurrent submitters: every future either
        resolves or its submit raised; nothing hangs."""
        svc = self._service()
        for i in range(4):
            svc.create_session(f"s{i}")
        accepted, rejected = [], []
        lock = threading.Lock()
        start = threading.Barrier(5)

        def submitter(sid: str) -> None:
            start.wait()
            for _ in range(6):
                try:
                    f = svc.submit(sid, "How many tasks have finished?")
                except RuntimeError:
                    with lock:
                        rejected.append(sid)
                    return
                with lock:
                    accepted.append(f)

        threads = [
            threading.Thread(target=submitter, args=(f"s{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        start.wait()
        svc.close()
        for t in threads:
            t.join(timeout=10)
        for f in accepted:
            assert f.result(timeout=10).ok
        assert svc.stats()["turns_queued"] == 0
