"""Tests for the Context Manager."""

from __future__ import annotations

import pytest

from repro.agent.context_manager import ContextManager
from repro.capture.context import CaptureContext
from repro.capture.instrumentation import flow_task


@pytest.fixture
def setup():
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    return ctx, cm


def emit_task(ctx, x=1):
    @flow_task(context=ctx)
    def square(x):
        return {"y": x * x}

    square(x)
    ctx.flush()


class TestIngestion:
    def test_live_messages_buffered(self, setup):
        ctx, cm = setup
        emit_task(ctx)
        assert cm.buffer_count == 1
        assert cm.messages_received == 1

    def test_frame_has_flattened_columns(self, setup):
        ctx, cm = setup
        emit_task(ctx, 3)
        frame = cm.to_frame()
        assert frame.column("used.x").to_list() == [3]
        assert frame.column("generated.y").to_list() == [9]
        assert "telemetry_at_end.cpu.percent" in frame.columns

    def test_non_task_records_ignored_by_default(self, setup):
        ctx, cm = setup
        from repro.capture.context import WorkflowRun

        with WorkflowRun("wf", ctx):
            pass
        assert cm.buffer_count == 0  # workflow records filtered out

    def test_schema_updates_with_buffer(self, setup):
        ctx, cm = setup
        emit_task(ctx)
        assert "used.x" in cm.schema.dataflow_fields

    def test_buffer_bound_respected(self):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker, buffer_size=5).start()
        for i in range(10):
            emit_task(ctx, i)
        assert cm.buffer_count == 5
        # schema still saw everything
        assert cm.schema.messages_seen == 10

    def test_stop_detaches(self, setup):
        ctx, cm = setup
        cm.stop()
        emit_task(ctx)
        assert cm.buffer_count == 0

    def test_frame_cache_invalidation(self, setup):
        ctx, cm = setup
        emit_task(ctx, 1)
        f1 = cm.to_frame()
        emit_task(ctx, 2)
        f2 = cm.to_frame()
        assert len(f1) == 1 and len(f2) == 2


class TestPromptMaterial:
    def test_payloads_nonempty_after_traffic(self, setup):
        ctx, cm = setup
        emit_task(ctx)
        assert "used.x" in cm.schema_payload()["fields"]
        assert cm.values_payload()
        assert "started_at" in cm.guidelines_text()

    def test_user_guidelines_appended(self, setup):
        _, cm = setup
        cm.add_user_guideline("use the field lr to filter learning rates")
        assert "lr" in cm.guidelines_text()
        assert "override" in cm.guidelines_text()


class TestIncrementalFrame:
    """to_frame() appends only the delta; results match a full rebuild."""

    def _rebuild(self, cm):
        from repro.dataframe import DataFrame

        return DataFrame.from_records(list(cm._buffer))

    def _assert_matches_rebuild(self, cm):
        frame, rebuilt = cm.to_frame(), self._rebuild(cm)
        assert frame.columns == rebuilt.columns
        for name in frame.columns:
            a, b = frame.column(name), rebuilt.column(name)
            assert a.dtype == b.dtype, name
            assert a.to_list() == b.to_list(), name

    def test_incremental_append_matches_full_rebuild(self, setup):
        ctx, cm = setup
        for i in range(3):
            emit_task(ctx, i)
        cm.to_frame()  # prime the cache
        for i in range(3, 7):
            emit_task(ctx, i)
        self._assert_matches_rebuild(cm)
        assert len(cm.to_frame()) == 7

    def test_unchanged_buffer_returns_same_object(self, setup):
        ctx, cm = setup
        emit_task(ctx, 1)
        f1 = cm.to_frame()
        assert cm.to_frame() is f1  # no new messages: cache reused as-is

    def test_new_columns_in_delta_backfill_nulls(self, setup):
        ctx, cm = setup
        emit_task(ctx, 1)
        cm.to_frame()

        @flow_task(context=ctx)
        def cube(x):
            return {"z": x ** 3}  # new generated.* column

        cube(2)
        ctx.flush()
        self._assert_matches_rebuild(cm)
        col = cm.to_frame().column("generated.z").to_list()
        assert col[0] is None and col[1] == 8

    def test_eviction_falls_back_to_full_rebuild(self):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker, buffer_size=4).start()
        for i in range(3):
            emit_task(ctx, i)
        cm.to_frame()
        for i in range(3, 9):  # overflows the deque: rows fall off
            emit_task(ctx, i)
        frame = cm.to_frame()
        assert len(frame) == 4
        assert frame.column("used.x").to_list() == [5, 6, 7, 8]

    def test_many_increments_stay_consistent(self, setup):
        ctx, cm = setup
        for i in range(2):
            emit_task(ctx, i)
        cm.to_frame()
        for i in range(2, 10):
            emit_task(ctx, i)
            cm.to_frame()  # append one row at a time
        self._assert_matches_rebuild(cm)
        assert cm.to_frame().column("used.x").to_list() == list(range(10))
