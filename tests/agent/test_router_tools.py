"""Tests for the tool router, tool registry, anomaly detector, and monitor."""

from __future__ import annotations

import pytest

from repro.agent.context_manager import ContextManager
from repro.agent.monitor import ContextMonitor, MonitorRule
from repro.agent.router import Intent, ToolRouter
from repro.agent.tools.anomaly import AnomalyDetectorTool
from repro.agent.tools.base import Tool, ToolRegistry, ToolResult
from repro.capture.context import CaptureContext
from repro.capture.instrumentation import flow_task
from repro.errors import ToolNotFoundError
from repro.provenance.keeper import ANOMALY_TOPIC


class TestRouter:
    @pytest.mark.parametrize(
        "text,intent",
        [
            ("hi", Intent.GREETING),
            ("Hello!", Intent.GREETING),
            ("thanks", Intent.GREETING),
            ("use the field lr to filter learning rates", Intent.ADD_GUIDELINE),
            ("From now on, sort by ended_at", Intent.ADD_GUIDELINE),
            ("Plot a bar graph of BDE per bond", Intent.VISUALIZATION),
            ("visualize cpu usage", Intent.VISUALIZATION),
            ("show me the history of past runs", Intent.HISTORICAL_QUERY),
            ("query the database for all campaigns", Intent.HISTORICAL_QUERY),
            ("How many tasks failed?", Intent.MONITORING_QUERY),
            ("", Intent.GREETING),
        ],
    )
    def test_classification(self, text, intent):
        assert ToolRouter().classify(text) == intent

    def test_llm_assist_used_when_rules_inconclusive(self):
        router = ToolRouter(llm_classify=lambda _t: "historical_query")
        assert router.classify("something cryptic") == Intent.HISTORICAL_QUERY

    def test_llm_assist_failure_falls_back(self):
        def broken(_t):
            raise RuntimeError("llm down")

        router = ToolRouter(llm_classify=broken)
        assert router.classify("something cryptic") == Intent.MONITORING_QUERY


class _EchoTool(Tool):
    name = "echo"
    description = "returns its arguments"

    def invoke(self, **kwargs):
        return ToolResult(ok=True, summary="echo", data=kwargs)


class TestRegistry:
    def test_register_and_get(self):
        reg = ToolRegistry()
        reg.register(_EchoTool())
        assert reg.get("echo").invoke(a=1).data == {"a": 1}

    def test_missing_tool(self):
        with pytest.raises(ToolNotFoundError):
            ToolRegistry().get("ghost")

    def test_describe_lists_metadata(self):
        reg = ToolRegistry()
        reg.register(_EchoTool())
        desc = reg.describe()
        assert desc[0]["name"] == "echo"
        assert "input_schema" in desc[0]


@pytest.fixture
def traffic_context():
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()

    @flow_task(context=ctx)
    def work(v):
        return {"metric": v}

    for i in range(30):
        work(10.0 + (i % 3))
    work(10_000.0)  # a blatant outlier
    ctx.flush()
    return ctx, cm


class TestAnomalyDetector:
    def test_outlier_found_and_republished(self, traffic_context):
        ctx, cm = traffic_context
        anomalies_seen = []
        ctx.broker.subscribe(ANOMALY_TOPIC, anomalies_seen.append)
        tool = AnomalyDetectorTool(cm, ctx.broker)
        result = tool.invoke(fields=["generated.metric"])
        assert result.ok
        assert any(a.field == "generated.metric" for a in result.data)
        assert anomalies_seen
        assert anomalies_seen[0].headers["anomaly"] == "statistical-outlier"

    def test_no_anomalies_in_uniform_data(self):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker).start()

        @flow_task(context=ctx)
        def steady():
            return {"metric": 5.0}

        for _ in range(20):
            steady()
        ctx.flush()
        tool = AnomalyDetectorTool(cm, ctx.broker)
        assert tool.invoke(fields=["generated.metric"]).data == []

    def test_small_samples_skipped(self):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker).start()

        @flow_task(context=ctx)
        def few(v):
            return {"metric": v}

        few(1.0), few(100.0)
        ctx.flush()
        tool = AnomalyDetectorTool(cm, ctx.broker, min_samples=8)
        assert tool.invoke(fields=["generated.metric"]).data == []

    def test_empty_buffer(self):
        ctx = CaptureContext()
        cm = ContextManager(ctx.broker).start()
        tool = AnomalyDetectorTool(cm, ctx.broker)
        result = tool.invoke()
        assert result.ok and result.data == []

    def test_candidate_fields_autodetected(self, traffic_context):
        ctx, cm = traffic_context
        tool = AnomalyDetectorTool(cm, ctx.broker)
        result = tool.invoke()  # no fields specified
        assert result.ok


class TestContextMonitor:
    def test_rule_dispatches_tool(self, traffic_context):
        ctx, cm = traffic_context
        monitor = ContextMonitor(cm)
        tool = AnomalyDetectorTool(cm, ctx.broker)
        monitor.add_rule(
            MonitorRule(
                name="always",
                condition=lambda _cm: True,
                tool=tool,
                kwargs={"fields": ["generated.metric"]},
            )
        )
        fired = monitor.poll()
        assert len(fired) == 1
        assert fired[0][0] == "always"

    def test_edge_triggering_fires_once(self, traffic_context):
        ctx, cm = traffic_context
        monitor = ContextMonitor(cm)
        tool = AnomalyDetectorTool(cm, ctx.broker)
        monitor.add_rule(
            MonitorRule(name="edge", condition=lambda _cm: True, tool=tool)
        )
        assert len(monitor.poll()) == 1
        assert len(monitor.poll()) == 0  # still True, but edge-triggered

    def test_every_n_messages_rule(self, traffic_context):
        ctx, cm = traffic_context
        monitor = ContextMonitor(cm)
        tool = AnomalyDetectorTool(cm, ctx.broker)
        monitor.every_n_messages(5, tool, fields=["generated.metric"])
        assert len(monitor.poll()) == 1  # 31 messages > 5

    def test_broken_rule_isolated(self, traffic_context):
        ctx, cm = traffic_context
        monitor = ContextMonitor(cm)

        def boom(_cm):
            raise RuntimeError("rule bug")

        monitor.add_rule(
            MonitorRule(name="bad", condition=boom, tool=AnomalyDetectorTool(cm, ctx.broker))
        )
        assert monitor.poll() == []
