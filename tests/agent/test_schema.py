"""Tests for the Dynamic Dataflow Schema."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.agent.schema import DynamicDataflowSchema


def msg(activity="square", used=None, generated=None, **extra):
    doc = {
        "task_id": "t",
        "activity_id": activity,
        "used": used or {},
        "generated": generated or {},
        "status": "FINISHED",
        "hostname": "n1",
    }
    doc.update(extra)
    return doc


class TestIncrementalInference:
    def test_fields_appear_with_types(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 3}, generated={"y": 9.5}))
        assert s.field("used.x").inferred_type == "int"
        assert s.field("generated.y").inferred_type == "float"

    def test_type_promotion_int_float(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 3}))
        s.update(msg(used={"x": 3.5}))
        assert s.field("used.x").inferred_type == "float"

    def test_mixed_types_flagged(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 3}))
        s.update(msg(used={"x": "three"}))
        assert s.field("used.x").inferred_type == "mixed"

    def test_nested_fields_flattened(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"frags": {"label": "C-H_3"}}))
        assert "used.frags.label" in s.dataflow_fields

    def test_engine_internal_fields_skipped(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"_upstream": ["t0"], "x": 1}))
        assert "used._upstream" not in s.dataflow_fields

    def test_activities_tracked(self):
        s = DynamicDataflowSchema()
        s.update(msg(activity="a"))
        s.update(msg(activity="b"))
        assert s.activities == ("a", "b")

    def test_example_values_bounded(self):
        from repro.agent.schema import _MAX_EXAMPLES

        s = DynamicDataflowSchema()
        for i in range(50):
            s.update(msg(used={"x": i}))
        assert len(s.field("used.x").examples) <= _MAX_EXAMPLES

    def test_long_strings_not_kept_as_examples(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"deck": "x" * 200}))
        assert s.field("used.deck").examples == []


class TestVolumeIndependence:
    """The paper's key property: schema size tracks complexity, not volume."""

    def test_size_stable_under_repeated_messages(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 1}, generated={"y": 2}))
        size_after_one = len(s.to_prompt_payload()["fields"])
        for i in range(500):
            s.update(msg(used={"x": i}, generated={"y": i * 2}))
        assert len(s.to_prompt_payload()["fields"]) == size_after_one

    @given(st.integers(1, 200))
    def test_property_payload_independent_of_count(self, n):
        a, b = DynamicDataflowSchema(), DynamicDataflowSchema()
        a.update(msg(used={"x": 0}))
        for i in range(n):
            b.update(msg(used={"x": i}))
        assert set(a.to_prompt_payload()["fields"]) == set(
            b.to_prompt_payload()["fields"]
        )

    def test_complexity_grows_with_diversity(self):
        s = DynamicDataflowSchema()
        s.update(msg(activity="a", used={"x": 1}))
        c1 = s.complexity()
        s.update(msg(activity="b", used={"x": 1, "y": 2}))
        assert s.complexity() > c1


class TestPromptPayloads:
    def test_common_fields_always_included(self):
        s = DynamicDataflowSchema()
        payload = s.to_prompt_payload()
        assert "task_id" in payload["fields"]
        assert "campaign_id" in payload["fields"]

    def test_descriptions_toggle(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 1}))
        with_desc = s.to_prompt_payload(include_descriptions=True)
        without = s.to_prompt_payload(include_descriptions=False)
        assert "description" in with_desc["fields"]["used.x"]
        assert "description" not in without["fields"]["used.x"]

    def test_values_payload_has_activity_names(self):
        s = DynamicDataflowSchema()
        s.update(msg(activity="power"))
        assert "power" in s.values_payload()["activity_id"]

    def test_known_fields_union(self):
        s = DynamicDataflowSchema()
        s.update(msg(used={"x": 1}))
        known = s.all_known_fields()
        assert "used.x" in known and "status" in known
