"""End-to-end agent tests: chat over live synthetic-workflow provenance."""

from __future__ import annotations

import pytest

from repro.agent.agent import ProvenanceAgent
from repro.agent.router import Intent
from repro.capture.context import CaptureContext
from repro.provenance.database import ProvenanceDatabase
from repro.provenance.keeper import ProvenanceKeeper
from repro.provenance.query_api import QueryAPI
from repro.workflows.synthetic import run_synthetic_campaign


@pytest.fixture(scope="module")
def agent_setup():
    ctx = CaptureContext()
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    agent = ProvenanceAgent(
        ctx, model="gpt-4", query_api=QueryAPI(keeper.database)
    )
    run_synthetic_campaign(ctx, n_inputs=10)
    return ctx, keeper, agent


class TestChatFlows:
    def test_greeting(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("hello!")
        assert reply.intent == Intent.GREETING
        assert "provenance" in reply.text.lower()

    def test_monitoring_query_counts_tasks(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("How many tasks have finished?")
        assert reply.intent == Intent.MONITORING_QUERY
        assert reply.ok
        assert "80" in reply.text  # 10 workflows x 8 tasks, all FINISHED

    def test_aggregation_query(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("What is the average duration per activity?")
        assert reply.ok
        assert reply.table is not None
        assert len(reply.table) == 8  # one row per activity

    def test_guideline_addition(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("use the field lr to filter learning rates")
        assert reply.intent == Intent.ADD_GUIDELINE
        assert agent.context_manager.guidelines.user_defined

    def test_plot_request(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("Plot a bar graph of the average duration per activity.")
        assert reply.intent == Intent.VISUALIZATION
        assert reply.ok
        assert reply.chart is not None
        assert "scale_and_shift" in reply.chart

    def test_generated_code_is_exposed(self, agent_setup):
        _, _, agent = agent_setup
        reply = agent.chat("How many tasks have finished?")
        assert reply.code is not None and reply.code.startswith(("len(", "df"))


class TestAgentProvenance:
    def test_tool_executions_recorded(self, agent_setup):
        ctx, keeper, agent = agent_setup
        before = keeper.database.count({"type": "tool_execution"})
        agent.chat("How many tasks failed?")
        after = keeper.database.count({"type": "tool_execution"})
        assert after == before + 1

    def test_llm_interactions_linked_to_tool(self, agent_setup):
        ctx, keeper, agent = agent_setup
        agent.chat("How many tasks are running?")
        llm_docs = keeper.database.find({"type": "llm_interaction"})
        assert llm_docs
        last = llm_docs[-1]
        assert last["agent_id"] == "provenance-agent"
        assert last["informed_by"]  # linked to the tool execution
        tool_doc = keeper.database.find_one({"task_id": last["informed_by"]})
        assert tool_doc["type"] == "tool_execution"

    def test_prov_graph_associates_agent(self, agent_setup):
        ctx, keeper, agent = agent_setup
        agent.chat("How many tasks have finished?")
        acts = keeper.prov.activities_of_agent("provenance-agent")
        assert len(acts) >= 1


class TestMCPIntegration:
    def test_schema_resource_exposed(self, agent_setup):
        _, _, agent = agent_setup
        from repro.agent.mcp.client import MCPClient

        client = MCPClient(agent.mcp)
        schema = client.read_resource("dataflow-schema")
        assert "generated.value" in schema["fields"]

    def test_tools_listed_via_mcp(self, agent_setup):
        _, _, agent = agent_setup
        from repro.agent.mcp.client import MCPClient

        names = {t["name"] for t in MCPClient(agent.mcp).list_tools()}
        assert "in_memory_context_query" in names
        assert "anomaly_detector" in names

    def test_bring_your_own_tool(self, agent_setup):
        _, _, agent = agent_setup
        from repro.agent.tools.base import Tool, ToolResult

        class MyTool(Tool):
            name = "my_custom_tool"
            description = "custom"

            def invoke(self, **kwargs):
                return ToolResult(ok=True, summary="hi")

        agent.register_tool(MyTool())
        from repro.agent.mcp.client import MCPClient

        assert MCPClient(agent.mcp).call_tool("my_custom_tool")["ok"]


class TestSessionGuidelinesAffectBehaviour:
    def test_user_guideline_reaches_prompts(self):
        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx, model="gpt-4")
        run_synthetic_campaign(ctx, n_inputs=2)
        agent.chat("use the field lr to filter learning rates")
        prompt = agent.query_tool.builder.build(
            "q",
            schema_payload=agent.context_manager.schema_payload(),
            values_payload=agent.context_manager.values_payload(),
            guidelines_text=agent.context_manager.guidelines_text(),
        )
        assert "lr" in prompt
