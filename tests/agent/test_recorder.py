"""Tests for agent-action provenance recording (§4.2)."""

from __future__ import annotations

import pytest

from repro.agent.recorder import AgentProvenanceRecorder
from repro.capture.context import CaptureContext
from repro.provenance.keeper import ProvenanceKeeper


@pytest.fixture
def env():
    ctx = CaptureContext()
    keeper = ProvenanceKeeper(ctx.broker)
    keeper.start()
    recorder = AgentProvenanceRecorder(ctx, agent_id="agent-x")
    return ctx, keeper, recorder


class TestToolExecution:
    def test_record_shape(self, env):
        ctx, keeper, recorder = env
        tid = recorder.record_tool_execution(
            "in_memory_context_query",
            {"message": "how many?"},
            {"ok": True},
            started_at=1.0,
            ended_at=2.0,
        )
        ctx.flush()
        doc = keeper.database.find_one({"task_id": tid})
        assert doc["type"] == "tool_execution"
        assert doc["agent_id"] == "agent-x"
        assert doc["used"]["message"] == "how many?"
        assert doc["duration"] == 1.0

    def test_failed_flag(self, env):
        ctx, keeper, recorder = env
        tid = recorder.record_tool_execution(
            "plot", {}, {"ok": False}, started_at=1.0, ended_at=2.0, failed=True
        )
        ctx.flush()
        assert keeper.database.find_one({"task_id": tid})["status"] == "FAILED"


class TestLLMInteraction:
    def test_prompt_and_response_in_prov_verbs(self, env):
        ctx, keeper, recorder = env
        tool_id = recorder.record_tool_execution(
            "q", {}, {}, started_at=1.0, ended_at=2.0
        )
        llm_id = recorder.record_llm_interaction(
            "gpt-4",
            "PROMPT TEXT",
            "df['x'].mean()",
            started_at=2.0,
            ended_at=3.5,
            informed_by=tool_id,
            prompt_tokens=1234,
            output_tokens=9,
        )
        ctx.flush()
        doc = keeper.database.find_one({"task_id": llm_id})
        assert doc["type"] == "llm_interaction"
        assert doc["used"]["prompt"] == "PROMPT TEXT"  # prov:used
        assert doc["generated"]["response"] == "df['x'].mean()"  # prov:generated
        assert doc["informed_by"] == tool_id  # prov:wasInformedBy

    def test_long_prompt_truncated_in_record(self, env):
        ctx, keeper, recorder = env
        llm_id = recorder.record_llm_interaction(
            "gpt-4", "x" * 10_000, "y", started_at=0.0, ended_at=1.0
        )
        ctx.flush()
        doc = keeper.database.find_one({"task_id": llm_id})
        assert len(doc["used"]["prompt"]) <= 2000

    def test_prov_graph_links(self, env):
        ctx, keeper, recorder = env
        tool_id = recorder.record_tool_execution(
            "q", {}, {}, started_at=1.0, ended_at=2.0
        )
        recorder.record_llm_interaction(
            "gpt-4", "p", "r", started_at=2.0, ended_at=3.0, informed_by=tool_id
        )
        ctx.flush()
        from repro.provenance.prov import RelationKind

        assert keeper.prov.activities_of_agent("agent-x") == [
            tool_id,
            keeper.prov.activities_of_agent("agent-x")[1],
        ]
        assert keeper.prov.relations(RelationKind.WAS_INFORMED_BY)
