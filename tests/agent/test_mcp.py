"""Tests for the MCP server/client layer."""

from __future__ import annotations

import pytest

from repro.agent.mcp.client import MCPClient
from repro.agent.mcp.protocol import MCPRequest, MCPResponse
from repro.agent.mcp.server import MCPServer
from repro.agent.tools.base import Tool, ToolRegistry, ToolResult
from repro.errors import AgentError


class _AddTool(Tool):
    name = "add"
    description = "adds two numbers"

    def invoke(self, **kwargs):
        return ToolResult(ok=True, summary="sum", data=kwargs["a"] + kwargs["b"])


class _CrashTool(Tool):
    name = "crash"
    description = "always raises"

    def invoke(self, **kwargs):
        raise RuntimeError("tool exploded")


@pytest.fixture
def client():
    registry = ToolRegistry()
    registry.register(_AddTool())
    registry.register(_CrashTool())
    server = MCPServer(registry)
    server.add_resource("greeting", lambda: {"hello": "world"})
    server.add_prompt("qa", lambda args: f"Q: {args.get('q', '')}")
    return MCPClient(server)


class TestProtocol:
    def test_request_json_roundtrip(self):
        req = MCPRequest(method="tools/list", params={"a": 1}, request_id=7)
        back = MCPRequest.from_json(req.to_json())
        assert back == req

    def test_response_json_roundtrip_ok(self):
        resp = MCPResponse(request_id=3, result={"x": 1})
        back = MCPResponse.from_json(resp.to_json())
        assert back.ok and back.result == {"x": 1}

    def test_response_json_roundtrip_error(self):
        from repro.agent.mcp.protocol import MCPError

        resp = MCPResponse(request_id=3, error=MCPError(-32601, "nope"))
        back = MCPResponse.from_json(resp.to_json())
        assert not back.ok and back.error.code == -32601


class TestServerClient:
    def test_initialize(self, client):
        info = client.initialize()
        assert info["server"] == "provenance-agent"
        assert info["capabilities"]["tools"]

    def test_list_and_call_tool(self, client):
        tools = client.list_tools()
        assert {t["name"] for t in tools} == {"add", "crash"}
        result = client.call_tool("add", a=2, b=3)
        assert result["ok"] and result["data"] == 5

    def test_unknown_tool_is_protocol_error(self, client):
        with pytest.raises(AgentError) as err:
            client.call_tool("ghost")
        assert "-32601" in str(err.value) or "ghost" in str(err.value)

    def test_tool_crash_becomes_internal_error(self, client):
        with pytest.raises(AgentError):
            client.call_tool("crash")

    def test_resources(self, client):
        assert client.list_resources() == ["greeting"]
        assert client.read_resource("greeting") == {"hello": "world"}

    def test_unknown_resource(self, client):
        with pytest.raises(AgentError):
            client.read_resource("ghost")

    def test_prompts(self, client):
        assert client.list_prompts() == ["qa"]
        assert client.get_prompt("qa", q="hi") == "Q: hi"

    def test_unknown_method(self, client):
        server = client._server
        resp = server.handle(MCPRequest(method="bogus/method"))
        assert not resp.ok


class TestAgentStorageResources:
    """Agent-level MCP wiring for keeper ingest stats and DB tallies."""

    def _agent(self, with_keeper=True, with_query_api=True):
        from repro.capture.context import CaptureContext
        from repro.agent.agent import ProvenanceAgent
        from repro.provenance.keeper import ProvenanceKeeper
        from repro.provenance.query_api import QueryAPI

        ctx = CaptureContext()
        keeper = ProvenanceKeeper(ctx.broker) if with_keeper else None
        if keeper is not None:
            keeper.start()
        agent = ProvenanceAgent(
            ctx,
            keeper=keeper,
            query_api=QueryAPI(keeper.database) if with_query_api and keeper else None,
        )
        return ctx, keeper, agent

    def test_lineage_stats_embeds_keeper_ingest_stats(self):
        ctx, keeper, agent = self._agent()
        ctx.broker.publish(
            "provenance.task",
            {
                "task_id": "t1",
                "campaign_id": "c1",
                "workflow_id": "w1",
                "activity_id": "a",
                "status": "FINISHED",
                "type": "task",
            },
        )
        ctx.broker.publish("provenance.task", {"task_id": "", "status": "FINISHED"})
        stats = MCPClient(agent.mcp).read_resource("lineage-stats")
        assert stats["ingest"]["accepted"] == 1
        assert stats["ingest"]["rejected"] == 1
        assert "tasks" in stats  # the lineage half is still there

    def test_lineage_stats_without_keeper_keeps_old_shape(self):
        _, _, agent = self._agent(with_keeper=False, with_query_api=False)
        stats = MCPClient(agent.mcp).read_resource("lineage-stats")
        assert "ingest" not in stats
        assert stats["tasks"] == 0

    def test_db_status_counts_resource_uses_query_api(self):
        ctx, keeper, agent = self._agent()
        ctx.broker.publish(
            "provenance.task",
            {
                "task_id": "t1",
                "campaign_id": "c1",
                "workflow_id": "w1",
                "activity_id": "a",
                "status": "FAILED",
                "type": "task",
            },
        )
        client = MCPClient(agent.mcp)
        assert "db-status-counts" in client.list_resources()
        assert client.read_resource("db-status-counts") == {"FAILED": 1}

    def test_no_db_resource_without_query_api(self):
        _, _, agent = self._agent(with_keeper=True, with_query_api=False)
        assert "db-status-counts" not in MCPClient(agent.mcp).list_resources()
