"""Tests for the graph_query tool, its routing, and agent integration."""

from __future__ import annotations

import pytest

from repro.agent.agent import ProvenanceAgent
from repro.agent.router import Intent, ToolRouter
from repro.agent.tools.graph_query import GraphQueryTool
from repro.capture.context import CaptureContext
from repro.dataframe import DataFrame
from repro.lineage import LineageIndex
from repro.workflows.engine import Ref, TaskSpec, WorkflowEngine


@pytest.fixture
def index():
    idx = LineageIndex()
    idx.apply_many(
        [
            {"task_id": "a", "activity_id": "gen", "workflow_id": "w1",
             "used": {}, "generated": {"v": "x7"}},
            {"task_id": "b", "activity_id": "use", "workflow_id": "w1",
             "used": {"_upstream": ["a"], "v": "x7"}, "generated": {}},
            {"task_id": "c", "activity_id": "join", "workflow_id": "w1",
             "used": {"_upstream": ["b"]}, "generated": {}},
        ]
    )
    return idx


@pytest.fixture
def tool(index):
    return GraphQueryTool(index)


class TestRouting:
    @pytest.mark.parametrize(
        "text",
        [
            "What is the upstream lineage of task 'x'?",
            "show me the ancestors of 'x'",
            "which tasks are downstream of 'x'",
            "what does 'x' depend on?",
            "show the critical path of this workflow",
            "is there a causal chain from 'x' to 'y'?",
            "list the root tasks",
        ],
    )
    def test_lineage_intent(self, text):
        assert ToolRouter().classify(text) == Intent.LINEAGE_QUERY

    def test_plot_requests_still_win(self):
        # visualization phrasing outranks traversal vocabulary
        assert (
            ToolRouter().classify("plot the lineage of task 'x'")
            == Intent.VISUALIZATION
        )

    def test_plain_queries_unaffected(self):
        assert (
            ToolRouter().classify("How many tasks failed?")
            == Intent.MONITORING_QUERY
        )

    def test_impact_vocabulary_routes_to_lineage(self):
        assert (
            ToolRouter().classify("how many tasks were affected by task 'x'?")
            == Intent.LINEAGE_QUERY
        )

    def test_idless_everyday_vocabulary_stays_with_monitoring(self):
        # no task id named: the LLM query tool answered this before the
        # lineage intent existed and must keep doing so
        assert (
            ToolRouter().classify("Which tasks were affected by the failure?")
            == Intent.MONITORING_QUERY
        )

    def test_historical_phrasing_keeps_db_route(self):
        # post-hoc agents answer database-phrased questions via db_query,
        # exactly as before the lineage intent existed
        assert (
            ToolRouter().classify(
                "show the lineage of task 'x' stored in the database"
            )
            == Intent.HISTORICAL_QUERY
        )


class TestStructuredInvocation:
    def test_upstream(self, tool):
        result = tool.invoke(operation="upstream", task_id="c")
        assert result.ok
        assert set(result.data.column("task_id").to_list()) == {"a", "b"}

    def test_depth_limit(self, tool):
        result = tool.invoke(operation="upstream", task_id="c", depth=1)
        assert set(result.data.column("task_id").to_list()) == {"b"}

    def test_causal_chain(self, tool):
        result = tool.invoke(operation="causal_chain", task_id="a", target="c")
        assert result.ok and result.details["length"] == 3
        assert result.data.column("task_id").to_list() == ["a", "b", "c"]

    def test_impact_size(self, tool):
        result = tool.invoke(operation="impact_size", task_id="a")
        assert result.ok and result.data == 2

    def test_critical_path_scoped_to_workflow(self, tool):
        result = tool.invoke(operation="critical_path", workflow_id="w1")
        assert result.ok and result.details["length"] == 3

    def test_unknown_task_is_an_error_result(self, tool):
        result = tool.invoke(operation="upstream", task_id="ghost")
        assert not result.ok and "ghost" in result.error

    def test_unknown_operation(self, tool):
        result = tool.invoke(operation="teleport", task_id="a")
        assert not result.ok

    def test_missing_task_id(self, tool):
        result = tool.invoke(operation="upstream")
        assert not result.ok


class TestNaturalLanguage:
    def test_quoted_task_id(self, tool):
        result = tool.invoke(question="What is the upstream lineage of 'c'?")
        assert result.ok
        assert set(result.data.column("task_id").to_list()) == {"a", "b"}

    def test_two_ids_make_a_chain(self, tool):
        result = tool.invoke(question="Is there a causal chain from 'a' to 'c'?")
        assert result.ok and result.details["operation"] == "causal_chain"
        assert result.details["length"] == 3

    def test_depth_phrase(self, tool):
        result = tool.invoke(
            question="Which tasks are upstream of 'c' within 1 hop?"
        )
        assert set(result.data.column("task_id").to_list()) == {"b"}

    def test_roots_and_leaves(self, tool):
        roots = tool.invoke(question="Which tasks are the root tasks?")
        leaves = tool.invoke(question="List the leaf tasks of the run.")
        assert set(roots.data.column("task_id").to_list()) == {"a"}
        assert set(leaves.data.column("task_id").to_list()) == {"c"}

    def test_workflow_scoped_critical_path(self, tool):
        result = tool.invoke(question="Show the critical path of workflow 'w1'.")
        assert result.ok and result.details["workflow_id"] == "w1"
        assert result.details["length"] == 3

    def test_impact_count_question(self, tool):
        result = tool.invoke(question="How many tasks were affected downstream of 'a'?")
        assert result.ok and result.data == 2

    def test_depend_on_count_answers_upstream_not_impact(self, tool):
        # "does X depend on" asks about X's ancestors; it must not be
        # swallowed by the (downstream-direction) impact_size pattern
        result = tool.invoke(question="How many tasks does 'c' depend on?")
        assert result.ok and result.details["operation"] == "upstream"
        assert set(result.data.column("task_id").to_list()) == {"a", "b"}

    def test_tasks_depend_on_x_answers_dependents(self, tool):
        # "which tasks depend on X" names the dependee: the asker wants
        # X's dependents (downstream), not X's ancestors
        result = tool.invoke(question="Which tasks depend on 'a'?")
        assert result.ok and result.details["operation"] == "downstream"
        assert set(result.data.column("task_id").to_list()) == {"b", "c"}

    def test_unparseable_question(self, tool):
        result = tool.invoke(question="tell me something nice")
        assert not result.ok

    def test_unknown_id_surfaces_as_error_not_other_answer(self, tool):
        # a typo'd id must never be dropped and answered as a different
        # question (e.g. upstream of the one recognised id)
        result = tool.invoke(
            question="show the causal chain from 'ghost' to 'c'"
        )
        assert not result.ok and "ghost" in result.error

    def test_unknown_workflow_gives_empty_path_not_whole_graph(self, tool):
        result = tool.invoke(
            question="show the critical path of workflow 'wf-typo'"
        )
        assert result.ok
        assert result.details["workflow_id"] == "wf-typo"
        assert result.details["length"] == 0


class TestAgentIntegration:
    def test_chat_answers_lineage_and_records_provenance(self):
        ctx = CaptureContext()
        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [
                TaskSpec("gen", lambda: {"x": 5.5}),
                TaskSpec("use", lambda x: {"y": x * 3},
                         inputs={"x": Ref("gen", "x")}),
            ],
            workflow_name="demo",
        )
        ctx.flush()
        agent = ProvenanceAgent(ctx)  # attaches late: replay must catch up
        tid = result.task_ids["use"]
        reply = agent.chat(f"What is the upstream lineage of task '{tid}'?")
        assert reply.intent == Intent.LINEAGE_QUERY
        assert reply.ok
        assert isinstance(reply.table, DataFrame)
        assert result.task_ids["gen"] in reply.table.column("task_id").to_list()
        # the turn itself became provenance
        agent.capture_context.flush()

    def test_quoted_free_text_falls_back_to_monitoring(self):
        # traversal vocabulary around a quoted activity name is not a
        # lineage question the graph tool can answer; the agent must hand
        # it back to the LLM-backed monitoring route instead of erroring
        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx)
        reply = agent.chat("Which tasks were affected by the 'relaxation' step?")
        assert reply.intent == Intent.MONITORING_QUERY

    def test_id_shaped_typo_still_surfaces_graph_error(self):
        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx)
        reply = agent.chat("What is the upstream lineage of task '123.456_9'?")
        assert reply.intent == Intent.LINEAGE_QUERY
        assert not reply.ok and "123.456_9" in reply.error

    def test_live_updates_flow_into_agent_index(self):
        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx)
        engine = WorkflowEngine(ctx)
        result = engine.execute(
            [
                TaskSpec("first", lambda: {"v": 9.25}),
                TaskSpec("second", lambda v: {"w": v + 1},
                         inputs={"v": Ref("first", "v")}),
            ],
            workflow_name="live",
        )
        ctx.flush()
        reply = agent.chat(
            f"How many tasks were affected downstream of '{result.task_ids['first']}'?"
        )
        assert reply.ok and "1" in reply.text

    def test_graph_tool_listed_on_mcp(self):
        from repro.agent.mcp.client import MCPClient

        agent = ProvenanceAgent(CaptureContext())
        assert "provenance_graph_query" in agent.registry.names()
        client = MCPClient(agent.mcp)
        assert client.read_resource("lineage-stats")["tasks"] == 0
