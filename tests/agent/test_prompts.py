"""Tests for prompt building and configuration labels."""

from __future__ import annotations

from repro.agent.guidelines import GuidelineStore
from repro.agent.prompts import FEW_SHOT_EXAMPLES, PromptBuilder, PromptConfig
from repro.llm import prompt_format as pf
from repro.llm.tokenizer import count_tokens
from repro.query import parse_query


class TestPromptConfigLabels:
    def test_nothing(self):
        assert PromptConfig().label == "Nothing"

    def test_baseline(self):
        assert PromptConfig().with_baseline().label == "Baseline"

    def test_full(self):
        cfg = PromptConfig(
            few_shot=True, schema=True, values=True, guidelines=True
        ).with_baseline()
        assert cfg.label == "Full"

    def test_intermediate(self):
        cfg = PromptConfig(few_shot=True, guidelines=True).with_baseline()
        assert cfg.label == "Baseline+FS+Guidelines"


class TestPromptAssembly:
    def test_sections_in_order_and_query_last(self):
        cfg = PromptConfig(few_shot=True, schema=True).with_baseline()
        prompt = PromptBuilder(cfg).build(
            "How many?", schema_payload={"fields": {}}, values_payload={}
        )
        assert prompt.index(pf.SECTION_ROLE) < prompt.index(pf.SECTION_EXAMPLES)
        assert prompt.rstrip().endswith("How many?")

    def test_disabled_sections_absent(self):
        prompt = PromptBuilder(PromptConfig().with_baseline()).build("q")
        assert pf.SECTION_EXAMPLES not in prompt
        assert pf.SECTION_SCHEMA not in prompt

    def test_token_growth_across_configs(self):
        schema = {"fields": {f"used.f{i}": {"type": "float", "description": "x" * 40} for i in range(20)}}
        values = {f"used.f{i}": [1.0, 2.0, 3.0] for i in range(20)}
        guide = GuidelineStore().render()

        def tokens(cfg):
            return count_tokens(
                PromptBuilder(cfg).build(
                    "q", schema_payload=schema, values_payload=values, guidelines_text=guide
                )
            )

        baseline = tokens(PromptConfig().with_baseline())
        full = tokens(
            PromptConfig(few_shot=True, schema=True, values=True, guidelines=True).with_baseline()
        )
        assert full > 4 * baseline  # Figure 8's growth shape

    def test_guidelines_only_when_text_given(self):
        cfg = PromptConfig(guidelines=True).with_baseline()
        prompt = PromptBuilder(cfg).build("q", guidelines_text="")
        assert pf.SECTION_GUIDELINES not in prompt


class TestFewShotExamples:
    def test_all_examples_parse(self):
        for _nl, code in FEW_SHOT_EXAMPLES:
            parse_query(code)  # must not raise

    def test_examples_use_only_common_fields(self):
        common = {"status", "started_at", "hostname", "task_id", "activity_id", "duration"}
        for _nl, code in FEW_SHOT_EXAMPLES:
            fields = parse_query(code).fields_used()
            assert fields <= common


class TestGuidelineStore:
    def test_static_set_covers_trap_guard_phrases(self):
        from repro.llm.generation import TRAP_GUARD_PHRASES

        text = GuidelineStore().render().lower()
        for trap, phrase in TRAP_GUARD_PHRASES.items():
            assert phrase in text, f"guard phrase {phrase!r} missing for {trap}"

    def test_static_set_covers_hint_fields(self):
        from repro.llm.vocabulary import GUIDELINE_FIELD_HINTS

        text = GuidelineStore().render().lower()
        for fname in GUIDELINE_FIELD_HINTS:
            assert fname.lower() in text, f"hint field {fname} missing"

    def test_user_guidelines_rendered_after_static(self):
        store = GuidelineStore()
        store.add_user_guideline("use the field lr for learning rates")
        rendered = store.render()
        assert rendered.index("lr") > rendered.index("started_at")
        assert "override" in rendered
