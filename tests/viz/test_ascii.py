"""Tests for ASCII chart renderers."""

from __future__ import annotations

import pytest

from repro.viz.ascii import bar_chart, boxplot_rows, scatter, series_table


class TestBarChart:
    def test_longest_bar_for_max_value(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0])
        line_a, line_b = chart.splitlines()
        assert line_b.count("█") > line_a.count("█")

    def test_values_printed(self):
        chart = bar_chart(["C-H_1"], [100.2], title="BDE")
        assert "100.2" in chart and "C-H_1" in chart and "BDE" in chart

    def test_empty(self):
        assert bar_chart([], []) == "(empty chart)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_no_crash(self):
        chart = bar_chart(["a"], [0.0])
        assert "a" in chart


class TestBoxplotRows:
    def test_median_marker_present(self):
        out = boxplot_rows({"grp": [0.2, 0.5, 0.8]})
        assert "┃" in out and "med=0.500" in out

    def test_empty_group_handled(self):
        out = boxplot_rows({"empty": []})
        assert "no data" in out

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            boxplot_rows({"g": [0.5]}, lo=1.0, hi=0.0)

    def test_single_value(self):
        out = boxplot_rows({"one": [0.5]})
        assert "med=0.500" in out


class TestScatter:
    def test_labels_legend(self):
        out = scatter([1, 2], [3, 4], labels=["p", "q"])
        assert "a = p" in out and "b = q" in out

    def test_empty(self):
        assert scatter([], []) == "(empty scatter)"

    def test_axis_ranges_shown(self):
        out = scatter([0, 10], [0, 1])
        assert "x: 0 … 10" in out

    def test_mismatched(self):
        with pytest.raises(ValueError):
            scatter([1], [1, 2])


class TestSeriesTable:
    def test_alignment_and_missing(self):
        out = series_table(
            [{"a": 1, "b": None}, {"a": 22.5}],
            ["a", "b"],
            title="t",
        )
        assert "t" in out
        assert "·" in out  # missing marker
        assert "22.5" in out

    def test_empty_rows(self):
        out = series_table([], ["col"])
        assert "col" in out
