"""Tests for telemetry sampling."""

from __future__ import annotations

from repro.telemetry import TelemetrySampler


class TestSyntheticSampling:
    def test_values_in_range(self):
        sampler = TelemetrySampler("node-1")
        for _ in range(200):
            snap = sampler.sample()
            assert 0.0 <= snap.cpu_percent <= 100.0
            assert 0.0 <= snap.mem_percent <= 100.0

    def test_deterministic_per_hostname(self):
        a = [TelemetrySampler("node-1").sample().cpu_percent for _ in range(1)]
        b = [TelemetrySampler("node-1").sample().cpu_percent for _ in range(1)]
        assert a == b

    def test_different_hosts_differ(self):
        a = TelemetrySampler("node-1").sample().cpu_percent
        b = TelemetrySampler("node-2").sample().cpu_percent
        assert a != b

    def test_stream_varies_over_time(self):
        sampler = TelemetrySampler("node-1")
        values = {round(sampler.sample().cpu_percent, 3) for _ in range(50)}
        assert len(values) > 10

    def test_to_dict_matches_listing_shape(self):
        snap = TelemetrySampler("n").sample()
        doc = snap.to_dict()
        assert set(doc) == {"cpu", "mem"}
        assert "percent" in doc["cpu"]


class TestProcMode:
    def test_proc_fallback_never_crashes(self):
        sampler = TelemetrySampler("node-1", synthetic=False)
        snap = sampler.sample()
        assert 0.0 <= snap.cpu_percent <= 100.0

    def test_proc_availability_probe(self):
        assert isinstance(TelemetrySampler.proc_available(), bool)
