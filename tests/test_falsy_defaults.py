"""Falsy injected dependencies are kept, never swapped for defaults.

The ``x or Default()`` idiom silently replaces an injected collaborator
whenever it happens to compare falsy — an empty cache, a clock at time
zero, a zero-traffic LLM server.  Every constructor/function default in
``src/`` now uses an explicit ``is None`` check; these tests pin each
site by injecting a double that compares falsy and asserting identity.
"""

from __future__ import annotations

from repro.capture.context import CaptureContext
from repro.llm.generation import QueryTraits, generate_query_code
from repro.llm.profiles import get_profile
from repro.llm.prompt_reading import perceive
from repro.llm.semantics import OracleResolver, parse_intent
from repro.llm.service import LLMServer
from repro.messaging.broker import InProcessBroker
from repro.messaging.buffer import MessageBuffer, SizeFlush
from repro.storage.durable import DurableStore, FileOps
from repro.utils.clock import VirtualClock
from repro.workflows.engine import WorkflowEngine
from repro.workflows.synthetic import run_synthetic_workflow


class FalsyClock(VirtualClock):
    def __bool__(self) -> bool:
        return False


class FalsyStrategy(SizeFlush):
    def __bool__(self) -> bool:
        return False


class FalsyBroker(InProcessBroker):
    def __bool__(self) -> bool:
        return False


def test_message_buffer_keeps_falsy_strategy_and_clock():
    strategy = FalsyStrategy(8)
    clock = FalsyClock()
    buffer = MessageBuffer(
        InProcessBroker(), "topic", strategy=strategy, clock=clock
    )
    assert buffer.strategy is strategy
    assert buffer.clock is clock


def test_broker_keeps_falsy_clock():
    clock = FalsyClock()
    assert InProcessBroker(clock=clock).clock is clock


def test_capture_context_keeps_falsy_collaborators():
    clock = FalsyClock()
    broker = FalsyBroker(clock=clock)
    strategy = FalsyStrategy(4)
    ctx = CaptureContext(broker, clock=clock, flush_strategy=strategy)
    assert ctx.clock is clock
    assert ctx.broker is broker
    assert ctx.buffer.strategy is strategy


def test_durable_store_keeps_falsy_file_ops(tmp_path):
    class FalsyFileOps(FileOps):
        def __bool__(self) -> bool:
            return False

    ops = FalsyFileOps()
    store = DurableStore(str(tmp_path / "db"), file_ops=ops)
    try:
        assert store._files is ops
    finally:
        store.close()


def test_synthetic_workflow_uses_falsy_engine():
    ctx = CaptureContext()
    executed = []

    class FalsyEngine(WorkflowEngine):
        def __bool__(self) -> bool:
            return False

        def execute(self, dag, workflow_name=""):
            executed.append(workflow_name)
            return "sentinel"

    result = run_synthetic_workflow(ctx, engine=FalsyEngine(ctx))
    assert result == "sentinel"
    assert executed == ["synthetic_math_workflow"]


def test_parse_intent_uses_falsy_resolver():
    calls = []

    class FalsyResolver(OracleResolver):
        def __bool__(self) -> bool:
            return False

        def resolve(self, canonical: str) -> str:
            calls.append(canonical)
            return super().resolve(canonical)

    parse_intent("how many tasks failed?", resolver=FalsyResolver())
    assert calls, "the injected resolver was never consulted"


def test_generate_query_code_uses_falsy_traits():
    reads = []

    class SpyTraits(QueryTraits):
        def __bool__(self) -> bool:
            return False

        def __getattribute__(self, name):
            if not name.startswith("_"):
                reads.append(name)
            return super().__getattribute__(name)

    from repro.agent.prompts import PromptBuilder, PromptConfig
    from repro.llm.intents import register_intent
    from repro.query import parse_query

    question = "How many tasks failed in the falsy-defaults check?"
    register_intent(question, parse_query("len(df[df['status'] == 'FAILED'])"))
    prompt = PromptBuilder(
        PromptConfig(few_shot=True, schema=True, values=True).with_baseline()
    ).build(
        question,
        schema_payload={"fields": {"status": {"type": "str"}}, "activities": []},
        values_payload={"status": ["FAILED"]},
        guidelines_text="",
    )
    profile = get_profile("gpt-4")
    generate_query_code(
        profile, perceive(prompt, 200_000), traits=SpyTraits(), query_id="falsy"
    )
    assert reads, "the injected traits were never consulted"


def test_agent_service_keeps_falsy_llm():
    class FalsyLLM(LLMServer):
        def __bool__(self) -> bool:
            return False

    from repro.agent.service import AgentService

    llm = FalsyLLM()
    ctx = CaptureContext()
    service = AgentService(ctx, llm=llm)
    try:
        assert service.llm is llm
    finally:
        service.close()


class FalsyContext(CaptureContext):
    def __bool__(self) -> bool:
        return False


def test_workflow_run_keeps_falsy_context():
    from repro.capture.context import WorkflowRun

    ctx = FalsyContext()
    assert WorkflowRun("w", ctx).context is ctx


def test_capture_adapter_keeps_falsy_context():
    from repro.capture.adapters.base import ObservabilityAdapter

    class NullAdapter(ObservabilityAdapter):
        def observe(self):  # pragma: no cover - unused
            return []

        def source_description(self) -> str:  # pragma: no cover - unused
            return "null"

    ctx = FalsyContext()
    assert NullAdapter(context=ctx).context is ctx


def test_workflow_engine_keeps_falsy_context():
    ctx = FalsyContext()
    assert WorkflowEngine(ctx).context is ctx


def test_async_gateway_keeps_falsy_admission():
    from repro.api.admission import AdmissionController
    from repro.api.aio import AsyncGatewayServer

    class FalsyAdmission(AdmissionController):
        def __bool__(self) -> bool:
            return False

    admission = FalsyAdmission(max_concurrency=1)
    server = AsyncGatewayServer(object(), admission=admission)
    assert server.admission is admission  # never started; nothing to stop


# -- the lint is the regression net -----------------------------------------
#
# The tests above pin individual call sites; the seeded fixtures below
# pin the *detector*: reintroducing the exact PR 6 shape must trip
# provlint's falsy-or-default rule, so the bug class cannot return
# anywhere in src/ without failing the gate.

SEEDED_PR6_SHAPE = """\
class QueryAPI:
    def __init__(self, store, cache=None):
        self.store = store
        self.cache = cache or QueryCache()
"""


def test_lint_flags_the_seeded_pr6_cache_shape(tmp_path):
    from repro.analysis import run_analysis

    (tmp_path / "query_api.py").write_text(SEEDED_PR6_SHAPE)
    result = run_analysis([str(tmp_path)])
    assert [f.rule for f in result.findings] == ["falsy-or-default"]
    finding = result.findings[0]
    assert finding.line == 4
    assert "cache or QueryCache()" in finding.message


def test_lint_accepts_the_pr7_is_none_rewrite(tmp_path):
    from repro.analysis import run_analysis

    fixed = SEEDED_PR6_SHAPE.replace(
        "cache or QueryCache()", "cache if cache is not None else QueryCache()"
    )
    (tmp_path / "query_api.py").write_text(fixed)
    result = run_analysis([str(tmp_path)])
    assert result.findings == []
