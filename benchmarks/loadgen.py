"""Minimal closed-loop HTTP load generator for the gateway benchmarks.

``http.client`` costs a measurable fraction of a millisecond per request
in header plumbing — on the single-CPU boxes these benchmarks run on,
that client-side overhead would drown the transport difference being
measured.  This module is the lean alternative the load benchmarks use:

* **pre-encoded requests** — :func:`http_request_bytes` builds the full
  request once; the hot loop is ``sendall`` + a tiny response parse;
* **closed-loop clients** — each :class:`LoadClient` holds one
  keep-alive connection and has at most one request in flight, so
  offered load is ``n_clients / latency`` and queueing at the server is
  entirely the server's doing;
* **shed-aware accounting** — per-request latency and status are
  recorded for every reply, including 429/503 shed responses (which
  keep the connection alive and carry ``Retry-After``);
* **resource watching** — :class:`ResourceMonitor` samples the serving
  process's RSS (``/proc/self/status``, no psutil) and thread count
  while a run is in flight, for the soak leg's bounded-footprint check.

Run standalone against a live gateway::

    PYTHONPATH=src:. python -m benchmarks.loadgen --port 8080 \
        --clients 32 --requests 200
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "LoadClient",
    "LoadReport",
    "ResourceMonitor",
    "http_request_bytes",
    "percentiles",
    "rss_kib",
    "run_load",
]


def http_request_bytes(
    method: str,
    path: str,
    body: str | bytes | None = None,
    *,
    accept: str = "application/json",
    client_id: str | None = None,
) -> bytes:
    """One fully encoded HTTP/1.1 request, ready for ``sendall``."""
    payload = body.encode() if isinstance(body, str) else (body or b"")
    head = f"{method} {path} HTTP/1.1\r\nHost: loadgen\r\nAccept: {accept}\r\n"
    if client_id is not None:
        head += f"X-Client-Id: {client_id}\r\n"
    if payload or method == "POST":
        head += f"Content-Type: application/json\r\nContent-Length: {len(payload)}\r\n"
    head += "\r\n"
    return head.encode() + payload


def rss_kib() -> int | None:
    """Resident set size of this process in KiB (Linux), else None."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def percentiles(samples: Sequence[float]) -> dict[str, float | None]:
    """p50/p90/p99/max over ``samples``, same convention as the
    gateway's latency reservoirs (nearest-rank on the sorted list)."""
    ordered = sorted(samples)
    n = len(ordered)
    if not n:
        return {"p50": None, "p90": None, "p99": None, "max": None}
    return {
        "p50": ordered[int(0.50 * (n - 1))],
        "p90": ordered[int(0.90 * (n - 1))],
        "p99": ordered[int(0.99 * (n - 1))],
        "max": ordered[-1],
    }


class LoadClient:
    """One keep-alive connection with a minimal HTTP/1.1 response parser.

    Reconnects transparently when the server closed the connection
    (``Connection: close`` reply or a dropped socket between requests).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile: Any = None

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, raw: bytes) -> tuple[int, bytes, str | None]:
        """Send one pre-encoded request: ``(status, body, retry_after)``."""
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(raw)
                return self._read_response()
            except (OSError, EOFError):
                # server idled out the keep-alive socket: one clean retry
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _read_response(self) -> tuple[int, bytes, str | None]:
        status_line = self._rfile.readline()
        if not status_line:
            raise EOFError("connection closed by server")
        status = int(status_line.split(b" ", 2)[1])
        content_length = 0
        keep_alive = True
        retry_after: str | None = None
        while True:
            line = self._rfile.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            if name == b"content-length":
                content_length = int(value.strip())
            elif name == b"connection" and value.strip().lower() == b"close":
                keep_alive = False
            elif name == b"retry-after":
                retry_after = value.strip().decode("latin-1")
        body = self._rfile.read(content_length) if content_length else b""
        if not keep_alive:
            self.close()
        return status, body, retry_after


@dataclass
class LoadReport:
    """What one :func:`run_load` measured."""

    n_clients: int
    n_requests: int
    elapsed_s: float
    latencies_s: list[float] = field(default_factory=list)
    status_counts: dict[int, int] = field(default_factory=dict)
    retry_after_seen: int = 0

    @property
    def req_per_s(self) -> float:
        return self.n_requests / self.elapsed_s if self.elapsed_s else 0.0

    def ok_count(self) -> int:
        return sum(
            count for status, count in self.status_counts.items()
            if status < 400
        )

    def shed_count(self) -> int:
        return sum(
            count for status, count in self.status_counts.items()
            if status in (429, 503)
        )

    def latency(self) -> dict[str, float | None]:
        return percentiles(self.latencies_s)

    def row(self) -> dict[str, Any]:
        lat = self.latency()
        return {
            "clients": self.n_clients,
            "requests": self.n_requests,
            "req_per_s": round(self.req_per_s, 1),
            "p50_ms": _ms(lat["p50"]),
            "p90_ms": _ms(lat["p90"]),
            "p99_ms": _ms(lat["p99"]),
            "shed": self.shed_count(),
        }


def _ms(seconds: float | None) -> float | None:
    return round(seconds * 1000, 2) if seconds is not None else None


class ResourceMonitor:
    """Background sampler of this process's RSS and thread count."""

    def __init__(self, interval_s: float = 0.05):
        self.interval_s = interval_s
        self.max_rss_kib: int | None = None
        self.max_threads = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _sample(self) -> None:
        rss = rss_kib()
        if rss is not None and (self.max_rss_kib is None or rss > self.max_rss_kib):
            self.max_rss_kib = rss
        threads = threading.active_count()
        if threads > self.max_threads:
            self.max_threads = threads

    def start(self) -> "ResourceMonitor":
        self._sample()
        self._thread = threading.Thread(
            target=self._run, name="loadgen-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample()

    def stop(self) -> "ResourceMonitor":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._sample()
        return self


def run_load(
    host: str,
    port: int,
    scripts: Sequence[Sequence[bytes]],
    requests_per_client: int,
    *,
    timeout: float = 30.0,
) -> LoadReport:
    """Drive ``len(scripts)`` closed-loop clients against ``host:port``.

    Client ``i`` cycles through ``scripts[i]`` for
    ``requests_per_client`` requests on one keep-alive connection.  All
    clients start together (barrier) so the measured window is fully
    loaded.
    """
    n_clients = len(scripts)
    barrier = threading.Barrier(n_clients + 1)
    results: list[tuple[list[float], dict[int, int], int]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker(i: int) -> None:
        client = LoadClient(host, port, timeout=timeout)
        latencies: list[float] = []
        counts: dict[int, int] = {}
        retry_after_seen = 0
        try:
            barrier.wait()
            script = scripts[i]
            for k in range(requests_per_client):
                t0 = time.perf_counter()
                status, _, retry_after = client.request(script[k % len(script)])
                latencies.append(time.perf_counter() - t0)
                counts[status] = counts.get(status, 0) + 1
                if retry_after is not None:
                    retry_after_seen += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced by caller
            with lock:
                errors.append(exc)
        finally:
            client.close()
            with lock:
                results.append((latencies, counts, retry_after_seen))

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]

    report = LoadReport(
        n_clients=n_clients,
        n_requests=sum(len(lat) for lat, _, _ in results),
        elapsed_s=elapsed,
    )
    for latencies, counts, retry_after_seen in results:
        report.latencies_s.extend(latencies)
        report.retry_after_seen += retry_after_seen
        for status, count in counts.items():
            report.status_counts[status] = (
                report.status_counts.get(status, 0) + count
            )
    return report


def _main() -> None:  # pragma: no cover - manual tool
    import argparse

    parser = argparse.ArgumentParser(
        description="closed-loop load against a running gateway"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests", type=int, default=100,
                        help="requests per client")
    parser.add_argument("--path", default="/v1/stats")
    parser.add_argument("--method", default="GET")
    parser.add_argument("--body", default=None)
    args = parser.parse_args()

    raw = http_request_bytes(args.method, args.path, args.body)
    monitor = ResourceMonitor().start()
    report = run_load(
        args.host, args.port,
        [[raw]] * args.clients, args.requests,
    )
    monitor.stop()
    print(f"{report.n_requests} requests in {report.elapsed_s:.2f}s "
          f"= {report.req_per_s:.1f} req/s")
    print(f"latency: { {k: _ms(v) for k, v in report.latency().items()} } ms")
    print(f"status counts: {dict(sorted(report.status_counts.items()))}")
    print(f"max rss: {monitor.max_rss_kib} KiB, "
          f"max threads: {monitor.max_threads}")


if __name__ == "__main__":  # pragma: no cover
    _main()
