"""Asyncio gateway transport: load sweep, head-to-head, and shedding.

The tentpole claim behind :mod:`repro.api.aio` is quantitative, so this
benchmark measures it three ways with the lean closed-loop load
generator (:mod:`benchmarks.loadgen`):

* **head-to-head** — the same mixed chat+query workload at 64
  concurrent clients against the threaded transport and the asyncio
  transport over the *same* gateway code.  At full scale the asyncio
  transport must sustain >= 2x the threaded req/s (the threaded server
  pays per-request handler objects, ``email``-module header parsing and
  one thread per connection; the asyncio server parses lean and
  dispatches onto a small executor);
* **concurrency sweep** — 1 -> 128 clients on the asyncio transport:
  sustained req/s and p50/p90/p99 latency per step, with RSS and thread
  count monitored across the whole sweep (the soak leg: the footprint
  must stay bounded — no thread-per-connection growth, no RSS runaway);
* **past saturation** — a deliberately tiny executor
  (``max_concurrency=2``) with a bounded admission queue under 32
  hammering clients: the queue depth high-watermark stays at its bound,
  excess load is shed *fast* with 503 ``OVERLOADED`` + ``Retry-After``
  (and 429 ``RATE_LIMITED`` when a per-client budget is set), and the
  server still answers cleanly afterwards.

``ASYNC_BENCH_N`` scales requests-per-client down for CI smoke runs;
the 2x floor and the published results files are full-scale only.
"""

from __future__ import annotations

import os

from benchmarks.bench_gateway import _make_stack, make_server
from benchmarks.conftest import write_result
from benchmarks.loadgen import (
    LoadClient,
    ResourceMonitor,
    http_request_bytes,
    run_load,
)
from repro.api.admission import AdmissionController
from repro.api.aio import AsyncGatewayServer
from repro.api.client import RemoteClient
from repro.api.schemas import from_json
from repro.viz.ascii import series_table

REQUESTS_PER_CLIENT = int(os.environ.get("ASYNC_BENCH_N", "48"))
FULL_SCALE = REQUESTS_PER_CLIENT >= 48
N_CLIENTS_HEAD_TO_HEAD = 64
MIN_SPEEDUP = 2.0
SWEEP = (1, 4, 16, 64, 128)
ROUNDS = 2


def _chat_body(question: str) -> str:
    import json

    return json.dumps({"message": question})


def _client_script(i: int) -> list[bytes]:
    """16 requests of mixed gateway traffic for client ``i``.

    The mix mirrors an interactive monitoring session: one LLM-backed
    chat turn, a couple of greetings, repeated cached aggregate queries
    (the cache means reruns cost microseconds of gateway work — the
    transport is what's being measured), a small paged frame, stats
    polls.
    """
    chat_path = f"/v1/sessions/s{i}/chat"
    ops = [
        http_request_bytes(
            "POST", chat_path, _chat_body("How many tasks have finished?")
        ),
        http_request_bytes("POST", chat_path, _chat_body("Hello!")),
        http_request_bytes("POST", chat_path, _chat_body("Hi there")),
        http_request_bytes(
            "POST", "/v1/query",
            '{"dialect": "pipeline", "code": "df[\'duration\'].mean()"}',
        ),
        http_request_bytes(
            "POST", "/v1/query",
            '{"dialect": "sql", "sql": "SELECT AVG(duration) FROM tasks"}',
        ),
        http_request_bytes(
            "POST", "/v1/query",
            '{"dialect": "filter", "filter": {"status": "FAILED"}, '
            '"page_size": 3}',
        ),
        http_request_bytes("GET", "/v1/stats"),
    ]
    # 16-op cycle: 1 LLM chat, 2 greetings, 4+4 cached aggregates,
    # 2 paged frames, 3 stats polls
    return [
        ops[0],
        ops[3], ops[4], ops[6],
        ops[1],
        ops[3], ops[4], ops[5],
        ops[3], ops[4], ops[6],
        ops[2],
        ops[3], ops[4], ops[5], ops[6],
    ]


def _stack_with_server(transport: str, n_clients: int):
    """(service, server) with ``n_clients`` chat sessions pre-created
    and every cacheable query in the script warmed once."""
    service, gateway = _make_stack(realtime_factor=0.0)
    server = make_server(transport, gateway)
    for i in range(n_clients):
        service.create_session(f"s{i}")
    # one warm pass so the measured window exercises the cache-hit path
    # on every client equally
    warm = LoadClient(*server.address)
    try:
        for raw in _client_script(0):
            warm.request(raw)
    finally:
        warm.close()
    return service, server


def _run_point(server, n_clients: int, requests_per_client: int):
    host, port = server.address
    scripts = [_client_script(i % n_clients) for i in range(n_clients)]
    return run_load(host, port, scripts, requests_per_client)


# ---------------------------------------------------------------------------
# head-to-head: asyncio >= 2x threaded at 64 concurrent clients
# ---------------------------------------------------------------------------


def test_async_vs_threaded_throughput(results_dir):
    n = N_CLIENTS_HEAD_TO_HEAD
    rates: dict[str, list[float]] = {"threaded": [], "asyncio": []}
    reports: dict[str, object] = {}
    for _ in range(ROUNDS):  # interleaved so machine drift hits both
        for transport in ("threaded", "asyncio"):
            service, server = _stack_with_server(transport, n)
            try:
                report = _run_point(server, n, REQUESTS_PER_CLIENT)
            finally:
                server.stop()
                service.close()
            assert report.shed_count() == 0, (
                f"{transport}: default admission must not shed this load: "
                f"{report.status_counts}"
            )
            assert report.ok_count() == report.n_requests
            rates[transport].append(report.req_per_s)
            reports[transport] = report

    threaded_rps = max(rates["threaded"])
    asyncio_rps = max(rates["asyncio"])
    speedup = asyncio_rps / threaded_rps
    rows = []
    for transport in ("threaded", "asyncio"):
        row = reports[transport].row()
        row["transport"] = transport
        row["req_per_s"] = round(max(rates[transport]), 1)
        row["speedup_x"] = round(max(rates[transport]) / threaded_rps, 2)
        rows.append(row)
    if FULL_SCALE:
        write_result(
            results_dir,
            "async_gateway_head_to_head.txt",
            series_table(
                rows,
                ["transport", "clients", "requests", "req_per_s",
                 "p50_ms", "p99_ms", "speedup_x"],
                title=(
                    f"threaded vs asyncio transport, mixed chat+query "
                    f"workload, {n} concurrent clients "
                    f"(floor at full scale: {MIN_SPEEDUP}x)"
                ),
            ),
        )
        assert speedup >= MIN_SPEEDUP, (
            f"asyncio transport {asyncio_rps:.0f} req/s is only "
            f"{speedup:.2f}x threaded {threaded_rps:.0f} req/s "
            f"(floor {MIN_SPEEDUP}x)"
        )


# ---------------------------------------------------------------------------
# sweep + soak: 1 -> 128 clients, latency percentiles, bounded footprint
# ---------------------------------------------------------------------------


def test_concurrency_sweep(results_dir):
    import threading

    service, server = _stack_with_server("asyncio", max(SWEEP))
    monitor = ResourceMonitor().start()
    rss_before = monitor.max_rss_kib
    rows = []
    try:
        for n_clients in SWEEP:
            per_client = max(2, REQUESTS_PER_CLIENT // 2)
            report = _run_point(server, n_clients, per_client)
            assert report.shed_count() == 0, report.status_counts
            rows.append(report.row())
        # one event loop + a sized executor: the SERVING thread count
        # must not scale with client count the way thread-per-connection
        # serving does (loadgen's own client threads share this process,
        # so filter by the server's thread names)
        serving = [
            t for t in threading.enumerate()
            if t.name.startswith("gateway-aio")
        ]
        assert len(serving) <= server.executor_workers + 1, (
            f"{len(serving)} serving threads after a "
            f"{max(SWEEP)}-client point"
        )
    finally:
        monitor.stop()
        server.stop()
        service.close()

    rss_after = monitor.max_rss_kib
    if rss_before is not None and rss_after is not None:
        # soak: the whole sweep (including 128 concurrent connections)
        # must not balloon the serving process
        assert rss_after - rss_before < 256 * 1024, (
            f"RSS grew {rss_after - rss_before} KiB across the sweep"
        )
    if FULL_SCALE:
        for row in rows:
            row["max_rss_mib"] = (
                round(rss_after / 1024, 1) if rss_after is not None else None
            )
        write_result(
            results_dir,
            "async_gateway_sweep.txt",
            series_table(
                rows,
                ["clients", "requests", "req_per_s", "p50_ms", "p90_ms",
                 "p99_ms", "max_rss_mib"],
                title=(
                    f"asyncio transport concurrency sweep (mixed workload; "
                    f"peak threads {monitor.max_threads})"
                ),
            ),
        )


# ---------------------------------------------------------------------------
# past saturation: bounded queue, fast 503/429 shedding, clean recovery
# ---------------------------------------------------------------------------


def test_saturation_sheds_with_bounded_queue(results_dir):
    service, gateway = _make_stack(realtime_factor=0.0)
    admission = AdmissionController(max_concurrency=2, max_queue_depth=4)
    server = AsyncGatewayServer(
        gateway, executor_workers=2, admission=admission
    ).start()
    n_clients = 32
    try:
        for i in range(n_clients):
            service.create_session(f"s{i}")
        report = _run_point(server, n_clients, max(4, REQUESTS_PER_CLIENT // 2))
        snapshot = admission.snapshot()

        # far more offered load than 2+4 slots: shedding must happen...
        assert report.status_counts.get(503, 0) > 0, report.status_counts
        # ...carry the backoff hint...
        assert report.retry_after_seen >= report.shed_count()
        # ...and the admission queue must never exceed its bound
        assert snapshot["queued_high_watermark"] <= admission.max_queue_depth
        assert snapshot["overloaded"] == report.status_counts.get(503, 0)
        # accepted traffic was still served normally
        assert report.status_counts.get(200, 0) > 0

        # clean recovery: with load gone, plain requests are served, and
        # the stats surface reports the shed counters
        after = RemoteClient.for_server(server)
        try:
            stats = after.stats()
            assert stats.admission["overloaded"] == snapshot["overloaded"]
            assert stats.requests["stats"] >= 1
        finally:
            after.close()
    finally:
        server.stop()
        service.close()

    if FULL_SCALE:
        write_result(
            results_dir,
            "async_gateway_saturation.txt",
            series_table(
                [
                    {
                        "offered_clients": n_clients,
                        "slots": f"{admission.max_concurrency}"
                        f"+{admission.max_queue_depth}",
                        "served_200": report.status_counts.get(200, 0),
                        "shed_503": report.status_counts.get(503, 0),
                        "queue_high_watermark": snapshot[
                            "queued_high_watermark"
                        ],
                        "req_per_s": round(report.req_per_s, 1),
                    }
                ],
                ["offered_clients", "slots", "served_200", "shed_503",
                 "queue_high_watermark", "req_per_s"],
                title=(
                    "past-saturation run: bounded admission queue, fast "
                    "503 shedding with Retry-After"
                ),
            ),
        )


def test_rate_limited_client_sees_429():
    service, gateway = _make_stack(realtime_factor=0.0)
    admission = AdmissionController(
        max_concurrency=4, client_rate=5.0, client_burst=3.0
    )
    server = AsyncGatewayServer(gateway, admission=admission).start()
    try:
        host, port = server.address
        # one identity hammering: X-Client-Id pins the bucket even
        # across reconnects
        raw = http_request_bytes("GET", "/v1/stats", client_id="noisy")
        report = run_load(host, port, [[raw]], 30)
        assert report.status_counts.get(429, 0) > 0, report.status_counts
        assert report.status_counts.get(200, 0) >= 3  # the burst
        assert report.retry_after_seen > 0
        snapshot = admission.snapshot()
        assert snapshot["rate_limited"] == report.status_counts[429]

        # an unthrottled identity is untouched by the noisy one
        calm = http_request_bytes("GET", "/v1/stats", client_id="calm")
        calm_report = run_load(host, port, [[calm]], 3)
        assert calm_report.status_counts == {200: 3}

        # the envelope itself names the stable code
        body = None
        for status, payload in _replay(host, port, raw, 20):
            if status == 429:
                body = payload
                break
        assert body is not None
        envelope = from_json(body)
        assert envelope.code == "RATE_LIMITED"
    finally:
        server.stop()
        service.close()


def _replay(host: str, port: int, raw: bytes, n: int):
    from benchmarks.loadgen import LoadClient

    client = LoadClient(host, port)
    try:
        for _ in range(n):
            status, body, _ = client.request(raw)
            yield status, body
    finally:
        client.close()
