"""Incremental lineage maintenance vs. rebuild-per-query at 100k tasks.

``ProvenanceGraph`` rebuilds a networkx graph from a full document scan
for every lineage question — the exact anti-pattern the indexed store
eliminated for tabular queries (PR 1).  This benchmark streams a 100k-task
campaign (200 workflows of fan-out chains with dataflow links) into both:

* the **live** path — a :class:`LineageIndex` maintained incrementally,
  answering traversals straight from its adjacency store;
* the **rebuild** path — ``ProvenanceGraph.from_database`` per query,
  the seed behaviour.

Parity is asserted on every answer (upstream/downstream sets, chain
lengths, roots/leaves, critical-path length), then each traversal shape
must be >= 10x faster via the live index.

``LINEAGE_BENCH_N`` scales the campaign down for CI smoke runs
(the speedup floor holds from a few thousand tasks up).
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import write_result
from repro.lineage import LineageIndex
from repro.provenance.database import ProvenanceDatabase
from repro.provenance.graph import ProvenanceGraph
from repro.viz.ascii import series_table

N_TASKS = int(os.environ.get("LINEAGE_BENCH_N", "100000"))
MIN_SPEEDUP = 10.0
N_WORKFLOWS = max(2, N_TASKS // 500)


def _make_docs(n: int) -> list[dict]:
    """Chained workflows with fan-out and shared-value dataflow links."""
    rng = random.Random(99)
    docs: list[dict] = []
    per_wf = max(4, n // N_WORKFLOWS)
    serial = 0
    workflow = 0
    while serial < n:
        wf = f"wf-{workflow:04d}"
        workflow += 1
        budget = min(per_wf, n - serial)
        prev_stage: list[str] = []
        stage = 0
        while budget > 0:
            width = min(1 + stage % 3, budget)  # fan-out 1 -> 2 -> 3 -> 1 ...
            current: list[str] = []
            for _ in range(width):
                started = 1000.0 + serial * 0.01
                tid = f"{started:.2f}_{serial}"
                used: dict = {"_upstream": list(prev_stage)} if prev_stage else {}
                generated: dict = {}
                # one stage in three also links to the next one by value
                if stage % 3 == 0:
                    generated["token"] = f"{wf}/v{stage}"
                elif stage % 3 == 1 and prev_stage:
                    used["token"] = f"{wf}/v{stage - 1}"
                docs.append(
                    {
                        "type": "task",
                        "task_id": tid,
                        "campaign_id": "bench",
                        "workflow_id": wf,
                        "activity_id": f"stage-{stage}",
                        "status": rng.choice(["FINISHED"] * 19 + ["FAILED"]),
                        "started_at": started,
                        "ended_at": started + 0.5,
                        "duration": 0.5,
                        "used": used,
                        "generated": generated,
                    }
                )
                current.append(tid)
                serial += 1
                budget -= 1
            prev_stage = current
            stage += 1
    return docs


def _time(fn, *, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_live_index_vs_rebuild_per_query(results_dir):
    docs = _make_docs(N_TASKS)
    db = ProvenanceDatabase()
    db.insert_many(docs)

    # live path: incremental maintenance, as the keeper would apply it
    t0 = time.perf_counter()
    index = LineageIndex()
    index.apply_many(docs)
    build_s = time.perf_counter() - t0

    def rebuild() -> ProvenanceGraph:
        return ProvenanceGraph.from_database(db)

    # one rebuilt graph as the parity oracle
    oracle = rebuild()
    assert len(oracle) == len(index) == len(docs)

    deep = docs[-1]["task_id"]  # tail of the last workflow's chain
    wide = docs[0]["task_id"]  # head of the first workflow's chain
    wf = docs[len(docs) // 2]["workflow_id"]

    # parity across every traversal the query surface exposes
    assert index.upstream(deep) == oracle.upstream(deep)
    assert index.downstream(wide) == oracle.downstream(wide)
    assert set(index.roots()) == set(oracle.roots())
    assert set(index.leaves()) == set(oracle.leaves())
    chain_live = index.causal_chain(wide, docs[2]["task_id"])
    chain_scan = oracle.causal_chain(wide, docs[2]["task_id"])
    assert (chain_live is None) == (chain_scan is None)
    if chain_live is not None:
        assert len(chain_live) == len(chain_scan)
    snap = index.to_provenance_graph()
    assert set(snap.graph.edges) == set(oracle.graph.edges)

    cases = [
        ("upstream (deep lineage)", lambda g: g.upstream(deep)),
        ("downstream (impact set)", lambda g: g.downstream(wide)),
        ("roots", lambda g: g.roots()),
        ("leaves", lambda g: g.leaves()),
    ]
    rows = []
    for label, op in cases:
        t_live = _time(lambda: op(index), repeats=5)
        t_rebuild = _time(lambda: op(rebuild()), repeats=3)
        speedup = t_rebuild / max(t_live, 1e-9)
        rows.append(
            {
                "query": label,
                "live_ms": round(t_live * 1e3, 3),
                "rebuild_ms": round(t_rebuild * 1e3, 3),
                "speedup_x": round(speedup, 1),
            }
        )
        assert speedup >= MIN_SPEEDUP, (
            f"{label}: {speedup:.1f}x < {MIN_SPEEDUP}x "
            f"(live {t_live * 1e3:.3f} ms vs rebuild {t_rebuild * 1e3:.3f} ms)"
        )

    # per-workflow critical path: live index filters by workflow natively
    t_live = _time(lambda: index.critical_path(workflow_id=wf), repeats=5)
    rows.append(
        {
            "query": f"critical path ({wf})",
            "live_ms": round(t_live * 1e3, 3),
            "rebuild_ms": None,
            "speedup_x": None,
        }
    )

    write_result(
        results_dir,
        "lineage.txt",
        series_table(
            rows,
            ["query", "live_ms", "rebuild_ms", "speedup_x"],
            title=(
                f"Live lineage index vs rebuild-per-query, {len(docs):,} tasks, "
                f"{index.edge_count:,} edges, one-time incremental build "
                f"{build_s * 1e3:.0f} ms (floor: {MIN_SPEEDUP:.0f}x)"
            ),
        ),
    )
