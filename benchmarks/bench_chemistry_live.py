"""§5.3 — live interaction with the chemistry workflow (Q1-Q10).

Reproduction targets: the agent answers >80% of the ten queries fully
or partially correctly; Q5 fails by summing atom counts across all
molecules (81 instead of 9); Q8 fails to average the C-H bars before
plotting; every outcome matches the paper's per-query verdicts.
Also checks LLaMA 3-8B's context-window struggle on the chemistry
schema (the prompt exceeds 8k tokens and truncates).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.evaluation.live_demo import run_live_demo
from repro.llm.tokenizer import count_tokens
from repro.viz.ascii import series_table


def test_chemistry_live_interaction(benchmark, results_dir):
    demo = benchmark.pedantic(
        lambda: run_live_demo(model="gpt-4"), rounds=1, iterations=1
    )

    assert demo.accuracy() >= 0.8  # "over 80%"
    assert demo.paper_agreement() == 1.0

    by_qid = {o.qid: o for o in demo.outcomes}
    assert not by_qid["Q5"].correct and "81" in by_qid["Q5"].reply.text
    assert not by_qid["Q8"].correct
    assert by_qid["Q9"].correct  # average works even though the plot failed
    assert "O-H_1" in (by_qid["Q1"].reply.text + str(by_qid["Q1"].reply.table.to_dicts()))

    rows = [
        {
            "query": o.qid,
            "outcome": "correct" if o.correct else "incorrect",
            "paper": o.paper_outcome,
            "matches_paper": o.matches_paper,
        }
        for o in demo.outcomes
    ]
    write_result(
        results_dir,
        "chemistry_live_q1_q10.txt",
        series_table(
            rows,
            ["query", "outcome", "paper", "matches_paper"],
            title="Live chemistry interaction outcomes (ethanol BDE workflow)",
        ),
    )


def test_llama8b_context_window_overflow_on_chemistry(benchmark):
    """The paper: 'LLaMA 3 8B struggles due to its limited context window,
    as the workflow's dataflow schema is more complex than the synthetic
    one.'  Verify the chemistry full-context prompt overflows 8k tokens."""
    from repro.agent.agent import ProvenanceAgent
    from repro.capture.context import CaptureContext
    from repro.workflows.chemistry import run_bde_workflow

    def build_prompt():
        ctx = CaptureContext()
        agent = ProvenanceAgent(ctx, model="llama3-8b")
        run_bde_workflow("CCO", ctx, n_conformers=2)
        cm = agent.context_manager
        return agent.query_tool.builder.build(
            "Which bond has the highest dissociation free energy?",
            schema_payload=cm.schema_payload(),
            values_payload=cm.values_payload(),
            guidelines_text=cm.guidelines_text(),
        )

    prompt = benchmark.pedantic(build_prompt, rounds=1, iterations=1)
    tokens = count_tokens(prompt)
    assert tokens > 8_192, "chemistry full context must overflow the 8k window"

    from repro.llm.prompt_reading import perceive

    perceived = perceive(prompt, 8_192)
    assert perceived.truncated
    full = perceive(prompt, 200_000)
    # truncation clips the prompt tail: the guideline set is degraded,
    # which mechanically raises LLaMA-3-8B's logic/value error rates on
    # the chemistry workflow (the paper's observed struggle)
    assert len(perceived.guidelines) < len(full.guidelines)
    # the synthetic workflow's full prompt, by contrast, fits comfortably
    from repro.agent.context_manager import ContextManager
    from repro.workflows.synthetic import run_synthetic_campaign

    ctx2 = CaptureContext()
    cm2 = ContextManager(ctx2.broker).start()
    run_synthetic_campaign(ctx2, n_inputs=100)
    from repro.agent.prompts import PromptBuilder
    from repro.agent.tools.in_memory_query import FULL_CONTEXT

    synth_prompt = PromptBuilder(FULL_CONTEXT).build(
        "Which host ran the most tasks?",
        schema_payload=cm2.schema_payload(),
        values_payload=cm2.values_payload(),
        guidelines_text=cm2.guidelines_text(),
    )
    assert count_tokens(synth_prompt) < 8_192
