"""§5.2 scale invariance — results consistent from 1 to 1000 inputs.

"Results remain consistent across runs with as few as 1 and as many as
1,000 inputs, reflecting the metadata- and query-oriented design that is
independent of provenance data volume."  The mechanism: prompts are
built from the dynamic dataflow schema, whose payload is identical at
any campaign size — so scores and token counts cannot drift with volume.
"""

from __future__ import annotations

import json
import statistics

from benchmarks.conftest import write_result
from repro.agent.context_manager import ContextManager
from repro.capture.context import CaptureContext
from repro.evaluation.query_set import build_query_set
from repro.evaluation.runner import ExperimentRunner, median_by
from repro.viz.ascii import series_table
from repro.workflows.synthetic import run_synthetic_campaign

SIZES = (1, 10, 100, 1000)


def _score_at_scale(n_inputs: int) -> dict:
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    run_synthetic_campaign(ctx, n_inputs=n_inputs)
    queries = build_query_set(cm.to_frame())
    runner = ExperimentRunner(cm, queries)
    records = runner.run(models=["gpt-4"], configs=["Full"], n_reps=3)
    medians = median_by(records, judge="gpt-judge", keys=("qid",))
    schema_payload = cm.schema_payload()
    return {
        "n_inputs": n_inputs,
        "n_tasks": cm.buffer_count,
        "mean_score": statistics.mean(medians.values()),
        "schema_fields": len(schema_payload["fields"]),
        "schema_bytes": len(json.dumps(schema_payload)),
        "prompt_tokens": records[0].prompt_tokens,
    }


def test_scale_invariance(benchmark, results_dir):
    def sweep():
        return [_score_at_scale(n) for n in SIZES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # schema payload identical at every scale
    schema_sizes = {r["schema_bytes"] for r in rows}
    assert len(schema_sizes) == 1
    # prompt size saturates once the bounded example pools fill (n >= 10);
    # even n=1 -> n=1000 stays within a few percent
    tokens_10_up = {r["prompt_tokens"] for r in rows if r["n_inputs"] >= 10}
    assert max(tokens_10_up) - min(tokens_10_up) <= 8
    all_tokens = [r["prompt_tokens"] for r in rows]
    assert max(all_tokens) - min(all_tokens) < 0.1 * min(all_tokens)

    # scores consistent across three orders of magnitude
    scores = [r["mean_score"] for r in rows]
    assert max(scores) - min(scores) < 0.08
    assert min(scores) > 0.9

    # the data volume really did scale
    assert rows[0]["n_tasks"] == 8 and rows[-1]["n_tasks"] == 8000

    write_result(
        results_dir,
        "scale_invariance.txt",
        series_table(
            [
                {
                    "n_inputs": r["n_inputs"],
                    "n_tasks": r["n_tasks"],
                    "mean_score": round(r["mean_score"], 3),
                    "schema_bytes": r["schema_bytes"],
                    "prompt_tokens": r["prompt_tokens"],
                }
                for r in rows
            ],
            ["n_inputs", "n_tasks", "mean_score", "schema_bytes", "prompt_tokens"],
            title="Scale invariance: accuracy and prompt size vs campaign size",
        ),
    )
