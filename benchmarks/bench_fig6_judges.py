"""Figure 6 — scores assigned by two judges across five LLMs (Full config).

Reproduction targets: GPT judge consistently above Claude judge; the
ranking trend identical across judges; largest judge disagreement on
LLaMA 3-8B / Gemini; mild self-preference (GPT judge: gpt ~ claude;
Claude judge: claude > gpt).
"""

from __future__ import annotations

from benchmarks.conftest import ALL_MODELS, JUDGE_NAMES, write_result
from repro.evaluation.reporting import fig6_judge_comparison
from repro.viz.ascii import series_table


def test_fig6_two_judges_five_models(benchmark, eval_env, results_dir):
    _, _, _, runner = eval_env

    def sweep():
        records = runner.run(models=ALL_MODELS, configs=["Full"], n_reps=3)
        return records, fig6_judge_comparison(records, JUDGE_NAMES)

    _records, cmp = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # GPT judge scores higher than Claude judge for every model
    for model in ALL_MODELS:
        assert cmp[model]["gpt-judge"] > cmp[model]["claude-judge"]

    # ranking trend consistent across judges: frontier models on top
    for judge in JUDGE_NAMES:
        ranking = sorted(ALL_MODELS, key=lambda m: cmp[m][judge])
        assert ranking[0] == "llama3-8b"
        assert set(ranking[-2:]) == {"gpt-4", "claude-opus-4"}

    # self-preference: Claude judge puts Claude clearly ahead of GPT;
    # GPT judge has them within error margins (the paper calls it a tie)
    assert cmp["claude-opus-4"]["claude-judge"] - cmp["gpt-4"]["claude-judge"] > 0.01
    assert abs(cmp["gpt-4"]["gpt-judge"] - cmp["claude-opus-4"]["gpt-judge"]) < 0.04

    # largest judge gaps on the weaker models
    gaps = {m: cmp[m]["gpt-judge"] - cmp[m]["claude-judge"] for m in ALL_MODELS}
    assert max(gaps["llama3-8b"], gaps["gemini-2.5-flash-lite"]) > max(
        gaps["gpt-4"], gaps["claude-opus-4"]
    )

    rows = [
        {
            "model": m,
            "gpt_judge": round(cmp[m]["gpt-judge"], 3),
            "claude_judge": round(cmp[m]["claude-judge"], 3),
        }
        for m in ALL_MODELS
    ]
    write_result(
        results_dir,
        "fig6_judge_comparison.txt",
        series_table(
            rows,
            ["model", "gpt_judge", "claude_judge"],
            title="Figure 6: average of per-query median scores by judge "
            "(Full context; paper: GPT judge gpt=0.972/claude=0.970, "
            "Claude judge claude=0.94/gpt=0.91)",
        ),
    )
