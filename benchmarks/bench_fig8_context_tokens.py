"""Figure 8 — contextual components vs performance and token consumption.

Reproduction targets (GPT model, GPT judge): scores rise monotonically
from Baseline to Full; Guidelines beat Schema+Values at a fraction of
the tokens (the paper's headline: "query guidelines provide the
greatest performance boost with lower token cost"); token usage grows
from a few hundred to several thousand while staying inside frontier
context windows.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.evaluation.configs import FIGURE8_ORDER
from repro.evaluation.reporting import fig8_context_vs_tokens
from repro.viz.ascii import scatter, series_table


def test_fig8_score_vs_tokens(benchmark, eval_env, results_dir):
    _, _, _, runner = eval_env

    def sweep():
        records = runner.run(models=["gpt-4"], configs=FIGURE8_ORDER, n_reps=3)
        return fig8_context_vs_tokens(
            records, judge="gpt-judge", configs=FIGURE8_ORDER
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by = {r["config"]: r for r in rows}

    # monotone improvement along the cumulative axis
    assert (
        by["Baseline"]["mean_score"]
        < by["Baseline+FS"]["mean_score"]
        < by["Baseline+FS+Schema"]["mean_score"]
        < by["Full"]["mean_score"]
    )
    # paper endpoint shapes: baseline near-useless, Full near-perfect
    assert by["Baseline"]["mean_score"] < 0.2
    assert by["Full"]["mean_score"] > 0.93

    # guidelines: more accurate AND far cheaper than schema+values
    guide, heavy = by["Baseline+FS+Guidelines"], by["Baseline+FS+Schema+Values"]
    assert guide["mean_score"] > heavy["mean_score"]
    assert guide["mean_tokens"] < 0.5 * heavy["mean_tokens"]

    # token growth: hundreds -> thousands, near the small models' window
    assert by["Baseline"]["mean_tokens"] < 700
    assert 2_500 < by["Full"]["mean_tokens"] < 8_192

    table = series_table(
        [
            {
                "config": r["config"],
                "mean_score": round(r["mean_score"], 3),
                "stdev": round(r["stdev_score"], 3),
                "mean_tokens": round(r["mean_tokens"]),
            }
            for r in rows
        ],
        ["config", "mean_score", "stdev", "mean_tokens"],
        title="Figure 8: score vs token consumption (GPT model, GPT judge; "
        "paper: 0.06 -> 0.97, 293 -> 4300 tokens)",
    )
    chart = scatter(
        [r["mean_tokens"] for r in rows],
        [r["mean_score"] for r in rows],
        labels=[r["config"] for r in rows],
        title="score vs tokens",
    )
    write_result(results_dir, "fig8_context_tokens.txt", table + "\n\n" + chart)
