"""Multi-session agent serving: parity, throughput, cache hit rate.

The serving-layer contract has three legs, each asserted here:

* **parity** — replies produced by the concurrent gateway
  (:class:`~repro.agent.service.AgentService`, 8 sessions drained by a
  worker pool) are *identical*, per session and in order, to the
  serialized baseline that executes every turn one after another on one
  thread.  Concurrency must change wall-clock, never answers;
* **throughput** — with the shared LLM server sleeping its (scaled)
  simulated latency like a real remote endpoint, 8 sessions served by
  8 workers complete the same chat workload >= 4x faster than the
  serialized baseline.  Turns of one session stay strictly ordered;
  the speedup comes purely from overlapping different sessions' LLM
  waits;
* **cache hit rate** — on the repeated-query workload (sessions asking
  the same historical questions against an unchanging store), the
  versioned :class:`~repro.query.QueryCache` answers >= 50 % of lookups
  from cache, and a single store write invalidates exactly once.

``SERVE_BENCH_N`` scales turns-per-session down for CI smoke runs; the
throughput floor is asserted at full scale (>= 8 turns/session), below
that the run still checks parity and reports the measurements.  The
cache floor is deterministic and asserted at every scale.
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import write_result
from repro.agent.service import AgentService
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI
from repro.storage import ProvenanceDatabase
from repro.viz.ascii import series_table

TURNS_PER_SESSION = int(os.environ.get("SERVE_BENCH_N", "8"))
N_SESSIONS = 8
N_WORKERS = 8
N_TASKS = 2000
ROUNDS = 2
MIN_SPEEDUP = 4.0
MIN_HIT_RATE = 0.5
#: scale factor turning simulated LLM latency (~1-3 s) into a real
#: ~70-200 ms sleep — the remote-endpoint wait the workers overlap
REALTIME_FACTOR = 0.07
FULL_SCALE = TURNS_PER_SESSION >= 8

#: the interactive question mix; db questions repeat across sessions,
#: which is exactly the workload the versioned cache exists for
QUESTIONS = (
    "How many tasks have finished?",
    "In the database, how many tasks have finished?",
    "What is the average duration per activity?",
    "In the database, what is the average duration per activity?",
    "How many tasks failed in the database?",
    "Which activity has the highest average duration?",
)


def _task_docs(n_tasks: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    docs = []
    for i in range(n_tasks):
        started = 1000.0 + rng.random() * 5_000
        docs.append(
            {
                "type": "task",
                "task_id": f"t{i}",
                "workflow_id": f"wf-{i % 16:02d}",
                "campaign_id": "serve-bench",
                "activity_id": f"a{i % 6}",
                "status": "FINISHED" if i % 19 else "FAILED",
                "started_at": started,
                "ended_at": started + 1.0 + (i % 7) * 0.25,
                "duration": 1.0 + (i % 7) * 0.25,
                "hostname": f"node-{i % 4}",
                "used": {"x": i},
                "generated": {"y": i % 97},
            }
        )
    return docs


def _session_script(session_idx: int, turns: int) -> list[str]:
    """The fixed turn sequence for one session (deterministic)."""
    script = []
    if session_idx % 2:
        # odd sessions personalise their prompts; replies must still
        # match the serialized baseline session-for-session
        script.append("use the field lr to filter learning rates")
    i = session_idx  # stagger so sessions interleave different questions
    while len(script) < turns:
        script.append(QUESTIONS[i % len(QUESTIONS)])
        i += 1
    return script[:turns]


def _make_service(
    store: ProvenanceDatabase, docs: list[dict], *, realtime_factor: float
) -> AgentService:
    ctx = CaptureContext()
    service = AgentService(
        ctx,
        llm=LLMServer(realtime_factor=realtime_factor),
        query_api=QueryAPI(store),
        max_workers=N_WORKERS,
    )
    # fill the live monitoring context (the agent's own records are
    # type=tool_execution/llm_interaction and stay out of the buffer)
    ctx.broker.publish_batch("provenance.task", docs)
    for i in range(N_SESSIONS):
        service.create_session(f"s{i}")
    return service


def _reply_key(reply) -> tuple:
    return (reply.intent.value, reply.ok, reply.text, reply.code)


def _run_serialized(service: AgentService, scripts: list[list[str]]) -> dict:
    """Round-robin every turn on the calling thread (the baseline)."""
    replies: dict[str, list] = {f"s{i}": [] for i in range(len(scripts))}
    for turn in range(max(len(s) for s in scripts)):
        for i, script in enumerate(scripts):
            if turn < len(script):
                replies[f"s{i}"].append(service.chat(f"s{i}", script[turn]))
    return replies


def _run_concurrent(service: AgentService, scripts: list[list[str]]) -> dict:
    """Submit everything up front; the pool drains sessions in parallel."""
    futures: dict[str, list] = {}
    for i, script in enumerate(scripts):
        futures[f"s{i}"] = [service.submit(f"s{i}", q) for q in script]
    return {sid: [f.result() for f in futs] for sid, futs in futures.items()}


# ---------------------------------------------------------------------------
# parity: concurrent replies identical to the serialized baseline
# ---------------------------------------------------------------------------


def test_reply_parity():
    docs = _task_docs(min(N_TASKS, 1000))
    store = ProvenanceDatabase()
    store.upsert_many(docs)
    scripts = [
        _session_script(i, min(TURNS_PER_SESSION, 4)) for i in range(N_SESSIONS)
    ]

    # no realtime sleep here: parity is about answers, not timing
    serial = _make_service(store, docs, realtime_factor=0.0)
    try:
        baseline = _run_serialized(serial, scripts)
    finally:
        serial.close()

    concurrent = _make_service(store, docs, realtime_factor=0.0)
    try:
        served = _run_concurrent(concurrent, scripts)
        stats = concurrent.stats()
    finally:
        concurrent.close()

    for sid in baseline:
        base = [_reply_key(r) for r in baseline[sid]]
        conc = [_reply_key(r) for r in served[sid]]
        assert base == conc, f"replies diverged for session {sid}"
        assert all(r.ok for r in baseline[sid] if r.intent.value != "greeting")
    assert stats["turns_completed"] == sum(len(s) for s in scripts)
    # store untouched by serving: the agent's own provenance goes to the
    # capture broker, not the historical store
    assert len(store) == len(docs)


# ---------------------------------------------------------------------------
# throughput: 8 sessions / 8 workers >= 4x the serialized baseline
# ---------------------------------------------------------------------------


def test_chat_throughput(results_dir):
    docs = _task_docs(N_TASKS)
    store = ProvenanceDatabase()
    store.upsert_many(docs)
    scripts = [_session_script(i, TURNS_PER_SESSION) for i in range(N_SESSIONS)]
    n_turns = sum(len(s) for s in scripts)

    serial_times, concurrent_times = [], []
    for _ in range(ROUNDS):  # interleaved so machine drift hits both
        serial = _make_service(store, docs, realtime_factor=REALTIME_FACTOR)
        try:
            t0 = time.perf_counter()
            baseline = _run_serialized(serial, scripts)
            serial_times.append(time.perf_counter() - t0)
        finally:
            serial.close()

        concurrent = _make_service(store, docs, realtime_factor=REALTIME_FACTOR)
        try:
            t0 = time.perf_counter()
            served = _run_concurrent(concurrent, scripts)
            concurrent_times.append(time.perf_counter() - t0)
        finally:
            concurrent.close()

        # parity holds at every scale, on every round
        for sid in baseline:
            assert [_reply_key(r) for r in baseline[sid]] == [
                _reply_key(r) for r in served[sid]
            ], f"replies diverged for session {sid}"

    serial_s, concurrent_s = min(serial_times), min(concurrent_times)
    speedup = serial_s / concurrent_s
    rows = [
        {
            "mode": "serialized (1 thread)",
            "total_s": round(serial_s, 2),
            "turns_per_s": round(n_turns / serial_s, 1),
            "speedup_x": 1.0,
        },
        {
            "mode": f"gateway ({N_SESSIONS} sessions / {N_WORKERS} workers)",
            "total_s": round(concurrent_s, 2),
            "turns_per_s": round(n_turns / concurrent_s, 1),
            "speedup_x": round(speedup, 2),
        },
    ]
    if FULL_SCALE:  # smoke runs must not overwrite the published numbers
        write_result(
            results_dir,
            "agent_serving_throughput.txt",
            series_table(
                rows,
                ["mode", "total_s", "turns_per_s", "speedup_x"],
                title=(
                    f"Chat throughput, {n_turns} turns over {N_SESSIONS} "
                    f"sessions, LLM wait ~{int(REALTIME_FACTOR * 1500)} ms/turn "
                    f"(floor at full scale: {MIN_SPEEDUP}x)"
                ),
            ),
        )
    if FULL_SCALE:
        assert speedup >= MIN_SPEEDUP, (
            f"concurrent serving speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"(serialized {serial_s:.2f}s vs gateway {concurrent_s:.2f}s)"
        )


# ---------------------------------------------------------------------------
# cache: repeated historical questions answer from the versioned cache
# ---------------------------------------------------------------------------


def test_cache_hit_rate(results_dir):
    docs = _task_docs(min(N_TASKS, 1000))
    store = ProvenanceDatabase()
    store.upsert_many(docs)
    # the repeated-query workload: every session asks the same
    # historical questions, twice each
    db_questions = [q for q in QUESTIONS if "database" in q]
    scripts = [list(db_questions) * 2 for _ in range(N_SESSIONS)]

    service = _make_service(store, docs, realtime_factor=0.0)
    try:
        served = _run_concurrent(service, scripts)
        for sid, replies in served.items():
            assert all(r.ok for r in replies), f"failed turn in {sid}"
        # at least one turn per repeated question answered from cache
        hit_turns = sum(
            1
            for replies in served.values()
            for r in replies
            if r.details.get("cache") == "hit"
        )
        stats = service.query_cache.stats()
        assert stats["hit_rate"] >= MIN_HIT_RATE, (
            f"cache hit rate {stats['hit_rate']:.2f} < {MIN_HIT_RATE} "
            f"on the repeated-query workload ({stats})"
        )
        # each session's second pass must hit (its own first pass put the
        # entry); first-pass hits depend on cross-session timing — the
        # cache does not coalesce concurrent identical misses
        assert hit_turns >= len(db_questions) * N_SESSIONS

        # invalidation: new provenance bumps the store version; the very
        # next repeat misses, then caches again
        before = store.version()
        store.upsert(dict(docs[0], task_id="t-new", status="FINISHED"))
        assert store.version() > before
        miss = service.chat("s0", db_questions[0])
        assert miss.details.get("cache") == "miss"
        hit = service.chat("s0", db_questions[0])
        assert hit.details.get("cache") == "hit"
        assert miss.ok and hit.ok and miss.text == hit.text
        final = service.query_cache.stats()
    finally:
        service.close()

    if FULL_SCALE:
        write_result(
            results_dir,
            "agent_serving_cache.txt",
            series_table(
                [
                    {
                        "workload": (
                            f"{N_SESSIONS} sessions x "
                            f"{len(db_questions) * 2} repeated db questions"
                        ),
                        "hits": final["hits"],
                        "misses": final["misses"],
                        "hit_rate": round(final["hit_rate"], 3),
                        "invalidations": final["invalidations"],
                    }
                ],
                ["workload", "hits", "misses", "hit_rate", "invalidations"],
                title=(
                    f"Versioned query-result cache (floor: "
                    f"{MIN_HIT_RATE:.0%} hit rate)"
                ),
            ),
        )
