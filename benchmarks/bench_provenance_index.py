"""Indexed provenance store vs. full scan at 100k documents.

The ROADMAP's "fast as the hardware allows" north star requires targeted
OLTP lookups whose cost stays flat as trace volume grows (PROV-AGENT
makes the same point).  This benchmark builds one store with the default
secondary indexes and one with indexing disabled (the seed's full-scan
behaviour), runs the canonical agent query shapes against both, asserts
the result sets are identical, and requires >= 10x speedup for every
indexed shape.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import write_result
from repro.provenance.database import ProvenanceDatabase
from repro.viz.ascii import series_table

N_DOCS = 100_000
MIN_SPEEDUP = 10.0

STATUSES = ["FINISHED"] * 95 + ["FAILED"] * 3 + ["RUNNING"] * 2
ACTIVITIES = ("run_dft", "postprocess", "prepare", "reduce", "analyze")


def _make_docs(n: int) -> list[dict]:
    rng = random.Random(1234)
    docs = []
    for i in range(n):
        started = 1000.0 + i * 0.01
        duration = rng.random() * 10.0
        docs.append(
            {
                "type": "task",
                "task_id": f"{started:.2f}_{i}",
                "campaign_id": f"c{i % 4}",
                "workflow_id": f"w{i % 200}",
                "activity_id": ACTIVITIES[i % len(ACTIVITIES)],
                "status": rng.choice(STATUSES),
                "hostname": f"frontier{i % 512:05d}",
                "started_at": started,
                "ended_at": started + duration,
                "duration": duration,
                "generated": {"bond_id": f"C-H_{i}", "bd_enthalpy": 90 + rng.random() * 20},
            }
        )
    return docs


def _time(fn, *, repeats: int) -> float:
    """Best-of-N seconds per call (best-of defends against CI jitter)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


#: (label, filter) — the OLTP/OLAP shapes the Query API and agent tools emit.
QUERIES = [
    ("point lookup (task_id)", lambda docs: {"task_id": docs[N_DOCS // 2]["task_id"]}),
    ("equality pair (status+workflow)", lambda docs: {"status": "FAILED", "workflow_id": "w7"}),
    ("rare status (eq)", lambda docs: {"status": "RUNNING", "activity_id": "run_dft"}),
    ("range (duration tail)", lambda docs: {"duration": {"$gt": 9.97}}),
    ("time window + status", lambda docs: {"started_at": {"$gte": 1500.0, "$lt": 1501.0}, "status": "FINISHED"}),
    ("$in fan-out", lambda docs: {"status": {"$in": ["FAILED", "RUNNING"]}, "workflow_id": "w3"}),
]


def test_indexed_lookups_vs_full_scan(results_dir):
    docs = _make_docs(N_DOCS)
    indexed = ProvenanceDatabase()
    scan = ProvenanceDatabase(equality_index_fields=(), range_index_fields=())
    indexed.insert_many(docs)
    scan.insert_many(docs)

    rows = []
    for label, make_filt in QUERIES:
        filt = make_filt(docs)
        got_indexed = indexed.find(filt)
        got_scan = scan.find(filt)
        # parity: the planner's fast path returns exactly the scan results
        assert got_indexed == got_scan, f"result divergence for {label}: {filt}"
        assert indexed.explain(filt)["strategy"] == "index", (label, filt)

        t_indexed = _time(lambda: indexed.find(filt), repeats=5)
        t_scan = _time(lambda: scan.find(filt), repeats=3)
        speedup = t_scan / max(t_indexed, 1e-9)
        rows.append(
            {
                "query": label,
                "matches": len(got_indexed),
                "indexed_ms": round(t_indexed * 1e3, 3),
                "scan_ms": round(t_scan * 1e3, 3),
                "speedup_x": round(speedup, 1),
            }
        )
        assert speedup >= MIN_SPEEDUP, (
            f"{label}: {speedup:.1f}x < {MIN_SPEEDUP}x "
            f"(indexed {t_indexed * 1e3:.3f} ms vs scan {t_scan * 1e3:.3f} ms)"
        )

    # unindexable residue must still work (and agree), via scan fallback
    regex_filt = {"generated.bond_id": {"$regex": "C-H_424242$"}}
    assert indexed.find(regex_filt) == scan.find(regex_filt)
    assert indexed.explain(regex_filt)["strategy"] == "scan"

    write_result(
        results_dir,
        "provenance_index.txt",
        series_table(
            rows,
            ["query", "matches", "indexed_ms", "scan_ms", "speedup_x"],
            title=f"Indexed vs full-scan lookups, {N_DOCS:,} docs "
            f"(floor: {MIN_SPEEDUP:.0f}x)",
        ),
    )
