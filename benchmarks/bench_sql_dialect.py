"""SQL dialect: compile overhead and cross-dialect cache behaviour.

The SQL front end is a *compiler* onto the existing query IR, so its
runtime story must be "parse + lower, then exactly the filter dialect's
execution path".  Two properties are asserted:

* **compile overhead** — median cold-cache latency of a SQL request is
  within 10% of the equivalent filter-dialect request over the same
  store (the lexer/parser/checker/compiler account for microseconds;
  execution dominates at volume);
* **cache-hit parity** — an equivalent query warmed through one dialect
  answers from the shared versioned cache in every other dialect that
  compiles to the same IR, and a repeated SQL request is itself a hit.

``SQL_BENCH_N`` scales the document count (default 100k; CI smoke runs
use 3k).  The overhead ceiling is asserted at full scale only — at
smoke scale execution is too fast for a stable ratio and the run just
reports the measurements.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import write_result
from repro.agent.service import AgentService
from repro.api.client import GatewayClient
from repro.api.gateway import ProvenanceGateway
from repro.api.schemas import QueryRequest
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI
from repro.storage import ProvenanceDatabase
from repro.viz.ascii import series_table

N_TASKS = int(os.environ.get("SQL_BENCH_N", "100000"))
ROUNDS = 9
MAX_OVERHEAD = 1.10
FULL_SCALE = N_TASKS >= 100_000

SQL = (
    "SELECT task_id, duration FROM tasks "
    "WHERE status = 'FAILED' ORDER BY duration DESC LIMIT 25"
)
# the sql dialect scopes 'FROM tasks' to type=task via the gateway's
# base filter; the equivalent filter request must carry that clause too
FILTER_REQUEST = QueryRequest(
    dialect="filter",
    filter={"type": "task", "status": "FAILED"},
    sort=(("duration", -1),),
    limit=25,
)
PIPELINE_CODE = (
    "df[df['status'] == 'FAILED']"
    ".sort_values('duration', ascending=False).head(25)"
    "[['task_id', 'duration']]"
)


def _task_docs(n_tasks: int) -> list[dict]:
    docs = []
    for i in range(n_tasks):
        started = 1000.0 + (i % 977) * 3.1
        docs.append(
            {
                "type": "task",
                "task_id": f"t{i}",
                "workflow_id": f"wf-{i % 16:02d}",
                "campaign_id": "sql-bench",
                "activity_id": f"a{i % 6}",
                "status": "FINISHED" if i % 19 else "FAILED",
                "started_at": started,
                "ended_at": started + 1.0 + (i % 7) * 0.25,
                "duration": 1.0 + (i % 7) * 0.25,
                "hostname": f"node-{i % 4}",
                "used": {"x": i},
                "generated": {"y": i % 97},
            }
        )
    return docs


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _timed(client, request, *, cache, rounds: int) -> float:
    """Median cold-cache seconds per request (cache cleared between reps)."""
    samples = []
    for _ in range(rounds):
        cache.clear()
        start = time.perf_counter()
        reply = client.query(request)
        samples.append(time.perf_counter() - start)
        assert reply.frame.to_dicts(), "benchmark query must return rows"
    return _median(samples)


def test_sql_dialect_overhead_and_cache_parity(results_dir, benchmark):
    docs = _task_docs(N_TASKS)
    store = ProvenanceDatabase()
    store.upsert_many(docs)
    ctx = CaptureContext()
    service = AgentService(ctx, llm=LLMServer(), query_api=QueryAPI(store))
    gateway = ProvenanceGateway(service)
    client = GatewayClient(gateway)
    cache = service.query_cache
    sql_request = QueryRequest(dialect="sql", sql=SQL)

    def workload():
        filter_s = _timed(client, FILTER_REQUEST, cache=cache, rounds=ROUNDS)
        sql_s = _timed(client, sql_request, cache=cache, rounds=ROUNDS)
        return filter_s, sql_s

    try:
        filter_s, sql_s = benchmark.pedantic(workload, rounds=1, iterations=1)
        ratio = sql_s / filter_s if filter_s else float("inf")

        # -- cache-hit parity across dialects --------------------------------
        cache.clear()
        client.query(sql_request)  # miss: executes and warms the shared cache
        hits0 = cache.stats()["hits"]
        client.query(sql_request)
        assert cache.stats()["hits"] == hits0 + 1, "repeat SQL must hit"
        client.query(QueryRequest(dialect="pipeline", code=PIPELINE_CODE))
        assert cache.stats()["hits"] == hits0 + 2, (
            "an equivalent pipeline request must reuse the SQL-warmed entry"
        )

        if FULL_SCALE:
            assert ratio <= MAX_OVERHEAD, (
                f"sql dialect is {ratio:.3f}x the filter dialect "
                f"({sql_s * 1e3:.2f} ms vs {filter_s * 1e3:.2f} ms); "
                f"ceiling is {MAX_OVERHEAD}x"
            )
    finally:
        service.close()

    write_result(
        results_dir,
        "sql_dialect_overhead.txt",
        series_table(
            [
                {
                    "dialect": "filter",
                    "median_ms": round(filter_s * 1e3, 3),
                    "docs": N_TASKS,
                },
                {
                    "dialect": "sql (parse+compile+execute)",
                    "median_ms": round(sql_s * 1e3, 3),
                    "docs": N_TASKS,
                },
                {
                    "dialect": "sql/filter ratio",
                    "median_ms": round(ratio, 3),
                    "docs": N_TASKS,
                },
            ],
            ["dialect", "median_ms", "docs"],
            title=(
                f"SQL dialect compile overhead over {N_TASKS} documents "
                f"(cold cache, median of {ROUNDS})"
            ),
        ),
    )
