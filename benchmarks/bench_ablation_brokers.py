"""Ablation A1 — broker profiles and flush strategies (paper §2.3).

The paper motivates broker choice: "Redis offers low-latency messaging
with minimal setup ...; Kafka enables high throughput streaming for
data-intensive workflows; and Mofka provides RDMA-optimized transport".
This bench streams a fixed provenance workload through each simulated
profile and through different client-side flush strategies, comparing
accumulated transport cost.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.messaging.broker import (
    InProcessBroker,
    KAFKA_LIKE,
    MOFKA_LIKE,
    REDIS_LIKE,
)
from repro.messaging.buffer import MessageBuffer, SizeFlush
from repro.viz.ascii import series_table

N_MESSAGES = 2_000
PAYLOAD = {
    "task_id": "t",
    "activity_id": "run_dft",
    "used": {"e0": -155.03},
    "generated": {"bd_energy": 98.65},
    "status": "FINISHED",
    "type": "task",
}


def _stream(profile, batch_size: int) -> float:
    broker = InProcessBroker(profile=profile)
    buffer = MessageBuffer(broker, "provenance.task", SizeFlush(batch_size))
    for i in range(N_MESSAGES):
        buffer.append({**PAYLOAD, "task_id": f"t{i}"})
    buffer.flush()
    assert broker.published_count == N_MESSAGES
    return broker.simulated_cost_s


def test_broker_profiles_and_flush_strategies(benchmark, results_dir):
    def sweep():
        rows = []
        for profile in (REDIS_LIKE, KAFKA_LIKE, MOFKA_LIKE):
            for batch in (1, 16, 256):
                rows.append(
                    {
                        "broker": profile.name,
                        "batch": batch,
                        "cost_ms": _stream(profile, batch) * 1000,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cost = {(r["broker"], r["batch"]): r["cost_ms"] for r in rows}

    # per-message publishing: mofka < redis < kafka (RDMA wins, kafka's
    # per-publish overhead dominates)
    assert cost[("mofka-like", 1)] < cost[("redis-like", 1)] < cost[("kafka-like", 1)]
    # batching rescues kafka: at 256/batch it beats unbatched redis
    assert cost[("kafka-like", 256)] < cost[("redis-like", 1)]
    # batching always helps (amortised batch overhead)
    for broker in ("redis-like", "kafka-like", "mofka-like"):
        assert cost[(broker, 256)] < cost[(broker, 1)]

    write_result(
        results_dir,
        "ablation_brokers.txt",
        series_table(
            [
                {**r, "cost_ms": round(r["cost_ms"], 2)}
                for r in rows
            ],
            ["broker", "batch", "cost_ms"],
            title=f"Broker/flush ablation: simulated cost to stream "
            f"{N_MESSAGES} task messages",
        ),
    )


def test_throughput_of_in_process_hub(benchmark):
    """Micro-benchmark: real wall-clock throughput of the hub itself."""
    broker = InProcessBroker()
    received = []
    broker.subscribe("provenance.#", received.append)

    def publish_batch():
        broker.publish_batch("provenance.task", [PAYLOAD] * 500)

    benchmark(publish_batch)
    assert received  # delivery actually happened
