"""Durable vs in-memory store: ingest overhead, recovery time.

The durable backend's pitch is "durability as a tax, not a rewrite":
the WAL rides in front of the same in-memory engine, so the questions a
deployment actually asks are *how much slower is ingest* and *how long
does a cold start take*.  Three legs:

* **ingest overhead** — batch lifecycle ingest (the keeper's
  ``upsert_many`` fast path) through the WAL with the default
  ``fsync="rotate"`` policy must stay within 2x of the bare in-memory
  store (>= 0.5x its throughput).  Serialising every batch to JSON and
  appending one framed record is the whole tax; paying more than the
  store itself costs would mean the framing, not the durability, is the
  bottleneck;
* **recovery time** — a cold start over the full WAL (worst case: no
  snapshot yet) and over snapshot + empty tail (the steady state after
  compaction) are both timed at 100k tasks.  Recovery parity with the
  in-memory reference is asserted at every scale;
* **snapshot leverage** — post-compaction recovery must beat full-WAL
  replay: loading materialised state has to be cheaper than re-running
  history, or compaction serves no purpose.

``DURABLE_BENCH_N`` scales the task count down for CI smoke runs; the
throughput/recovery floors are asserted at full scale (>= 100k tasks),
below that the run still checks parity and reports the measurements.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time

from benchmarks.conftest import write_result
from repro.storage import DurableStore, ProvenanceDatabase
from repro.viz.ascii import series_table

N_TASKS = int(os.environ.get("DURABLE_BENCH_N", "100000"))
BATCH = 200
MIN_INGEST_RATIO = 0.5  # durable throughput >= 0.5x memory throughput
#: floors only hold once fixed costs are amortised; smoke runs report
FULL_SCALE = N_TASKS >= 100_000

N_WORKFLOWS = max(8, min(64, N_TASKS // 1000))


def _lifecycle_batches(n_tasks: int, seed: int = 11) -> list[list[dict]]:
    """Keeper-shaped ingest: per-task lifecycles, delivered in batches."""
    rng = random.Random(seed)
    messages: list[dict] = []
    for i in range(n_tasks):
        started = 1000.0 + rng.random() * 10_000
        base = {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % N_WORKFLOWS:03d}",
            "activity_id": f"a{i % 7}",
            "campaign_id": "bench",
            "used": {},
            "generated": {},
        }
        messages.append(dict(base, status="RUNNING", started_at=started))
        messages.append(
            dict(
                base,
                status="FINISHED",
                started_at=started,
                ended_at=started + 1.0,
                duration=1.0,
                generated={"y": i % 97},
            )
        )
    rng.shuffle(messages)
    return [messages[i : i + BATCH] for i in range(0, len(messages), BATCH)]


def _ingest(store, batches: list[list[dict]]) -> float:
    t0 = time.perf_counter()
    for batch in batches:
        store.upsert_many(batch)
    return time.perf_counter() - t0


def _check_recovery_parity(recovered, reference) -> None:
    assert len(recovered) == len(reference)
    assert recovered.field_counts("status") == reference.field_counts("status")
    wf = f"wf-{N_WORKFLOWS // 2:03d}"
    assert recovered.find(
        {"workflow_id": wf}, sort=[("started_at", 1)]
    ) == reference.find({"workflow_id": wf}, sort=[("started_at", 1)])
    pipeline = [
        {"$group": {"_id": "$activity_id", "n": {"$sum": 1}}},
        {"$sort": {"n": -1}},
    ]
    assert recovered.aggregate(pipeline) == reference.aggregate(pipeline)


def test_durable_ingest_and_recovery(results_dir):
    batches = _lifecycle_batches(N_TASKS)
    n_messages = sum(len(b) for b in batches)
    tmp = tempfile.mkdtemp(prefix="bench-durable-")
    try:
        memory = ProvenanceDatabase()
        memory_s = _ingest(memory, batches)

        path = os.path.join(tmp, "store")
        durable = DurableStore(path)  # default fsync="rotate"
        durable_s = _ingest(durable, batches)
        ratio = memory_s / durable_s  # durable throughput as x of memory
        wal_bytes = sum(
            os.path.getsize(os.path.join(path, f)) for f in os.listdir(path)
        )
        durable.close()

        # cold start, worst case: full-WAL replay (never compacted)
        t0 = time.perf_counter()
        recovered = DurableStore(path)
        replay_s = time.perf_counter() - t0
        _check_recovery_parity(recovered, memory)

        # steady state: snapshot + empty tail
        recovered.snapshot()
        recovered.close()
        t0 = time.perf_counter()
        recovered = DurableStore(path)
        snap_s = time.perf_counter() - t0
        _check_recovery_parity(recovered, memory)
        recovered.close()

        rows = [
            {
                "store": "memory",
                "ingest_s": round(memory_s, 2),
                "throughput_msg_s": int(n_messages / memory_s),
                "recovery_s": "-",
            },
            {
                "store": "durable(fsync=rotate)",
                "ingest_s": round(durable_s, 2),
                "throughput_msg_s": int(n_messages / durable_s),
                "recovery_s": f"{replay_s:.2f} wal / {snap_s:.2f} snap",
            },
        ]
        if FULL_SCALE:  # smoke runs must not overwrite the published numbers
            write_result(
                results_dir,
                "durable_store_ingest.txt",
                series_table(
                    rows,
                    ["store", "ingest_s", "throughput_msg_s", "recovery_s"],
                    title=(
                        f"Durable ingest + recovery, {n_messages:,} messages / "
                        f"{N_TASKS:,} tasks, WAL {wal_bytes / 1e6:.0f} MB "
                        f"(floor at full scale: {MIN_INGEST_RATIO}x memory "
                        f"throughput)"
                    ),
                ),
            )
            assert ratio >= MIN_INGEST_RATIO, (
                f"durable ingest at {ratio:.2f}x memory throughput, "
                f"floor is {MIN_INGEST_RATIO}x "
                f"(memory {memory_s:.2f}s vs durable {durable_s:.2f}s)"
            )
            # compaction must buy something: materialised state loads
            # faster than re-running the whole history
            assert snap_s < replay_s, (
                f"snapshot recovery {snap_s:.2f}s not faster than "
                f"full-WAL replay {replay_s:.2f}s"
            )
    finally:
        shutil.rmtree(tmp)


def test_fsync_policy_spectrum(results_dir):
    """Report the cost of each fsync policy on a small fixed workload.

    Informational at every scale (the policies trade durability for
    latency by design, so there is no floor to assert) — but all three
    must recover to identical contents.
    """
    batches = _lifecycle_batches(min(N_TASKS, 5_000), seed=13)
    reference = ProvenanceDatabase()
    _ingest(reference, batches)
    rows = []
    tmp = tempfile.mkdtemp(prefix="bench-fsync-")
    try:
        for policy in ("never", "rotate", "always"):
            path = os.path.join(tmp, policy)
            store = DurableStore(path, fsync=policy)
            elapsed = _ingest(store, batches)
            store.close()
            recovered = DurableStore(path)
            _check_recovery_parity(recovered, reference)
            recovered.close()
            rows.append(
                {
                    "fsync": policy,
                    "ingest_s": round(elapsed, 3),
                    "batches_s": int(len(batches) / elapsed),
                }
            )
        if FULL_SCALE:
            write_result(
                results_dir,
                "durable_store_fsync.txt",
                series_table(
                    rows,
                    ["fsync", "ingest_s", "batches_s"],
                    title=(
                        f"fsync policy cost, {sum(len(b) for b in batches):,} "
                        f"messages in {len(batches)} batches"
                    ),
                ),
            )
    finally:
        shutil.rmtree(tmp)
