"""Sharded vs single-node provenance store: parity, ingest, latency.

The sharded store's contract has three legs, each asserted here:

* **parity** — for identical document streams (including lifecycle
  re-deliveries and ``workflow_id`` changes), every ``find`` /
  ``sort`` / ``limit`` / ``aggregate`` / ``count`` / ``field_counts``
  answer is *identical* to the single-node reference (``distinct``
  matches as a set; its emission order groups by shard);
* **concurrent ingest** — four writer threads streaming per-message
  task lifecycles (SUBMITTED -> RUNNING -> FINISHED, out-of-order
  timestamps, exactly the keeper's non-batched delivery path) ingest
  >= 2x faster into 4 shards than into one store.  One store means one
  write lock: every concurrent upsert convoys on it, and its sorted
  range indexes span the whole collection; four shards cut both the
  collision rate and the per-insert index window by ~4x;
* **query latency** — scatter-gather reads (filters that cannot route)
  cost no more than 1.5x single-node, and workflow-targeted reads stay
  competitive by visiting one shard.

``SHARD_BENCH_N`` scales the task count down for CI smoke runs; the
throughput/latency floors are asserted at full scale (>= 50k tasks),
below that the run still checks parity and reports the measurements.
"""

from __future__ import annotations

import os
import random
import threading
import time

from benchmarks.conftest import write_result
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore
from repro.viz.ascii import series_table

N_TASKS = int(os.environ.get("SHARD_BENCH_N", "60000"))
N_SHARDS = 4
N_WRITERS = 4
ROUNDS = 3
MIN_INGEST_SPEEDUP = 2.0
MAX_SCATTER_LATENCY = 1.5
#: floors only hold once fixed costs are amortised; smoke runs report
FULL_SCALE = N_TASKS >= 50_000

N_WORKFLOWS = max(8, min(64, N_TASKS // 1000))


def _lifecycle_streams(
    n_tasks: int, writers: int = N_WRITERS, seed: int = 7
) -> list[list[dict]]:
    """Per-writer message streams: each task emits its full lifecycle.

    Four concurrent producers (engine worker pools) each own a slice of
    the tasks and deliver three messages per task; timestamps are drawn
    out of order, as racing campaigns produce them.
    """
    rng = random.Random(seed)
    streams: list[list[dict]] = [[] for _ in range(writers)]
    for i in range(n_tasks):
        started = 1000.0 + rng.random() * 10_000
        base = {
            "type": "task",
            "task_id": f"t{i}",
            "workflow_id": f"wf-{i % N_WORKFLOWS:03d}",
            "activity_id": f"a{i % 7}",
            "campaign_id": "bench",
            "used": {},
            "generated": {},
        }
        stream = streams[i % writers]
        stream.append(dict(base, status="SUBMITTED"))
        stream.append(dict(base, status="RUNNING", started_at=started))
        stream.append(
            dict(
                base,
                status="FINISHED",
                started_at=started,
                ended_at=started + 1.0,
                duration=1.0,
                generated={"y": i % 97},
            )
        )
    for stream in streams:
        rng.shuffle(stream)  # lifecycles overlap in time
    return streams


def _time(fn, *, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# parity: identical answers from both stores on a randomized workload
# ---------------------------------------------------------------------------


def test_parity_on_randomized_workload():
    rng = random.Random(23)
    streams = _lifecycle_streams(min(N_TASKS, 4000), seed=23)
    single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(N_SHARDS)
    for stream in streams:
        single.upsert_many(stream)
        sharded.upsert_many(stream)
    # a few late workflow_id corrections (the stray-routing path)
    population = min(N_TASKS, 4000)
    for i in rng.sample(range(population), min(25, population)):
        patch = {"type": "task", "task_id": f"t{i}", "workflow_id": "wf-moved"}
        single.upsert(patch)
        sharded.upsert(patch)

    assert len(single) == len(sharded)
    wf = f"wf-{rng.randrange(N_WORKFLOWS):03d}"
    checks = [
        ({}, None, None),
        ({"workflow_id": wf}, None, None),
        ({"workflow_id": "wf-moved"}, None, None),
        ({"workflow_id": {"$in": [wf, "wf-001", "wf-moved"]}}, [("started_at", 1)], 40),
        ({"status": "FINISHED"}, [("started_at", -1)], 25),
        ({"duration": {"$gte": 1.0}}, [("workflow_id", 1), ("started_at", 1)], None),
        ({"$or": [{"workflow_id": wf}, {"status": "SUBMITTED"}]}, None, 100),
        ({"ended_at": {"$exists": False}}, None, None),
        ({"task_id": {"$regex": "t1..$"}}, [("task_id", 1)], None),
    ]
    for filt, sort, limit in checks:
        assert single.find(filt, sort=sort, limit=limit) == sharded.find(
            filt, sort=sort, limit=limit
        ), (filt, sort, limit)
        assert single.count(filt) == sharded.count(filt)
    pipeline = [
        {"$match": {"status": "FINISHED"}},
        {"$group": {"_id": "$workflow_id", "n": {"$sum": 1}, "avg": {"$avg": "$duration"}}},
        {"$sort": {"n": -1}},
        {"$limit": 10},
    ]
    assert single.aggregate(pipeline) == sharded.aggregate(pipeline)
    assert single.field_counts("status") == sharded.field_counts("status")
    assert set(single.distinct("workflow_id")) == set(sharded.distinct("workflow_id"))
    # the routing decision is visible and correct
    plan = sharded.explain({"workflow_id": wf})
    assert plan["strategy"] == "targeted" and len(plan["shards"]) >= 1
    assert sharded.explain({"status": "FINISHED"})["strategy"] == "scatter"


# ---------------------------------------------------------------------------
# concurrent ingest throughput: 4 writers, per-message lifecycle streams
# ---------------------------------------------------------------------------


def _run_ingest(store, streams: list[list[dict]]) -> float:
    def writer(stream: list[dict]) -> None:
        for doc in stream:
            store.upsert(doc)

    threads = [
        threading.Thread(target=writer, args=(s,)) for s in streams
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def test_concurrent_ingest_throughput(results_dir):
    streams = _lifecycle_streams(N_TASKS)
    n_messages = sum(len(s) for s in streams)
    single_times, sharded_times = [], []
    for _ in range(ROUNDS):  # interleaved so machine drift hits both
        single_times.append(_run_ingest(ProvenanceDatabase(), streams))
        sharded_times.append(_run_ingest(ShardedProvenanceStore(N_SHARDS), streams))
    single_s, sharded_s = min(single_times), min(sharded_times)
    speedup = single_s / sharded_s

    rows: list[dict] = [
        {
            "store": "single-node",
            "ingest_s": round(single_s, 2),
            "throughput_msg_s": int(n_messages / single_s),
            "speedup_x": 1.0,
        },
        {
            "store": f"sharded({N_SHARDS})",
            "ingest_s": round(sharded_s, 2),
            "throughput_msg_s": int(n_messages / sharded_s),
            "speedup_x": round(speedup, 2),
        },
    ]
    if FULL_SCALE:  # smoke runs must not overwrite the published numbers
        write_result(
            results_dir,
            "sharded_store_ingest.txt",
            series_table(
                rows,
                ["store", "ingest_s", "throughput_msg_s", "speedup_x"],
                title=(
                    f"Concurrent ingest, {N_WRITERS} writers x per-message "
                    f"lifecycle streams, {n_messages:,} messages / {N_TASKS:,} tasks "
                    f"(floor at full scale: {MIN_INGEST_SPEEDUP}x)"
                ),
            ),
        )
    # ingesting into shards must also converge to the same contents
    check = ShardedProvenanceStore(N_SHARDS)
    for stream in streams:
        check.upsert_many(stream)
    assert len(check) == N_TASKS
    if FULL_SCALE:
        assert speedup >= MIN_INGEST_SPEEDUP, (
            f"concurrent ingest speedup {speedup:.2f}x < {MIN_INGEST_SPEEDUP}x "
            f"(single {single_s:.2f}s vs sharded {sharded_s:.2f}s)"
        )


# ---------------------------------------------------------------------------
# query latency: targeted routes win, scatter-gather stays within 1.5x
# ---------------------------------------------------------------------------


def test_query_latency(results_dir):
    streams = _lifecycle_streams(N_TASKS)
    single, sharded = ProvenanceDatabase(), ShardedProvenanceStore(N_SHARDS)
    for stream in streams:
        single.upsert_many(stream)
        sharded.upsert_many(stream)

    wf = f"wf-{N_WORKFLOWS // 2:03d}"
    queries = [
        (
            "targeted: workflow equality",
            False,
            lambda st: st.find({"workflow_id": wf}),
        ),
        (
            "scatter: status + time range",
            True,
            lambda st: st.find(
                {"status": "FINISHED", "started_at": {"$gt": 9000.0}}, limit=200
            ),
        ),
        (
            "scatter: sort + limit",
            True,
            lambda st: st.find(
                {"started_at": {"$gt": 8000.0}},
                sort=[("started_at", -1)],
                limit=50,
            ),
        ),
        (
            "scatter: aggregate group",
            True,
            lambda st: st.aggregate(
                [
                    {"$match": {"started_at": {"$lt": 6000.0}}},
                    {"$group": {"_id": "$activity_id", "n": {"$sum": 1}}},
                ]
            ),
        ),
    ]
    def measure(query) -> tuple[float, float]:
        # interleave the timings round by round so machine-load bursts
        # hit both stores alike, then compare the least-perturbed run of
        # each (min), the same estimator the other perf benches use
        singles, shardeds = [], []
        for _ in range(9):
            singles.append(_time(lambda: query(single), repeats=1))
            shardeds.append(_time(lambda: query(sharded), repeats=1))
        return min(singles), min(shardeds)

    rows = []
    worst_scatter = 0.0
    for label, is_scatter, query in queries:
        assert query(single) == query(sharded), label  # answers stay identical
        t_single, t_sharded = measure(query)
        ratio = t_sharded / max(t_single, 1e-9)
        if is_scatter and ratio > MAX_SCATTER_LATENCY:
            # a multi-second load burst can poison one shape's whole
            # window even interleaved; one re-measure separates that
            # from a genuine regression before the assert below
            t_single, t_sharded = measure(query)
            ratio = min(ratio, t_sharded / max(t_single, 1e-9))
        if is_scatter:
            worst_scatter = max(worst_scatter, ratio)
        rows.append(
            {
                "query": label,
                "single_ms": round(t_single * 1e3, 2),
                "sharded_ms": round(t_sharded * 1e3, 2),
                "ratio": round(ratio, 2),
            }
        )
    if FULL_SCALE:  # smoke runs must not overwrite the published numbers
        write_result(
            results_dir,
            "sharded_store_latency.txt",
            series_table(
                rows,
                ["query", "single_ms", "sharded_ms", "ratio"],
                title=(
                    f"Query latency over {len(single):,} tasks, "
                    f"{N_SHARDS} shards (scatter ceiling at full scale: "
                    f"{MAX_SCATTER_LATENCY}x)"
                ),
            ),
        )
    if FULL_SCALE:
        assert worst_scatter <= MAX_SCATTER_LATENCY, (
            f"scatter-gather latency {worst_scatter:.2f}x exceeds "
            f"{MAX_SCATTER_LATENCY}x single-node"
        )
