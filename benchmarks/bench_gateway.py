"""Gateway API: transport parity and concurrent HTTP chat throughput.

The gateway contract has two legs, each asserted here:

* **parity** — for a matrix of requests spanning all four query
  dialects (``filter`` / ``pipeline`` / ``sql`` / ``graph``), chat,
  lineage, CSV rendering, and error envelopes, the in-process
  :class:`~repro.api.client.GatewayClient` and the HTTP
  :class:`~repro.api.client.RemoteClient` return **byte-identical**
  payloads — against *both* transports (the threaded
  :class:`~repro.api.http.GatewayHTTPServer` and the asyncio
  :class:`~repro.api.aio.AsyncGatewayServer`).  The transport may
  change latency, never bytes;
* **throughput** — with the shared LLM server sleeping its (scaled)
  simulated latency like a real remote endpoint, 8 concurrent HTTP
  clients (one keep-alive connection each, one session each) complete
  the same chat workload >= 2x faster than the same turns issued
  serially over one connection.  The speedup comes from the threaded
  HTTP server overlapping different sessions' LLM waits — per-session
  ordering is untouched.

``GATEWAY_BENCH_N`` scales turns-per-client down for CI smoke runs; the
throughput floor is asserted at full scale (>= 8 turns/client), below
that the run still checks parity on every reply and reports the
measurements.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from benchmarks.conftest import write_result
from repro.agent.service import AgentService
from repro.api.aio import AsyncGatewayServer
from repro.api.client import GatewayClient, RemoteClient
from repro.api.gateway import ProvenanceGateway
from repro.api.http import GatewayHTTPServer
from repro.api.schemas import QueryRequest, from_json
from repro.capture.context import CaptureContext
from repro.llm.service import LLMServer
from repro.provenance.query_api import QueryAPI
from repro.storage import ProvenanceDatabase
from repro.viz.ascii import series_table

TURNS_PER_CLIENT = int(os.environ.get("GATEWAY_BENCH_N", "8"))
N_CLIENTS = 8
N_TASKS = 2000
ROUNDS = 2
MIN_SPEEDUP = 2.0
#: scale factor turning simulated LLM latency (~1-3 s) into a real
#: ~70-200 ms sleep — the remote-endpoint wait concurrent clients overlap
REALTIME_FACTOR = 0.07
FULL_SCALE = TURNS_PER_CLIENT >= 8

QUESTIONS = (
    "How many tasks have finished?",
    "In the database, how many tasks have finished?",
    "What is the average duration per activity?",
    "In the database, what is the average duration per activity?",
    "How many tasks failed in the database?",
    "Which activity has the highest average duration?",
)

#: the parity matrix: every dialect, scalar + frame + paginated shapes,
#: and the error surface
PARITY_QUERIES = (
    QueryRequest(dialect="filter", filter={"status": "FAILED"}),
    QueryRequest(dialect="filter", filter={}, sort=(("started_at", -1),), limit=10),
    QueryRequest(dialect="filter", filter={"used.x": {"$lt": 5}}, page_size=3),
    QueryRequest(
        dialect="pipeline",
        code="df[df['status'] == 'FINISHED'][['task_id', 'duration']].head(20)",
    ),
    QueryRequest(dialect="pipeline", code="df['duration'].mean()"),
    QueryRequest(
        dialect="pipeline",
        code="df.groupby('activity_id')['duration'].mean()",
    ),
    QueryRequest(
        dialect="sql",
        sql="SELECT task_id, duration FROM tasks "
        "WHERE status = 'FINISHED' ORDER BY task_id LIMIT 20",
    ),
    QueryRequest(dialect="sql", sql="SELECT AVG(duration) FROM tasks"),
    QueryRequest(
        dialect="sql",
        sql="SELECT COUNT(*) FROM tasks GROUP BY activity_id",
        page_size=4,
    ),
    QueryRequest(dialect="graph", operation="upstream", task_id="t64"),
    QueryRequest(dialect="graph", operation="impact_size", task_id="t0"),
    QueryRequest(dialect="graph", operation="roots", page_size=5),
    QueryRequest(dialect="sql"),  # missing statement -> BAD_REQUEST
    QueryRequest(dialect="sql", sql="SELECT * FROM tasks WHERE"),
    QueryRequest(dialect="pipeline", code="df.!!!"),
    QueryRequest(dialect="graph", operation="upstream", task_id="ghost"),
)


def _task_docs(n_tasks: int) -> list[dict]:
    docs = []
    for i in range(n_tasks):
        started = 1000.0 + (i % 977) * 3.1
        docs.append(
            {
                "type": "task",
                "task_id": f"t{i}",
                "workflow_id": f"wf-{i % 16:02d}",
                "campaign_id": "gw-bench",
                "activity_id": f"a{i % 6}",
                "status": "FINISHED" if i % 19 else "FAILED",
                "started_at": started,
                "ended_at": started + 1.0 + (i % 7) * 0.25,
                "duration": 1.0 + (i % 7) * 0.25,
                "hostname": f"node-{i % 4}",
                "used": {"x": i, "_upstream": [f"t{i - 1}"] if i % 64 else []},
                "generated": {"y": i % 97},
            }
        )
    return docs


def _make_stack(realtime_factor: float):
    docs = _task_docs(N_TASKS)
    store = ProvenanceDatabase()
    store.upsert_many(docs)
    ctx = CaptureContext()
    service = AgentService(
        ctx,
        llm=LLMServer(realtime_factor=realtime_factor),
        query_api=QueryAPI(store),
        max_workers=N_CLIENTS,
    )
    ctx.broker.publish_batch("provenance.task", docs)
    gateway = ProvenanceGateway(service)
    return service, gateway


def _session_script(i: int, turns: int) -> list[str]:
    script = []
    k = i
    while len(script) < turns:
        script.append(QUESTIONS[k % len(QUESTIONS)])
        k += 1
    return script


# ---------------------------------------------------------------------------
# parity: both HTTP transports and the in-process client are byte-identical
# ---------------------------------------------------------------------------


def make_server(transport: str, gateway):
    """A started gateway server of either transport flavor."""
    if transport == "threaded":
        return GatewayHTTPServer(gateway).start()
    if transport == "asyncio":
        return AsyncGatewayServer(gateway).start()
    raise ValueError(f"unknown transport {transport!r}")


@pytest.mark.parametrize("transport", ["threaded", "asyncio"])
def test_transport_parity(results_dir, transport):
    service, gateway = _make_stack(realtime_factor=0.0)
    server = make_server(transport, gateway)
    local = GatewayClient(gateway)
    remote = RemoteClient.for_server(server)
    checked = 0
    try:
        for request in PARITY_QUERIES:
            assert local.query_json(request) == remote.query_json(request), request
            checked += 1
        for request in PARITY_QUERIES[:3]:
            assert local.query_csv(request) == remote.query_csv(request)
            checked += 1
        assert local.lineage_json("t64", depth=3) == remote.lineage_json(
            "t64", depth=3
        )
        assert local.lineage_json("ghost") == remote.lineage_json("ghost")
        checked += 2
        # chat parity: separate sessions, same conversation
        local.create_session("local")
        remote.create_session("remote")
        for question in QUESTIONS:
            a = from_json(local.chat_json("local", question))
            b = from_json(remote.chat_json("remote", question))
            assert (a.text, a.intent, a.ok, a.code, a.table, a.chart) == (
                b.text, b.intent, b.ok, b.code, b.table, b.chart
            ), question
            checked += 1
    finally:
        remote.close()
        server.stop()
        service.close()

    if FULL_SCALE:
        write_result(
            results_dir,
            f"gateway_parity_{transport}.txt",
            series_table(
                [
                    {
                        "surface": "query json (4 dialects + errors)",
                        "requests": len(PARITY_QUERIES),
                        "byte_identical": "yes",
                    },
                    {
                        "surface": "query csv (content negotiation)",
                        "requests": 3,
                        "byte_identical": "yes",
                    },
                    {
                        "surface": "lineage json",
                        "requests": 2,
                        "byte_identical": "yes",
                    },
                    {
                        "surface": "chat replies (per-session)",
                        "requests": len(QUESTIONS),
                        "byte_identical": "yes",
                    },
                ],
                ["surface", "requests", "byte_identical"],
                title=(
                    f"GatewayClient vs RemoteClient[{transport}] transport "
                    f"parity ({checked} paired requests)"
                ),
            ),
        )


# ---------------------------------------------------------------------------
# throughput: 8 concurrent HTTP clients >= 2x one serialized connection
# ---------------------------------------------------------------------------


def _run_serialized(server, scripts: list[list[str]]) -> dict[str, list]:
    """Every turn in order over ONE keep-alive connection (the baseline)."""
    replies: dict[str, list] = {f"s{i}": [] for i in range(len(scripts))}
    client = RemoteClient.for_server(server)
    try:
        for turn in range(max(len(s) for s in scripts)):
            for i, script in enumerate(scripts):
                if turn < len(script):
                    replies[f"s{i}"].append(client.chat(f"s{i}", script[turn]))
    finally:
        client.close()
    return replies


def _run_concurrent(server, scripts: list[list[str]]) -> dict[str, list]:
    """One thread + one connection + one session per client."""
    replies: dict[str, list] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker(i: int) -> None:
        client = RemoteClient.for_server(server)
        try:
            mine = [client.chat(f"s{i}", q) for q in scripts[i]]
            with lock:
                replies[f"s{i}"] = mine
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(len(scripts))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return replies


def _reply_key(reply) -> tuple:
    return (reply.intent, reply.ok, reply.text, reply.code)


def test_http_chat_throughput(results_dir):
    scripts = [
        _session_script(i, TURNS_PER_CLIENT) for i in range(N_CLIENTS)
    ]
    n_turns = sum(len(s) for s in scripts)

    serial_times, concurrent_times = [], []
    for _ in range(ROUNDS):  # interleaved so machine drift hits both
        service, gateway = _make_stack(realtime_factor=REALTIME_FACTOR)
        server = GatewayHTTPServer(gateway).start()
        try:
            for i in range(N_CLIENTS):
                service.create_session(f"s{i}")
            t0 = time.perf_counter()
            baseline = _run_serialized(server, scripts)
            serial_times.append(time.perf_counter() - t0)
        finally:
            server.stop()
            service.close()

        service, gateway = _make_stack(realtime_factor=REALTIME_FACTOR)
        server = GatewayHTTPServer(gateway).start()
        try:
            for i in range(N_CLIENTS):
                service.create_session(f"s{i}")
            t0 = time.perf_counter()
            served = _run_concurrent(server, scripts)
            concurrent_times.append(time.perf_counter() - t0)
        finally:
            server.stop()
            service.close()

        # parity at every scale, on every round: concurrency must change
        # wall-clock, never answers
        for sid in baseline:
            assert [_reply_key(r) for r in baseline[sid]] == [
                _reply_key(r) for r in served[sid]
            ], f"replies diverged for session {sid}"

    serial_s, concurrent_s = min(serial_times), min(concurrent_times)
    speedup = serial_s / concurrent_s
    rows = [
        {
            "mode": "serialized (1 HTTP connection)",
            "total_s": round(serial_s, 2),
            "turns_per_s": round(n_turns / serial_s, 1),
            "speedup_x": 1.0,
        },
        {
            "mode": f"concurrent ({N_CLIENTS} HTTP clients)",
            "total_s": round(concurrent_s, 2),
            "turns_per_s": round(n_turns / concurrent_s, 1),
            "speedup_x": round(speedup, 2),
        },
    ]
    if FULL_SCALE:  # smoke runs must not overwrite the published numbers
        write_result(
            results_dir,
            "gateway_throughput.txt",
            series_table(
                rows,
                ["mode", "total_s", "turns_per_s", "speedup_x"],
                title=(
                    f"HTTP chat throughput, {n_turns} turns over {N_CLIENTS} "
                    f"sessions, LLM wait ~{int(REALTIME_FACTOR * 1500)} ms/turn "
                    f"(floor at full scale: {MIN_SPEEDUP}x)"
                ),
            ),
        )
        assert speedup >= MIN_SPEEDUP, (
            f"concurrent HTTP serving speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"(serialized {serial_s:.2f}s vs concurrent {concurrent_s:.2f}s)"
        )
