"""Ablation A2 — dynamic dataflow schema size vs complexity and volume.

The design's core trade-off (paper §4.1/§5.4): prompt cost depends on
*workflow complexity* (distinct activities x fields), never on task
count.  This bench measures schema payload tokens while scaling each
axis independently, and compares the synthetic vs chemistry schemas.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.agent.schema import DynamicDataflowSchema
from repro.llm.tokenizer import count_tokens
from repro.viz.ascii import series_table
import json


def _payload_tokens(schema: DynamicDataflowSchema) -> int:
    return count_tokens(json.dumps(schema.to_prompt_payload()))


def _msg(activity: str, n_fields: int, value: float):
    return {
        "task_id": "t",
        "activity_id": activity,
        "used": {f"p{i}": value for i in range(n_fields)},
        "generated": {f"o{i}": value for i in range(n_fields)},
        "status": "FINISHED",
    }


def test_schema_scales_with_complexity_not_volume(benchmark, results_dir):
    def sweep():
        rows = []
        # axis 1: volume (same 4 activities, more messages)
        for n_msgs in (10, 100, 1000):
            s = DynamicDataflowSchema()
            for i in range(n_msgs):
                s.update(_msg(f"act{i % 4}", 3, float(i)))
            rows.append(
                {"axis": "volume", "x": n_msgs, "tokens": _payload_tokens(s)}
            )
        # axis 2: complexity (more distinct activities, fixed volume)
        for n_acts in (2, 8, 32):
            s = DynamicDataflowSchema()
            for i in range(1000):
                s.update(_msg(f"act{i % n_acts}", 3, float(i)))
            rows.append(
                {"axis": "complexity", "x": n_acts, "tokens": _payload_tokens(s)}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    volume = [r["tokens"] for r in rows if r["axis"] == "volume"]
    complexity = [r["tokens"] for r in rows if r["axis"] == "complexity"]
    # volume axis: flat (within rounding); complexity axis: growing
    assert max(volume) - min(volume) <= max(2, int(0.01 * volume[0]))
    assert complexity[0] < complexity[1] < complexity[2]

    write_result(
        results_dir,
        "ablation_schema.txt",
        series_table(
            rows,
            ["axis", "x", "tokens"],
            title="Schema payload tokens vs data volume / workflow complexity",
        ),
    )


def test_chemistry_schema_wider_than_synthetic(benchmark):
    """The chemistry workflow's nested schema is the one that overflows
    LLaMA-3-8B — quantify the gap against the synthetic workflow."""
    from repro.agent.context_manager import ContextManager
    from repro.capture.context import CaptureContext
    from repro.workflows.chemistry import run_bde_workflow
    from repro.workflows.synthetic import run_synthetic_campaign

    def measure():
        ctx_s = CaptureContext()
        cm_s = ContextManager(ctx_s.broker).start()
        run_synthetic_campaign(ctx_s, n_inputs=5)

        ctx_c = CaptureContext()
        cm_c = ContextManager(ctx_c.broker).start()
        run_bde_workflow("CCO", ctx_c, n_conformers=2)
        return (
            count_tokens(json.dumps(cm_s.schema_payload())),
            count_tokens(json.dumps(cm_c.schema_payload())),
        )

    synthetic_tokens, chemistry_tokens = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert chemistry_tokens > 2 * synthetic_tokens
