"""Operator pushdown vs gather-everything on the sharded scatter path.

The classic path answers every analytical query by shipping *all*
matching documents from every shard to the coordinator and building a
full-width frame before a single pipeline step runs.  Operator pushdown
ships *answers* instead: per-shard partial aggregation states, local
top-k candidates, or column-pruned documents, merged exactly at the
coordinator.  This benchmark measures both paths over the same 4-shard
store on wide (~24 leaf fields) nested task documents and asserts:

* **parity** — the pushed result is byte-identical to the classic path
  *and* to a single-node store fed the same stream, for every query;
* **speedup** — at full scale (>= 100k docs), GROUP BY / aggregate /
  top-k queries run >= 2x faster pushed than gathered (floor asserted;
  the target the results file documents is 3x);
* **payload** — the scatter payload (cells crossing the shard ->
  coordinator boundary) shrinks by orders of magnitude; the measured
  reduction is reported per query in the results file.

``PUSHDOWN_BENCH_N`` scales the document count down for CI smoke runs;
parity is asserted at any scale, the speedup floor only at full scale.
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import write_result
from repro.dataframe import DataFrame
from repro.provenance.query_api import QueryAPI
from repro.query import parse_query
from repro.query.engine import run_cached_pipeline
from repro.storage import ProvenanceDatabase, ShardedProvenanceStore
from repro.viz.ascii import series_table

N_DOCS = int(os.environ.get("PUSHDOWN_BENCH_N", "100000"))
N_SHARDS = 4
ROUNDS = 3
MIN_SPEEDUP = 2.0  # asserted floor at full scale
TARGET_SPEEDUP = 3.0  # documented target, reported in the results file
FULL_SCALE = N_DOCS >= 100_000
N_WORKFLOWS = max(8, min(128, N_DOCS // 500))

BASE = {"type": "task"}

#: name -> pipeline code; every plan mode the planner can choose
QUERIES = [
    ("groupby-count", "df.groupby('status')['task_id'].count()"),
    ("groupby-mean", "df.groupby('workflow_id')['duration'].mean()"),
    (
        "top-k-projected",
        "df.sort_values('duration', ascending=False)"
        ".head(10)[['task_id', 'duration']]",
    ),
    ("scalar-mean", "df['telemetry.cpu'].mean()"),
    ("filtered-rowcount", "len(df[df['status'] == 'FAILED'])"),
]


def _docs(n: int, seed: int = 11) -> list[dict]:
    """Wide nested task documents: ~24 leaf fields after flattening."""
    rng = random.Random(seed)
    docs = []
    for i in range(n):
        started = 1000.0 + rng.random() * 10_000
        docs.append(
            {
                "type": "task",
                "task_id": f"t{i}",
                "workflow_id": f"wf-{i % N_WORKFLOWS:04d}",
                "campaign_id": "bench",
                "activity_id": f"act-{i % 9}",
                "status": "FAILED" if i % 13 == 0 else "FINISHED",
                "hostname": f"node-{i % 16}",
                "rank": i % 64,
                "attempt": rng.randrange(3),
                "started_at": started,
                "ended_at": started + rng.random() * 100,
                "duration": rng.random() * 100,
                "used": {
                    "x": rng.randrange(1000),
                    "y": rng.random(),
                    "path": f"/data/in/{i % 512}.dat",
                    "bytes": rng.randrange(1 << 20),
                },
                "generated": {
                    "out": f"/data/out/{i}.dat",
                    "bytes": rng.randrange(1 << 20),
                    "checksum": f"{rng.getrandbits(64):016x}",
                },
                "telemetry": {
                    "cpu": rng.random() * 100,
                    "mem": rng.random() * 64,
                    "io_read": rng.randrange(1 << 16),
                    "io_write": rng.randrange(1 << 16),
                    "gpu": rng.random(),
                },
            }
        )
    return docs


def _build_stores() -> tuple[ProvenanceDatabase, ShardedProvenanceStore, int]:
    docs = _docs(N_DOCS)
    single = ProvenanceDatabase()
    sharded = ShardedProvenanceStore(N_SHARDS)
    single.upsert_many(docs)
    sharded.upsert_many(docs)
    # width as the coordinator sees it: to_frame flattens nested dicts
    leaf_fields = len(QueryAPI(single).to_frame({"task_id": "t0"}).columns)
    return single, sharded, leaf_fields


def _normalise(result):
    if isinstance(result, DataFrame):
        return (
            tuple(result.columns),
            tuple(result.column(c).dtype for c in result.columns),
            tuple(
                tuple((type(v).__name__, repr(v)) for v in row.values())
                for row in result.to_dicts()
            ),
        )
    if isinstance(result, list):
        return tuple((type(v).__name__, repr(v)) for v in result)
    return (type(result).__name__, repr(result))


def _once(store, pipeline, operator_pushdown: bool):
    # fresh QueryAPI = fresh cache: every round pays full execution
    api = QueryAPI(store)
    t0 = time.perf_counter()
    run = run_cached_pipeline(
        api, pipeline, base_filter=BASE, operator_pushdown=operator_pushdown
    )
    return time.perf_counter() - t0, run


def test_operator_pushdown_speedup_and_parity(results_dir):
    single, sharded, leaf_fields = _build_stores()
    rows: list[dict] = []
    speedups: dict[str, float] = {}
    for name, code in QUERIES:
        pipeline = parse_query(code)
        classic_s, pushed_s = float("inf"), float("inf")
        pushed_run = classic_run = None
        for _ in range(ROUNDS):  # interleaved so machine drift hits both
            t, classic_run = _once(sharded, pipeline, False)
            classic_s = min(classic_s, t)
            t, pushed_run = _once(sharded, pipeline, True)
            pushed_s = min(pushed_s, t)
        _, reference = _once(single, pipeline, False)

        # parity: pushed == classic gather == single-node store
        assert pushed_run.pushdown is not None
        assert "fallback" not in pushed_run.pushdown, pushed_run.pushdown
        assert _normalise(pushed_run.result) == _normalise(classic_run.result)
        assert _normalise(pushed_run.result) == _normalise(reference.result)

        info = pushed_run.pushdown
        scanned = info["rows_scanned"]
        # the classic scatter ships every matching document whole; the
        # pushed scatter ships partial states / candidates / pruned docs
        classic_cells = scanned * leaf_fields
        pushed_cells = max(1, info["payload_cells"])
        speedups[name] = classic_s / pushed_s
        rows.append(
            {
                "query": name,
                "mode": info["mode"],
                "classic_ms": round(classic_s * 1e3, 1),
                "pushed_ms": round(pushed_s * 1e3, 1),
                "speedup_x": round(speedups[name], 2),
                "scatter_cells_classic": classic_cells,
                "scatter_cells_pushed": pushed_cells,
                "payload_reduction_x": round(classic_cells / pushed_cells, 1),
            }
        )

    if FULL_SCALE:  # smoke runs must not overwrite the published numbers
        write_result(
            results_dir,
            "operator_pushdown.txt",
            series_table(
                rows,
                [
                    "query",
                    "mode",
                    "classic_ms",
                    "pushed_ms",
                    "speedup_x",
                    "scatter_cells_classic",
                    "scatter_cells_pushed",
                    "payload_reduction_x",
                ],
                title=(
                    f"Operator pushdown vs gather-everything, "
                    f"{N_DOCS:,} docs x {N_SHARDS} shards, "
                    f"~{leaf_fields} leaf fields/doc "
                    f"(target {TARGET_SPEEDUP}x, floor {MIN_SPEEDUP}x)"
                ),
            ),
        )
        worst = min(speedups, key=speedups.get)
        assert speedups[worst] >= MIN_SPEEDUP, (
            f"{worst}: {speedups[worst]:.2f}x < {MIN_SPEEDUP}x floor "
            f"(all: { {k: round(v, 2) for k, v in speedups.items()} })"
        )


def test_unsupported_pipeline_falls_back_with_identical_results():
    """A pipeline the combine refuses must answer via the classic path."""
    docs = _docs(min(N_DOCS, 3000))
    single = ProvenanceDatabase()
    sharded = ShardedProvenanceStore(N_SHARDS)
    single.upsert_many(docs)
    sharded.upsert_many(docs)
    # median has no per-shard decomposition: planned as projection, and
    # still answered exactly
    pipeline = parse_query("df['duration'].median()")
    _, pushed = _once(sharded, pipeline, True)
    _, reference = _once(single, pipeline, False)
    assert _normalise(pushed.result) == _normalise(reference.result)
    # zero matching rows: combine refuses, classic path answers
    pipeline = parse_query("len(df[df['status'] == 'NO-SUCH'])")
    _, pushed = _once(sharded, pipeline, True)
    assert pushed.pushdown is not None and "fallback" in pushed.pushdown
    assert pushed.result == 0
