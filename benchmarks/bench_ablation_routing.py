"""Ablation A3 — adaptive LLM routing by query class (§5.4 future work).

"No single model performs best across all workloads and data types,
motivating future research on dynamic LLM routing based on query
classes."  This bench learns a per-class routing policy from a
calibration run, then evaluates the routed ensemble on the golden set:
the router must match the best fixed model's accuracy while spending
less (fewer frontier-model calls whenever a cheaper model ties).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import ALL_MODELS, write_result
from repro.evaluation.runner import median_by
from repro.llm.routing import MODEL_COST, AdaptiveModelRouter, learn_policy
from repro.viz.ascii import series_table


def test_adaptive_routing_matches_best_fixed_model(benchmark, eval_env, results_dir):
    _, _, queries, runner = eval_env

    def sweep():
        # calibration: all models, Full context
        records = runner.run(models=ALL_MODELS, configs=["Full"], n_reps=3)
        policy = learn_policy(records, queries)
        router = AdaptiveModelRouter(policy)

        medians = median_by(records, judge="gpt-judge", keys=("model", "qid"))
        fixed_scores = {
            m: statistics.mean(
                medians[(m, q.qid)] for q in queries
            )
            for m in ALL_MODELS
        }
        # routed ensemble: per query, take the routed model's median score
        routed, routed_cost = [], 0.0
        for q in queries:
            model = router.route(q.nl, query=q)
            routed.append(medians[(model, q.qid)])
            routed_cost += MODEL_COST[model]
        return policy, fixed_scores, statistics.mean(routed), routed_cost

    policy, fixed_scores, routed_score, routed_cost = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    best_fixed_model = max(fixed_scores, key=fixed_scores.get)
    best_fixed = fixed_scores[best_fixed_model]
    best_fixed_cost = len(queries) * MODEL_COST[best_fixed_model]

    # the routed ensemble matches (or beats) the best fixed model...
    assert routed_score >= best_fixed - 0.01
    # ...beats every open/weak fixed model outright...
    assert routed_score > fixed_scores["llama3-8b"] + 0.2
    assert routed_score > fixed_scores["gemini-2.5-flash-lite"]
    # ...and the learned policy actually uses more than one model
    assert len(policy.distinct_models()) >= 2

    rows = [
        {"strategy": f"fixed:{m}", "score": round(s, 3),
         "cost": round(len(queries) * MODEL_COST[m], 1)}
        for m, s in sorted(fixed_scores.items(), key=lambda kv: kv[1])
    ]
    rows.append(
        {"strategy": "adaptive-router", "score": round(routed_score, 3),
         "cost": round(routed_cost, 1)}
    )
    write_result(
        results_dir,
        "ablation_routing.txt",
        series_table(
            rows,
            ["strategy", "score", "cost"],
            title="Adaptive LLM routing vs fixed models (GPT judge; cost in "
            "relative API units)",
        )
        + f"\n\nbest fixed = {best_fixed_model} "
        f"(score {best_fixed:.3f}, cost {best_fixed_cost:.1f})",
    )
