"""Table 2 — prompt + RAG configurations and their real prompt sizes."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.agent.prompts import PromptBuilder
from repro.evaluation.configs import CONFIGURATIONS
from repro.llm.tokenizer import count_tokens
from repro.viz.ascii import series_table


def test_table2_configurations(benchmark, eval_env, results_dir):
    _, cm, queries, _ = eval_env
    sample_query = queries[0].nl

    def measure():
        rows = []
        for label, cfg in CONFIGURATIONS.items():
            prompt = PromptBuilder(cfg).build(
                sample_query,
                schema_payload=cm.schema_payload(),
                values_payload=cm.values_payload(),
                guidelines_text=cm.guidelines_text(),
            )
            rows.append(
                {
                    "label": label,
                    "config_label": cfg.label,
                    "prompt_tokens": count_tokens(prompt),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert [r["label"] for r in rows] == list(CONFIGURATIONS)
    # labels derived from the config flags must match the table keys
    for r in rows:
        assert r["label"] == r["config_label"]
    tokens = {r["label"]: r["prompt_tokens"] for r in rows}
    # cumulative configurations strictly grow in token cost
    assert (
        tokens["Nothing"]
        < tokens["Baseline"]
        < tokens["Baseline+FS"]
        < tokens["Baseline+FS+Schema"]
        < tokens["Baseline+FS+Schema+Values"]
        < tokens["Full"]
    )
    assert tokens["Baseline+FS+Guidelines"] < tokens["Baseline+FS+Schema"]

    write_result(
        results_dir,
        "table2_configurations.txt",
        series_table(
            rows,
            ["label", "prompt_tokens"],
            title="Table 2: prompt+RAG configurations (measured prompt sizes)",
        ),
    )
