"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures: it runs
the relevant sweep (timed via ``benchmark.pedantic`` — these are
macro-benchmarks, one round each), asserts the qualitative shape the
paper reports, and writes the measured rows to
``benchmarks/results/<artefact>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.agent.context_manager import ContextManager
from repro.capture.context import CaptureContext
from repro.evaluation.query_set import build_query_set
from repro.evaluation.runner import ExperimentRunner
from repro.workflows.synthetic import run_synthetic_campaign

RESULTS_DIR = Path(__file__).parent / "results"

ALL_MODELS = (
    "llama3-8b",
    "llama3-70b",
    "gemini-2.5-flash-lite",
    "gpt-4",
    "claude-opus-4",
)
JUDGE_NAMES = ("gpt-judge", "claude-judge")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def eval_env():
    """Campaign (100 inputs, as in the paper) + golden set + runner."""
    ctx = CaptureContext()
    cm = ContextManager(ctx.broker).start()
    run_synthetic_campaign(ctx, n_inputs=100)
    queries = build_query_set(cm.to_frame())
    runner = ExperimentRunner(cm, queries)
    return ctx, cm, queries, runner


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
