"""Figure 9 — impact of contextual components per data type (GPT/GPT).

Reproduction targets: every data type improves with richer context;
Telemetry starts lowest (its dotted field paths are unguessable without
schema/guidelines) and reaches ~0.95+ at Full; guidelines produce the
decisive jump for Control Flow and Dataflow.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.evaluation.configs import FIGURE8_ORDER
from repro.evaluation.reporting import fig9_datatype_impact
from repro.viz.ascii import series_table

DATA_TYPES = ("Control Flow", "Dataflow", "Scheduling", "Telemetry")


def test_fig9_datatype_impact(benchmark, eval_env, results_dir):
    _, _, queries, runner = eval_env

    def sweep():
        records = runner.run(models=["gpt-4"], configs=FIGURE8_ORDER, n_reps=3)
        return fig9_datatype_impact(
            records, queries, judge="gpt-judge", configs=FIGURE8_ORDER
        )

    impact = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for dt in DATA_TYPES:
        assert impact["Full"][dt] > impact["Baseline"][dt]
        assert impact["Full"][dt] > 0.9
    # telemetry starts near-zero at Baseline (paper: 0.04) — its dotted
    # field paths are unguessable without schema or guidelines
    assert impact["Baseline"]["Telemetry"] < 0.25
    # guidelines lift dataflow and control flow substantially over FS alone
    for dt in ("Dataflow", "Control Flow"):
        assert (
            impact["Baseline+FS+Guidelines"][dt]
            - impact["Baseline+FS"][dt]
            > 0.3
        )

    rows = [
        {"config": cfg, **{dt: round(impact[cfg].get(dt, 0.0), 3) for dt in DATA_TYPES}}
        for cfg in FIGURE8_ORDER
    ]
    write_result(
        results_dir,
        "fig9_datatype_impact.txt",
        series_table(
            rows,
            ["config", *DATA_TYPES],
            title="Figure 9: context impact per data type (GPT model, GPT judge)",
        ),
    )
