"""§5.2 "Response times" — LLM latency within interactive bounds.

Reproduction targets: all models stay within ~2 s mean latency even
with full-context prompts; latency is stable across OLAP and OLTP
workloads.
"""

from __future__ import annotations

from benchmarks.conftest import ALL_MODELS, write_result
from repro.evaluation.reporting import response_time_table
from repro.viz.ascii import series_table


def test_response_times_interactive(benchmark, eval_env, results_dir):
    _, _, queries, runner = eval_env

    def sweep():
        records = runner.run(models=ALL_MODELS, configs=["Full"], n_reps=3)
        return response_time_table(records, queries)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert len(rows) == len(ALL_MODELS) * 2  # per model x workload
    for row in rows:
        assert row["mean_latency_s"] < 2.5, row

    # stability across workloads per model
    by_model: dict[str, list[float]] = {}
    for r in rows:
        by_model.setdefault(r["model"], []).append(r["mean_latency_s"])
    for model, vals in by_model.items():
        assert max(vals) - min(vals) < 0.6, model

    write_result(
        results_dir,
        "response_times.txt",
        series_table(
            [
                {
                    "model": r["model"],
                    "workload": r["workload"],
                    "mean_latency_s": round(r["mean_latency_s"], 3),
                    "max_latency_s": round(r["max_latency_s"], 3),
                }
                for r in rows
            ],
            ["model", "workload", "mean_latency_s", "max_latency_s"],
            title="Response times (paper: ~2 s interactive bound, stable "
            "across workloads)",
        ),
    )
