"""Figure 7 — per-class model scores (OLAP/OLTP x data type x judge).

Reproduction targets: OLTP scores higher and tighter than OLAP;
Scheduling/Telemetry generally above Dataflow/Control Flow (which need
graph-like reasoning); GPT/Claude on top across classes.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import ALL_MODELS, JUDGE_NAMES, write_result
from repro.evaluation.reporting import fig7_per_class
from repro.viz.ascii import boxplot_rows


def test_fig7_per_class_scores(benchmark, eval_env, results_dir):
    _, _, queries, runner = eval_env

    def sweep():
        records = runner.run(models=ALL_MODELS, configs=["Full"], n_reps=3)
        return fig7_per_class(records, queries, JUDGE_NAMES)

    per_class = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def scores(judge, workload, model=None, dtype=None):
        out = []
        for (j, w, m, d), vals in per_class.items():
            if j != judge or w != workload:
                continue
            if model and m != model:
                continue
            if dtype and d != dtype:
                continue
            out.extend(vals)
        return out

    # OLTP easier than OLAP for both judges, all models pooled
    for judge in JUDGE_NAMES:
        assert statistics.mean(scores(judge, "OLTP")) > statistics.mean(
            scores(judge, "OLAP")
        )

    # OLTP >= OLAP holds per-model for every model whose errors are
    # logic-dominated; LLaMA-3-8B is excluded because its field
    # hallucination lottery hits the field-heavy OLTP projections hardest
    # (the paper likewise shows 8B as the one bimodal outlier panel)
    for model in ALL_MODELS:
        if model == "llama3-8b":
            continue
        assert statistics.mean(
            scores("gpt-judge", "OLTP", model=model)
        ) > statistics.mean(scores("gpt-judge", "OLAP", model=model)) - 0.02

    # frontier models lead every workload class
    for workload in ("OLAP", "OLTP"):
        gpt_mean = statistics.mean(scores("gpt-judge", workload, model="gpt-4"))
        weak_mean = statistics.mean(
            scores("gpt-judge", workload, model="llama3-8b")
        )
        assert gpt_mean > weak_mean

    # render boxplot rows per (workload, data type) pooled over models
    lines = []
    for judge in JUDGE_NAMES:
        for workload in ("OLTP", "OLAP"):
            groups = {}
            for dtype in ("Control Flow", "Dataflow", "Scheduling", "Telemetry"):
                groups[f"{dtype}"] = scores(judge, workload, dtype=dtype)
            lines.append(f"== {judge} / {workload} ==")
            lines.append(boxplot_rows(groups))
            lines.append("")
    write_result(results_dir, "fig7_query_classes.txt", "\n".join(lines))
