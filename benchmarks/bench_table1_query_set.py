"""Table 1 — distribution of golden queries by data type and workload."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.evaluation.reporting import table1_distribution
from repro.viz.ascii import series_table


def test_table1_distribution(benchmark, eval_env, results_dir):
    _, cm, queries, _ = eval_env

    def build():
        from repro.evaluation.query_set import build_query_set

        qs = build_query_set(cm.to_frame())
        return table1_distribution(qs)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    by = {r["data_type"]: r for r in rows}
    # paper Table 1, exactly
    assert (by["Control Flow"]["olap"], by["Control Flow"]["oltp"]) == (4, 3)
    assert (by["Dataflow"]["olap"], by["Dataflow"]["oltp"]) == (3, 4)
    assert (by["Scheduling"]["olap"], by["Scheduling"]["oltp"]) == (3, 5)
    assert (by["Telemetry"]["olap"], by["Telemetry"]["oltp"]) == (4, 5)
    assert sum(r["total"] for r in rows) == 31

    write_result(
        results_dir,
        "table1_query_distribution.txt",
        series_table(
            rows,
            ["data_type", "olap", "oltp", "total"],
            title="Table 1: distribution of queries by data type and workload",
        ),
    )
