"""Deterministic seed derivation.

Every stochastic component in the library (LLM failure sampling, conformer
embedding, synthetic telemetry, latency jitter) draws from a
:class:`numpy.random.Generator` obtained through :func:`derive_rng`.  Seeds
are derived with SHA-256 over the *semantic coordinates* of the draw —
e.g. ``("llm", "gpt-4", "q07", "full", 2)`` — so results are reproducible
across processes and platforms, and two unrelated draws never share a
stream by accident.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

_ENCODING = "utf-8"


def stable_hash(*parts: Any) -> int:
    """Return a stable 64-bit hash of the given parts.

    Unlike builtin ``hash``, the result does not vary with
    ``PYTHONHASHSEED`` or process restarts.  Parts are joined with an
    unlikely separator after ``repr``-normalising non-strings.
    """
    h = hashlib.sha256()
    for part in parts:
        # Tag with the type so 1 and "1" hash differently.
        if isinstance(part, str):
            data = f"s:{part}"
        else:
            data = f"{type(part).__name__}:{part!r}"
        h.update(data.encode(_ENCODING))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest()[:8], "big")


def derive_seed(*parts: Any) -> int:
    """Derive a 64-bit seed from semantic coordinates."""
    return stable_hash("repro-seed", *parts)


def derive_rng(*parts: Any) -> np.random.Generator:
    """Return a numpy Generator seeded from semantic coordinates.

    >>> a = derive_rng("llm", "gpt-4", 0)
    >>> b = derive_rng("llm", "gpt-4", 0)
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(derive_seed(*parts))
