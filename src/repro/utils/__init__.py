"""Shared utilities: deterministic seeding, id generation, virtual clock."""

from repro.utils.seeding import derive_rng, derive_seed, stable_hash
from repro.utils.ids import new_campaign_id, new_task_id, new_workflow_id
from repro.utils.clock import Clock, SystemClock, VirtualClock

__all__ = [
    "derive_rng",
    "derive_seed",
    "stable_hash",
    "new_campaign_id",
    "new_task_id",
    "new_workflow_id",
    "Clock",
    "SystemClock",
    "VirtualClock",
]
