"""Identifier generation for campaigns, workflows, and tasks.

The paper's task provenance messages (Listing 1) use:

* ``campaign_id`` / ``workflow_id`` — UUID4 strings,
* ``task_id`` — ``"<started_at>_<instance>_<bond>_<suffix>"``-style strings
  composed from the start timestamp plus discriminators.

We reproduce both forms.  When determinism is wanted (tests, benches), the
UUIDs are derived from a seed ladder instead of ``os.urandom``.
"""

from __future__ import annotations

import uuid
from typing import Any

from repro.utils.seeding import derive_rng


def new_campaign_id(*seed_parts: Any) -> str:
    """A UUID4-shaped campaign id; deterministic when seed parts given."""
    return _uuid4_like("campaign", *seed_parts)


def new_workflow_id(*seed_parts: Any) -> str:
    """A UUID4-shaped workflow id; deterministic when seed parts given."""
    return _uuid4_like("workflow", *seed_parts)


def new_task_id(started_at: float, *discriminators: Any) -> str:
    """Task id in the paper's ``<started_at>_<d0>_<d1>...`` format.

    >>> new_task_id(1753457858.952133, 0, 3, 973)
    '1753457858.952133_0_3_973'
    """
    suffix = "_".join(str(d) for d in discriminators)
    base = f"{started_at:.6f}".rstrip("0").rstrip(".")
    # keep at least one decimal place so ids sort lexically within a second
    if "." not in base:
        base = f"{started_at:.1f}"
    return f"{base}_{suffix}" if suffix else base


def _uuid4_like(kind: str, *seed_parts: Any) -> str:
    if not seed_parts:
        return str(uuid.uuid4())
    rng = derive_rng("ids", kind, *seed_parts)
    raw = bytes(rng.integers(0, 256, size=16, dtype="uint8").tolist())
    return str(uuid.UUID(bytes=raw, version=4))
