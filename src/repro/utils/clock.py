"""Clock abstraction.

The provenance capture layer stamps ``started_at``/``ended_at`` on every
task.  Production code uses :class:`SystemClock`; tests and the simulated
HPC runs use :class:`VirtualClock`, which makes time advance only when the
code under test says so — task durations and LLM latencies then become
deterministic and the benchmark harness does not have to *actually* sleep
through a 2-second simulated LLM round trip.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Interface: monotonically non-decreasing wall-clock seconds."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds since the epoch."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds`` (really or virtually)."""


class SystemClock(Clock):
    """Real wall-clock time."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Deterministic clock that advances only via :meth:`sleep`/:meth:`advance`.

    Thread-safe: the workflow engine runs tasks from worker threads and
    each stamps timestamps concurrently.
    """

    def __init__(self, start: float = 1_753_457_858.0):
        # Default epoch matches the task timestamps in the paper's Listing 1,
        # so example messages look like the published ones.
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds
            return self._now
