"""Render a query-IR pipeline back to SQL text.

Inverse of :func:`~repro.sql.compiler.compile_sql` for SQL-expressible
pipelines: ``compile_sql(render_sql(p)) == p`` (property-tested).  Used
by the evaluation harness to derive the SQL variant of each gold query
from its gold IR, so both dialects are graded against the same oracle.

Pipelines outside the compiler's canonical shapes — ``Tail``, uncommon
aggregations (median/std/...), case-insensitive contains, steps in
non-SQL order — raise :class:`SqlRenderError`; callers treat that as
"this query has no SQL spelling", not as a failure.
"""

from __future__ import annotations

import re
from typing import Any

from repro.query import ast as q
from repro.sql.ast import AGGREGATE_FUNCS
from repro.sql.lexer import KEYWORDS

__all__ = ["render_sql", "SqlRenderError"]

#: query-IR aggregation name -> SQL function name
_SQL_AGGS = {ir: sql for sql, ir in AGGREGATE_FUNCS.items()}

_PLAIN_IDENT = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


class SqlRenderError(ValueError):
    """The pipeline has no exact SQL spelling in the supported subset."""


def _column(name: str) -> str:
    if '"' in name or "\n" in name:
        raise SqlRenderError(f"column name {name!r} cannot be quoted in SQL")
    first = name.split(".", 1)[0]
    if first == "tasks" or first == "":
        # the checker would strip a leading "tasks." as a table prefix
        raise SqlRenderError(f"column name {name!r} collides with the table name")
    if _PLAIN_IDENT.match(name) and name.upper() not in KEYWORDS:
        return name
    return f'"{name}"'


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, (int, float)):
        return repr(value)
    raise SqlRenderError(f"literal {value!r} has no SQL spelling")


def _like_pattern(text: str, what: str) -> str:
    if not text or "%" in text or "_" in text:
        raise SqlRenderError(
            f"{what} {text!r} cannot round-trip through a LIKE pattern"
        )
    return text


def _agg_call(agg: str, column: str) -> str:
    if agg not in _SQL_AGGS:
        raise SqlRenderError(f"aggregation {agg!r} has no SQL function")
    return f"{_SQL_AGGS[agg]}({_column(column)})"


def _predicate(pred: q.Predicate, *, agg: tuple[str, str] | None = None,
               group_keys: tuple[str, ...] = ()) -> str:
    """Render one predicate; AND/OR/NOT operands get explicit parens so
    the parse tree (and hence the recompiled IR) matches exactly.

    ``agg`` is (SQL function name, source column) when rendering a
    HAVING predicate — a Compare on the source column IS the aggregate
    test in the grouped frame, so it renders as ``FUNC(col) op value``.
    """
    if isinstance(pred, q.And):
        return (f"({_predicate(pred.left, agg=agg, group_keys=group_keys)}) "
                f"AND ({_predicate(pred.right, agg=agg, group_keys=group_keys)})")
    if isinstance(pred, q.Or):
        return (f"({_predicate(pred.left, agg=agg, group_keys=group_keys)}) "
                f"OR ({_predicate(pred.right, agg=agg, group_keys=group_keys)})")
    if isinstance(pred, q.Not):
        inner = pred.operand
        # NOT IN / NOT LIKE / NOT BETWEEN have first-class negated forms
        if isinstance(inner, q.IsIn):
            return _in_list(inner, negated=True)
        if isinstance(inner, (q.StrContains, q.StrStartsWith, q.StrEndsWith)):
            return _like(inner, negated=True)
        if isinstance(inner, q.Between):
            return _between(inner, negated=True)
        return f"NOT ({_predicate(inner, agg=agg, group_keys=group_keys)})"
    if isinstance(pred, q.Compare):
        op = {"==": "=", "!=": "<>"}.get(pred.op, pred.op)
        name = pred.field.name
        if agg is not None and name == agg[1] and name not in group_keys:
            left = f"{agg[0]}({_column(name)})"
        else:
            left = _column(name)
        return f"{left} {op} {_literal(pred.value)}"
    if isinstance(pred, q.StrContains):
        return _like(pred, negated=False)
    if isinstance(pred, q.StrStartsWith):
        return _like(pred, negated=False)
    if isinstance(pred, q.StrEndsWith):
        return _like(pred, negated=False)
    if isinstance(pred, q.IsIn):
        return _in_list(pred, negated=False)
    if isinstance(pred, q.Between):
        return _between(pred, negated=False)
    if isinstance(pred, q.NotNull):
        return f"{_column(pred.field.name)} IS NOT NULL"
    if isinstance(pred, q.IsNull):
        return f"{_column(pred.field.name)} IS NULL"
    raise SqlRenderError(f"predicate {type(pred).__name__} has no SQL spelling")


def _in_list(pred: q.IsIn, *, negated: bool) -> str:
    if not pred.values:
        raise SqlRenderError("empty IN list has no SQL spelling")
    body = ", ".join(_literal(v) for v in pred.values)
    kw = "NOT IN" if negated else "IN"
    return f"{_column(pred.field.name)} {kw} ({body})"


def _like(pred: q.Predicate, *, negated: bool) -> str:
    if isinstance(pred, q.StrContains):
        if not pred.case:
            raise SqlRenderError(
                "case-insensitive contains has no LIKE spelling"
            )
        pattern = "%" + _like_pattern(pred.pattern, "contains pattern") + "%"
    elif isinstance(pred, q.StrStartsWith):
        pattern = _like_pattern(pred.prefix, "prefix") + "%"
    else:
        pattern = "%" + _like_pattern(pred.suffix, "suffix")
    kw = "NOT LIKE" if negated else "LIKE"
    return f"{_column(pred.field.name)} {kw} '{pattern}'"


def _between(pred: q.Between, *, negated: bool) -> str:
    kw = "NOT BETWEEN" if negated else "BETWEEN"
    return (f"{_column(pred.field.name)} {kw} "
            f"{_literal(pred.low)} AND {_literal(pred.high)}")


def render_sql(pipeline: q.Pipeline) -> str:
    """Render a pipeline as one SELECT, or raise :class:`SqlRenderError`."""
    steps = list(pipeline.steps)
    i = 0
    where_parts: list[q.Predicate] = []
    while i < len(steps) and isinstance(steps[i], q.Filter):
        where_parts.append(steps[i].predicate)
        i += 1
    where = where_parts[0] if where_parts else None
    for extra in where_parts[1:]:
        where = q.And(where, extra)

    rest = steps[i:]
    if not rest:
        return _assemble(["*"], where=where)

    head = rest[0]
    if isinstance(head, q.RowCount):
        _expect_end(rest, 1)
        return _assemble(["COUNT(*)"], where=where)
    if isinstance(head, q.Agg):
        _expect_end(rest, 1)
        return _assemble([_agg_call(head.agg, head.column)], where=where)
    if isinstance(head, q.Unique):
        _expect_end(rest, 1)
        return _assemble([_column(head.column)], where=where, distinct=True)
    if isinstance(head, q.GroupAgg):
        return _grouped(head, rest[1:], where)
    if isinstance(head, q.Project) and len(rest) > 1 \
            and isinstance(rest[1], q.DropDuplicates):
        return _distinct(head, rest[1], rest[2:], where)
    return _plain(rest, where)


def _expect_end(rest: list, n: int) -> None:
    if len(rest) > n:
        extra = type(rest[n]).__name__
        raise SqlRenderError(f"unexpected step {extra} after a terminal step")


def _tail_clauses(rest: list, *, sort_render) -> list[str]:
    """Consume optional Sort, Skip, Head (in that order) into SQL clauses."""
    clauses: list[str] = []
    j = 0
    if j < len(rest) and isinstance(rest[j], q.Sort):
        clauses.append("ORDER BY " + sort_render(rest[j]))
        j += 1
    offset = None
    if j < len(rest) and isinstance(rest[j], q.Skip):
        if rest[j].n < 1:
            raise SqlRenderError("OFFSET 0 does not round-trip; drop the Skip")
        offset = rest[j].n
        j += 1
    if j < len(rest) and isinstance(rest[j], q.Head):
        clauses.append(f"LIMIT {rest[j].n}")
        j += 1
    if offset is not None:
        clauses.append(f"OFFSET {offset}")
    if j < len(rest):
        raise SqlRenderError(
            f"step {type(rest[j]).__name__} is out of SQL clause order"
        )
    return clauses


def _order_items(sort: q.Sort, render_key) -> str:
    return ", ".join(
        render_key(k) + ("" if asc else " DESC")
        for k, asc in zip(sort.keys, sort.ascending)
    )


def _assemble(items: list[str], *, where: q.Predicate | None,
              distinct: bool = False, group_by: str = "",
              having: str = "", tail: list[str] | None = None) -> str:
    parts = ["SELECT " + ("DISTINCT " if distinct else "") + ", ".join(items),
             "FROM tasks"]
    if where is not None:
        parts.append("WHERE " + _predicate(where))
    if group_by:
        parts.append("GROUP BY " + group_by)
    if having:
        parts.append("HAVING " + having)
    if tail:
        parts.extend(tail)
    return " ".join(parts)


def _plain(rest: list, where: q.Predicate | None) -> str:
    project = None
    if rest and isinstance(rest[-1], q.Project):
        project = rest[-1]
        rest = rest[:-1]
    tail = _tail_clauses(rest, sort_render=lambda s: _order_items(s, _column))
    items = [_column(c) for c in project.columns] if project else ["*"]
    return _assemble(items, where=where, tail=tail)


def _distinct(project: q.Project, dd: q.DropDuplicates, rest: list,
              where: q.Predicate | None) -> str:
    if dd.subset:
        raise SqlRenderError(
            "drop_duplicates with a subset has no DISTINCT spelling"
        )
    projected = set(project.columns)

    def key(name: str) -> str:
        if name not in projected:
            raise SqlRenderError(
                f"DISTINCT cannot order by unselected column {name!r}"
            )
        return _column(name)

    tail = _tail_clauses(rest, sort_render=lambda s: _order_items(s, key))
    if not tail:
        # the compiler lowers a bare single-column DISTINCT to Unique,
        # so this Project+DropDuplicates shape would not round-trip
        if len(project.columns) == 1:
            raise SqlRenderError(
                "bare single-column DISTINCT lowers to Unique, not "
                "drop_duplicates"
            )
    items = [_column(c) for c in project.columns]
    return _assemble(items, where=where, distinct=True, tail=tail)


def _grouped(group: q.GroupAgg, rest: list,
             where: q.Predicate | None) -> str:
    if group.agg not in _SQL_AGGS:
        raise SqlRenderError(f"aggregation {group.agg!r} has no SQL function")
    keys = group.keys
    agg_item = _agg_call(group.agg, group.column)

    having = ""
    if rest and isinstance(rest[0], q.Filter):
        having = _predicate(rest[0].predicate,
                            agg=(_SQL_AGGS[group.agg], group.column),
                            group_keys=keys)
        rest = rest[1:]

    project = None
    if rest and isinstance(rest[-1], q.Project):
        project = rest[-1]
        rest = rest[:-1]

    def sort_key(name: str) -> str:
        if name == group.column and name not in keys:
            return agg_item
        if name in keys:
            return _column(name)
        raise SqlRenderError(
            f"grouped ORDER BY column {name!r} is neither a grouping key "
            "nor the aggregate"
        )

    tail = _tail_clauses(rest, sort_render=lambda s: _order_items(s, sort_key))

    if project is None:
        items = [_column(k) for k in keys] + [agg_item]
    else:
        items = []
        saw_agg = False
        for col in project.columns:
            if col == group.column and col not in keys:
                items.append(agg_item)
                saw_agg = True
            elif col in keys:
                items.append(_column(col))
            else:
                raise SqlRenderError(
                    f"grouped projection column {col!r} is neither a "
                    "grouping key nor the aggregate"
                )
        if not saw_agg:
            raise SqlRenderError(
                "a grouped SELECT without its aggregate has no SQL spelling"
            )
        natural = list(keys) + [group.column]
        if list(project.columns) == natural:
            raise SqlRenderError(
                "projection equal to the natural grouped output does not "
                "round-trip; the compiler omits it"
            )
    return _assemble(items, where=where,
                     group_by=", ".join(_column(k) for k in keys),
                     having=having, tail=tail)
