"""Compiler: checked SQL AST -> the existing query IR.

Nothing here evaluates anything.  A SELECT lowers onto the same
:class:`~repro.query.ast.Pipeline` the pipeline dialect parses to, so
execution, predicate pushdown, shard routing and the versioned
:class:`~repro.query.QueryCache` are all inherited — a SQL query and its
pandas-like equivalent compile to *equal* IR and therefore share one
cache entry.

Lowering shape (mirroring SQL evaluation order)::

    WHERE               -> Filter
    GROUP BY + agg      -> GroupAgg          (AVG -> the IR's "mean")
    HAVING              -> Filter            (aggregate -> its output column)
    ORDER BY            -> Sort
    OFFSET / LIMIT      -> Skip / Head
    select list         -> Project           (last; ORDER BY may reference
                                              non-projected columns)
    COUNT(*)            -> RowCount          (scalar form)
    scalar aggregate    -> Agg
    SELECT DISTINCT col -> Unique            (Project + DropDuplicates when
                                              ordered/limited or multi-column)
"""

from __future__ import annotations

from repro.query import ast as q
from repro.sql import ast as sa
from repro.sql.errors import SqlUnsupportedError
from repro.sql.parser import parse_sql
from repro.sql.semantics import check_statement

__all__ = ["compile_sql", "compile_statement"]


def compile_sql(source: str) -> q.Pipeline:
    """SQL text -> query-IR pipeline; raises a positioned :class:`SqlError`."""
    statement = check_statement(parse_sql(source), source)
    return compile_statement(statement, source)


def compile_statement(statement: sa.SelectStatement,
                      source: str = "") -> q.Pipeline:
    """Lower a *checked* statement (see :func:`check_statement`)."""
    lower = _Lowering(source)
    return lower.statement(statement)


class _Lowering:
    def __init__(self, source: str):
        self.source = source

    def unsupported(self, message: str, pos: sa.Pos) -> SqlUnsupportedError:
        return SqlUnsupportedError(message, source=self.source,
                                   line=pos.line, column=pos.column)

    # -- statement -----------------------------------------------------------
    def statement(self, st: sa.SelectStatement) -> q.Pipeline:
        steps: list[q.Step] = []
        if st.where is not None:
            steps.append(q.Filter(self.predicate(st.where)))

        agg = self._the_aggregate(st)
        if st.group_by:
            assert agg is not None  # the checker guarantees it
            agg_column = self._agg_source_column(agg, st.group_by)
            key_paths = tuple(c.path for c in st.group_by)
            steps.append(
                q.GroupAgg(key_paths, agg_column,
                           sa.AGGREGATE_FUNCS[agg.func])
            )
            if st.having is not None:
                steps.append(
                    q.Filter(self.predicate(st.having, agg_column=agg_column))
                )
            self._frame_tail(steps, st, agg_column=agg_column)
            natural = list(key_paths) + [agg_column]
            selected = [
                item.expr.path if isinstance(item.expr, sa.ColumnRef)
                else agg_column
                for item in st.items
            ]
            if selected != natural:
                steps.append(q.Project(tuple(selected)))
            return q.Pipeline(tuple(steps))

        if agg is not None:
            if isinstance(agg.arg, sa.Star):
                steps.append(q.RowCount())
            else:
                steps.append(
                    q.Agg(agg.arg.path, sa.AGGREGATE_FUNCS[agg.func])
                )
            return q.Pipeline(tuple(steps))

        columns = tuple(
            item.expr.path for item in st.items
            if isinstance(item.expr, sa.ColumnRef)
        )
        if st.distinct:
            bare = (st.limit is None and st.offset is None
                    and not st.order_by)
            if len(columns) == 1 and bare:
                steps.append(q.Unique(columns[0]))
                return q.Pipeline(tuple(steps))
            # SQL's DISTINCT dedups the projected tuple before ORDER BY /
            # LIMIT apply, so projection moves ahead of the tail here
            steps.append(q.Project(columns))
            steps.append(q.DropDuplicates(()))
            self._frame_tail(steps, st)
            return q.Pipeline(tuple(steps))

        self._frame_tail(steps, st)
        if columns:
            steps.append(q.Project(columns))
        return q.Pipeline(tuple(steps))

    def _frame_tail(self, steps: list[q.Step], st: sa.SelectStatement,
                    *, agg_column: str | None = None) -> None:
        """Append Sort / Skip / Head for ORDER BY, OFFSET, LIMIT."""
        if st.order_by:
            keys = []
            ascending = []
            for item in st.order_by:
                if isinstance(item.expr, sa.FuncCall):
                    keys.append(agg_column)
                else:
                    keys.append(item.expr.path)
                ascending.append(item.ascending)
            steps.append(q.Sort(tuple(keys), tuple(ascending)))
        if st.offset is not None and st.offset > 0:
            steps.append(q.Skip(st.offset))
        if st.limit is not None:
            steps.append(q.Head(st.limit))

    def _the_aggregate(self, st: sa.SelectStatement) -> sa.FuncCall | None:
        for item in st.items:
            if isinstance(item.expr, sa.FuncCall):
                return item.expr
        return None

    def _agg_source_column(self, agg: sa.FuncCall,
                           group_by: tuple[sa.ColumnRef, ...]) -> str:
        if isinstance(agg.arg, sa.ColumnRef):
            return agg.arg.path
        # grouped COUNT(*): count any always-present column — the first
        # grouping key is non-null within its own group by construction
        return group_by[0].path

    # -- predicates ----------------------------------------------------------
    def predicate(self, pred: sa.SqlPredicate, *,
                  agg_column: str | None = None) -> q.Predicate:
        if isinstance(pred, sa.AndExpr):
            return q.And(self.predicate(pred.left, agg_column=agg_column),
                         self.predicate(pred.right, agg_column=agg_column))
        if isinstance(pred, sa.OrExpr):
            return q.Or(self.predicate(pred.left, agg_column=agg_column),
                        self.predicate(pred.right, agg_column=agg_column))
        if isinstance(pred, sa.NotExpr):
            return q.Not(self.predicate(pred.operand, agg_column=agg_column))
        if isinstance(pred, sa.Comparison):
            if isinstance(pred.left, sa.FuncCall):
                # HAVING AGG(col) <op> v: the grouped frame keeps the
                # aggregate under its source column name
                column = agg_column if agg_column is not None else \
                    self._agg_source_column(pred.left, ())
                return q.Compare(q.Field(column), pred.op, pred.value)
            return q.Compare(q.Field(pred.left.path), pred.op, pred.value)
        if isinstance(pred, sa.InList):
            base = q.IsIn(q.Field(pred.column.path), tuple(pred.values))
            return q.Not(base) if pred.negated else base
        if isinstance(pred, sa.LikePredicate):
            base = self.like(pred)
            return q.Not(base) if pred.negated else base
        if isinstance(pred, sa.BetweenPredicate):
            base = q.Between(q.Field(pred.column.path), pred.low, pred.high)
            return q.Not(base) if pred.negated else base
        if isinstance(pred, sa.NullTest):
            field = q.Field(pred.column.path)
            return q.NotNull(field) if pred.negated else q.IsNull(field)
        raise self.unsupported(
            f"cannot lower predicate {type(pred).__name__}", sa.Pos()
        )

    def like(self, pred: sa.LikePredicate) -> q.Predicate:
        """LIKE -> the IR's anchored string predicates.

        Only the three anchored shapes (``x%``, ``%x``, ``%x%``) and
        wildcard-free patterns translate; inner ``%`` or any ``_`` has
        no IR equivalent and is rejected explicitly.
        """
        pattern = pred.pattern
        field = q.Field(pred.column.path)
        starts = pattern.startswith("%")
        ends = pattern.endswith("%")
        inner = pattern[1 if starts else 0: len(pattern) - 1 if ends else
                        len(pattern)]
        if "%" in inner or "_" in pattern:
            raise self.unsupported(
                f"LIKE pattern {pattern!r} is not supported; only 'x%', "
                "'%x', '%x%' and wildcard-free patterns translate",
                pred.pos,
            )
        if starts and ends:
            return q.StrContains(field, inner)
        if ends:
            return q.StrStartsWith(field, inner)
        if starts:
            return q.StrEndsWith(field, inner)
        return q.Compare(field, "==", inner)
