"""Structured diagnostics for the SQL dialect.

Every failure the SQL front end can produce — lexing, parsing, name
resolution, type checking, or an out-of-subset feature — carries the
1-based line/column of the offending token and renders a caret snippet
pointing at it.  The gateway forwards :meth:`SqlError.diagnostic`
verbatim as the :class:`~repro.api.schemas.ErrorEnvelope` detail, so a
BI client (or a human in curl) sees::

    SELECT * FROM runs
                  ^
    line 1, column 15: unknown table 'runs'; only 'tasks' is queryable

never a traceback.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError

__all__ = [
    "SqlError",
    "SqlSyntaxError",
    "SqlResolutionError",
    "SqlUnsupportedError",
    "caret_snippet",
]


def caret_snippet(source: str, line: int, column: int) -> str:
    """The offending source line with a ``^`` under (line, column), 1-based."""
    lines = source.splitlines() or [""]
    idx = min(max(line, 1), len(lines)) - 1
    text = lines[idx]
    caret_at = min(max(column, 1), len(text) + 1) - 1
    return f"{text}\n{' ' * caret_at}^"


class SqlError(QueryError):
    """Base class: any SQL front-end failure, positioned in the source."""

    def __init__(self, message: str, *, source: str = "", line: int = 1,
                 column: int = 1):
        self.reason = message
        self.source = source
        self.line = line
        self.column = column
        super().__init__(f"line {line}, column {column}: {message}")

    def snippet(self) -> str:
        return caret_snippet(self.source, self.line, self.column)

    def diagnostic(self) -> dict[str, Any]:
        """JSON-plain detail payload for the gateway's error envelope."""
        return {
            "line": self.line,
            "column": self.column,
            "message": self.reason,
            "snippet": self.snippet(),
        }


class SqlSyntaxError(SqlError):
    """The text is not a well-formed statement of the supported grammar."""


class SqlResolutionError(SqlError):
    """A well-formed statement references names or types incoherently."""


class SqlUnsupportedError(SqlError):
    """Recognisably SQL, but outside the compiled SELECT subset.

    These carry an explicit message naming the unsupported feature
    (JOIN, subqueries, multiple aggregates, ...) so clients learn the
    boundary instead of guessing from a generic parse error.
    """
