"""Recursive-descent parser: SQL text -> typed AST.

One SELECT statement per input (an optional trailing ``;``).  Anything
that *is* SQL but falls outside the compiled subset — JOINs, subqueries,
set operations, DML/DDL, CASE, expression arithmetic — raises
:class:`~repro.sql.errors.SqlUnsupportedError` with a message naming the
feature, so clients learn the subset's boundary; malformed text raises
:class:`~repro.sql.errors.SqlSyntaxError`.  Both carry line/column and a
caret snippet.
"""

from __future__ import annotations

from typing import Any, Union

from repro.sql import ast as sa
from repro.sql.errors import SqlSyntaxError, SqlUnsupportedError
from repro.sql.lexer import SqlToken, tokenize_sql

__all__ = ["parse_sql"]

#: statement-starting keywords we recognise but do not compile
_UNSUPPORTED_STATEMENTS = {
    "INSERT": "INSERT statements are not supported; this is a read-only "
              "query surface",
    "UPDATE": "UPDATE statements are not supported; this is a read-only "
              "query surface",
    "DELETE": "DELETE statements are not supported; this is a read-only "
              "query surface",
    "CREATE": "DDL statements are not supported",
    "DROP": "DDL statements are not supported",
    "WITH": "common table expressions (WITH) are not supported",
}

_UNSUPPORTED_JOINS = ("JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS")
_UNSUPPORTED_SET_OPS = ("UNION", "EXCEPT", "INTERSECT")


def _describe(tok) -> str:
    """Token text for error messages; the EOF sentinel's text is ``""``.

    Collapsing falsy is exactly the contract here: only the EOF token
    carries empty text, and "end of input" is its readable name.
    """
    return tok.text or "end of input"  # provlint: disable=falsy-or-default - only the EOF sentinel has empty text


class _SqlParser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize_sql(source)
        self.i = 0

    # -- token utilities -----------------------------------------------------
    def peek(self, offset: int = 0) -> SqlToken:
        j = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[j]

    def next(self) -> SqlToken:
        tok = self.peek()
        if tok.kind != "EOF":
            self.i += 1
        return tok

    def error(self, message: str, tok: SqlToken | None = None) -> SqlSyntaxError:
        if tok is None:
            tok = self.peek()
        return SqlSyntaxError(
            message, source=self.source, line=tok.line, column=tok.column
        )

    def unsupported(
        self, message: str, tok: SqlToken | None = None
    ) -> SqlUnsupportedError:
        if tok is None:
            tok = self.peek()
        return SqlUnsupportedError(
            message, source=self.source, line=tok.line, column=tok.column
        )

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "KEYWORD" and tok.text in words

    def expect_keyword(self, word: str) -> SqlToken:
        tok = self.next()
        if tok.kind != "KEYWORD" or tok.text != word:
            what = _describe(tok)
            raise self.error(f"expected {word}, found {what!r}", tok)
        return tok

    def expect_punct(self, ch: str) -> SqlToken:
        tok = self.next()
        if tok.kind != "PUNCT" or tok.text != ch:
            what = _describe(tok)
            raise self.error(f"expected {ch!r}, found {what!r}", tok)
        return tok

    def at_punct(self, ch: str) -> bool:
        tok = self.peek()
        return tok.kind == "PUNCT" and tok.text == ch

    def pos(self, tok: SqlToken) -> sa.Pos:
        return sa.Pos(tok.line, tok.column)

    # -- entry ---------------------------------------------------------------
    def parse(self) -> sa.SelectStatement:
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.text in _UNSUPPORTED_STATEMENTS:
            raise self.unsupported(_UNSUPPORTED_STATEMENTS[tok.text], tok)
        statement = self.parse_select()
        if self.at_punct(";"):
            self.next()
        tail = self.peek()
        if tail.kind != "EOF":
            if tail.kind == "KEYWORD" and tail.text in _UNSUPPORTED_SET_OPS:
                raise self.unsupported(
                    f"set operations ({tail.text}) are not supported", tail
                )
            raise self.error(
                f"unexpected trailing content {tail.text!r} after statement", tail
            )
        return statement

    def parse_select(self) -> sa.SelectStatement:
        start = self.expect_keyword("SELECT")
        distinct = False
        if self.at_keyword("DISTINCT"):
            self.next()
            distinct = True
        items = self.parse_select_items()
        self.expect_keyword("FROM")
        table, alias = self.parse_table_ref()
        where = None
        if self.at_keyword("WHERE"):
            self.next()
            where = self.parse_predicate()
        group_by: tuple[sa.ColumnRef, ...] = ()
        if self.at_keyword("GROUP"):
            self.next()
            self.expect_keyword("BY")
            group_by = tuple(self.parse_column_list())
        having = None
        if self.at_keyword("HAVING"):
            self.next()
            having = self.parse_predicate()
        order_by: tuple[sa.OrderItem, ...] = ()
        if self.at_keyword("ORDER"):
            self.next()
            self.expect_keyword("BY")
            order_by = tuple(self.parse_order_items())
        limit = None
        offset = None
        if self.at_keyword("LIMIT"):
            self.next()
            limit = self.parse_nonneg_int("LIMIT")
            if self.at_keyword("OFFSET"):
                self.next()
                offset = self.parse_nonneg_int("OFFSET")
        elif self.at_keyword("OFFSET"):
            self.next()
            offset = self.parse_nonneg_int("OFFSET")
        return sa.SelectStatement(
            items=items,
            table=table,
            alias=alias,
            distinct=distinct,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            pos=self.pos(start),
        )

    # -- select list ---------------------------------------------------------
    def parse_select_items(self) -> tuple[sa.SelectItem, ...]:
        if self.at_punct("*"):
            self.next()
            if self.at_punct(","):
                raise self.unsupported(
                    "mixing * with other select items is not supported"
                )
            return ()
        items: list[sa.SelectItem] = []
        while True:
            items.append(self.parse_select_item())
            if self.at_punct(","):
                self.next()
                continue
            break
        return tuple(items)

    def parse_select_item(self) -> sa.SelectItem:
        tok = self.peek()
        expr = self.parse_value_expr()
        alias = None
        if self.at_keyword("AS"):
            self.next()
            alias_tok = self.next()
            if alias_tok.kind not in ("NAME", "QNAME"):
                raise self.error("expected alias name after AS", alias_tok)
            alias = str(alias_tok.value)
        elif self.peek().kind in ("NAME", "QNAME"):
            alias = str(self.next().value)
        return sa.SelectItem(expr=expr, alias=alias, pos=self.pos(tok))

    def parse_value_expr(self) -> Union[sa.ColumnRef, sa.FuncCall]:
        """A column reference or an aggregate call."""
        tok = self.peek()
        if tok.kind == "NAME" and self.peek(1).kind == "PUNCT" \
                and self.peek(1).text == "(":
            func = tok.text.upper()
            self.next()
            self.next()  # '('
            if func not in sa.AGGREGATE_FUNCS:
                raise self.unsupported(
                    f"function {tok.text}() is not supported; available "
                    f"aggregates: {', '.join(sorted(sa.AGGREGATE_FUNCS))}",
                    tok,
                )
            if self.at_keyword("DISTINCT"):
                raise self.unsupported(
                    f"{func}(DISTINCT ...) is not supported"
                )
            arg: Union[sa.ColumnRef, sa.Star]
            if self.at_punct("*"):
                star = self.next()
                if func != "COUNT":
                    raise self.error(f"{func}(*) is not valid; name a column",
                                     star)
                arg = sa.Star(pos=self.pos(star))
            else:
                arg = self.parse_column_ref()
            self.expect_punct(")")
            return sa.FuncCall(func=func, arg=arg, pos=self.pos(tok))
        if tok.kind == "KEYWORD" and tok.text == "CASE":
            raise self.unsupported("CASE expressions are not supported", tok)
        column = self.parse_column_ref()
        nxt = self.peek()
        if nxt.kind == "PUNCT" and nxt.text in "+-*":
            raise self.unsupported(
                "arithmetic in expressions is not supported", nxt
            )
        return column

    def parse_column_ref(self) -> sa.ColumnRef:
        tok = self.next()
        if tok.kind not in ("NAME", "QNAME"):
            what = _describe(tok)
            raise self.error(f"expected a column name, found {what!r}", tok)
        parts = [str(tok.value)]
        # bare dotted paths: tasks.status, used.x — quoted identifiers
        # may also continue a dotted chain ("used"."x")
        while self.at_punct("."):
            self.next()
            part = self.next()
            if part.kind not in ("NAME", "QNAME"):
                raise self.error("expected identifier after '.'", part)
            parts.append(str(part.value))
        return sa.ColumnRef(path=".".join(parts), pos=self.pos(tok))

    def parse_column_list(self) -> list[sa.ColumnRef]:
        out = [self.parse_column_ref()]
        while self.at_punct(","):
            self.next()
            out.append(self.parse_column_ref())
        return out

    # -- FROM ----------------------------------------------------------------
    def parse_table_ref(self) -> tuple[str, str | None]:
        tok = self.next()
        if tok.kind == "PUNCT" and tok.text == "(":
            raise self.unsupported(
                "subqueries in FROM are not supported", tok
            )
        if tok.kind not in ("NAME", "QNAME"):
            what = _describe(tok)
            raise self.error(f"expected a table name, found {what!r}", tok)
        table = str(tok.value)
        alias = None
        if self.at_keyword("AS"):
            self.next()
            alias_tok = self.next()
            if alias_tok.kind not in ("NAME", "QNAME"):
                raise self.error("expected alias name after AS", alias_tok)
            alias = str(alias_tok.value)
        elif self.peek().kind == "NAME":
            alias = str(self.next().value)
        nxt = self.peek()
        if nxt.kind == "KEYWORD" and nxt.text in _UNSUPPORTED_JOINS:
            raise self.unsupported(
                "JOINs are not supported; the provenance documents are one "
                "flattened 'tasks' table",
                nxt,
            )
        if self.at_punct(","):
            raise self.unsupported(
                "multiple tables in FROM (implicit join) are not supported"
            )
        return table, alias

    # -- predicates ----------------------------------------------------------
    def parse_predicate(self) -> sa.SqlPredicate:
        return self.parse_or()

    def parse_or(self) -> sa.SqlPredicate:
        left = self.parse_and()
        while self.at_keyword("OR"):
            tok = self.next()
            right = self.parse_and()
            left = sa.OrExpr(left, right, pos=self.pos(tok))
        return left

    def parse_and(self) -> sa.SqlPredicate:
        left = self.parse_not()
        while self.at_keyword("AND"):
            tok = self.next()
            right = self.parse_not()
            left = sa.AndExpr(left, right, pos=self.pos(tok))
        return left

    def parse_not(self) -> sa.SqlPredicate:
        if self.at_keyword("NOT"):
            tok = self.next()
            return sa.NotExpr(self.parse_not(), pos=self.pos(tok))
        if self.at_punct("("):
            open_tok = self.next()
            if self.at_keyword("SELECT"):
                raise self.unsupported("subqueries are not supported")
            inner = self.parse_or()
            self.expect_punct(")")
            _ = open_tok
            return inner
        if self.at_keyword("EXISTS"):
            raise self.unsupported("EXISTS subqueries are not supported")
        return self.parse_predicate_atom()

    def parse_predicate_atom(self) -> sa.SqlPredicate:
        tok = self.peek()
        left = self.parse_value_expr()
        nxt = self.peek()
        if nxt.kind == "OP":
            op = self.next().text
            value = self.parse_literal()
            return sa.Comparison(left=left, op=op, value=value,
                                 pos=self.pos(tok))
        negated = False
        if self.at_keyword("NOT"):
            self.next()
            negated = True
            nxt = self.peek()
        if not isinstance(left, sa.ColumnRef) and nxt.kind == "KEYWORD" \
                and nxt.text in ("IN", "LIKE", "BETWEEN", "IS"):
            raise self.error(
                f"{nxt.text} applies to a column, not an aggregate", nxt
            )
        if self.at_keyword("IN"):
            self.next()
            self.expect_punct("(")
            if self.at_keyword("SELECT"):
                raise self.unsupported("subqueries are not supported")
            values = [self.parse_literal()]
            while self.at_punct(","):
                self.next()
                values.append(self.parse_literal())
            self.expect_punct(")")
            return sa.InList(column=left, values=tuple(values),
                             negated=negated, pos=self.pos(tok))
        if self.at_keyword("LIKE"):
            like_tok = self.next()
            pat = self.next()
            if pat.kind != "STRING":
                raise self.error("LIKE expects a string pattern", pat)
            return sa.LikePredicate(column=left, pattern=str(pat.value),
                                    negated=negated, pos=self.pos(like_tok))
        if self.at_keyword("BETWEEN"):
            self.next()
            low = self.parse_literal()
            self.expect_keyword("AND")
            high = self.parse_literal()
            return sa.BetweenPredicate(column=left, low=low, high=high,
                                       negated=negated, pos=self.pos(tok))
        if negated:
            raise self.error("expected IN, LIKE or BETWEEN after NOT")
        if self.at_keyword("IS"):
            self.next()
            is_not = False
            if self.at_keyword("NOT"):
                self.next()
                is_not = True
            null_tok = self.next()
            if null_tok.kind != "KEYWORD" or null_tok.text != "NULL":
                raise self.error("expected NULL after IS", null_tok)
            return sa.NullTest(column=left, negated=is_not, pos=self.pos(tok))
        what = _describe(nxt)
        raise self.error(
            f"expected a comparison operator, IN, LIKE, BETWEEN or IS "
            f"after column, found {what!r}",
            nxt,
        )

    # -- literals ------------------------------------------------------------
    def parse_literal(self) -> Any:
        tok = self.next()
        if tok.kind == "STRING":
            return tok.value
        if tok.kind == "NUMBER":
            return tok.value
        if tok.kind == "PUNCT" and tok.text in "+-":
            num = self.next()
            if num.kind != "NUMBER":
                raise self.error("expected a number after sign", num)
            value = num.value
            return -value if tok.text == "-" else value
        if tok.kind == "KEYWORD":
            if tok.text == "TRUE":
                return True
            if tok.text == "FALSE":
                return False
            if tok.text == "NULL":
                return None
            if tok.text == "SELECT":
                raise self.unsupported("subqueries are not supported", tok)
        if tok.kind in ("NAME", "QNAME"):
            raise self.error(
                f"expected a literal, found identifier {tok.text!r} "
                "(string literals use single quotes)",
                tok,
            )
        what = _describe(tok)
        raise self.error(f"expected a literal, found {what!r}", tok)

    def parse_nonneg_int(self, clause: str) -> int:
        tok = self.next()
        if tok.kind != "NUMBER" or not isinstance(tok.value, int) \
                or tok.value < 0:
            raise self.error(f"{clause} expects a non-negative integer", tok)
        return tok.value

    def parse_order_items(self) -> list[sa.OrderItem]:
        out: list[sa.OrderItem] = []
        while True:
            tok = self.peek()
            expr = self.parse_value_expr()
            ascending = True
            if self.at_keyword("ASC"):
                self.next()
            elif self.at_keyword("DESC"):
                self.next()
                ascending = False
            out.append(sa.OrderItem(expr=expr, ascending=ascending,
                                    pos=self.pos(tok)))
            if self.at_punct(","):
                self.next()
                continue
            break
        return out


def parse_sql(source: str) -> sa.SelectStatement:
    """Parse one SELECT statement, or raise a positioned :class:`SqlError`."""
    if not source or not source.strip():
        raise SqlSyntaxError(
            "empty SQL statement", source=source if source is not None else ""
        )
    parser = _SqlParser(source)
    first = parser.peek()
    if not (first.kind == "KEYWORD" and first.text == "SELECT") \
            and first.kind == "KEYWORD" and first.text in _UNSUPPORTED_STATEMENTS:
        raise parser.unsupported(_UNSUPPORTED_STATEMENTS[first.text], first)
    return parser.parse()
