"""Typed AST for the supported SELECT subset.

All nodes are frozen dataclasses (structural equality, like the query
IR).  Source positions ride along for diagnostics but are excluded from
comparison, so two parses of equivalent text with different whitespace
produce equal trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

__all__ = [
    "Pos",
    "ColumnRef",
    "Star",
    "FuncCall",
    "SelectItem",
    "Comparison",
    "InList",
    "LikePredicate",
    "BetweenPredicate",
    "NullTest",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "SqlPredicate",
    "OrderItem",
    "SelectStatement",
    "AGGREGATE_FUNCS",
]

#: SQL aggregate function name -> query-IR aggregation name.  AVG maps
#: to "mean" (the IR's canonical name), so a SQL query compiles to the
#: *same* pipeline — hence the same cache entry and the same gold-IR
#: comparison — as its pandas-like equivalent.
AGGREGATE_FUNCS: dict[str, str] = {
    "COUNT": "count",
    "SUM": "sum",
    "AVG": "mean",
    "MIN": "min",
    "MAX": "max",
}


@dataclass(frozen=True)
class Pos:
    """1-based source position (excluded from node equality)."""

    line: int = 1
    column: int = 1


def _pos_field() -> Any:
    return field(default=Pos(), compare=False, repr=False)


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly dotted) column reference, table prefix already split off."""

    path: str
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class Star:
    """``*`` (only valid in ``SELECT *`` and ``COUNT(*)``)."""

    pos: Pos = _pos_field()


@dataclass(frozen=True)
class FuncCall:
    """An aggregate call ``FUNC(column)`` or ``COUNT(*)``."""

    func: str  # uppercased SQL name, a key of AGGREGATE_FUNCS
    arg: Union[ColumnRef, Star]
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class SelectItem:
    expr: Union[ColumnRef, FuncCall]
    alias: str | None = None
    pos: Pos = _pos_field()


# -- predicates --------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``operand <op> literal`` with op in == != < <= > >=.

    ``left`` is a :class:`FuncCall` only inside HAVING (e.g.
    ``HAVING COUNT(task_id) > 3``); the checker enforces that.
    """

    left: Union[ColumnRef, FuncCall]
    op: str
    value: Any
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class InList:
    column: ColumnRef
    values: tuple
    negated: bool = False
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class LikePredicate:
    column: ColumnRef
    pattern: str
    negated: bool = False
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class BetweenPredicate:
    column: ColumnRef
    low: Any
    high: Any
    negated: bool = False
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class NullTest:
    """``col IS NULL`` (negated: ``IS NOT NULL``)."""

    column: ColumnRef
    negated: bool = False
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class NotExpr:
    operand: "SqlPredicate"
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class AndExpr:
    left: "SqlPredicate"
    right: "SqlPredicate"
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class OrExpr:
    left: "SqlPredicate"
    right: "SqlPredicate"
    pos: Pos = _pos_field()


SqlPredicate = Union[
    Comparison,
    InList,
    LikePredicate,
    BetweenPredicate,
    NullTest,
    NotExpr,
    AndExpr,
    OrExpr,
]


# -- statement ---------------------------------------------------------------


@dataclass(frozen=True)
class OrderItem:
    expr: Union[ColumnRef, FuncCall]
    ascending: bool = True
    pos: Pos = _pos_field()


@dataclass(frozen=True)
class SelectStatement:
    """One SELECT over the ``tasks`` document table."""

    items: tuple[SelectItem, ...]  # empty means SELECT *
    table: str = "tasks"
    alias: str | None = None
    distinct: bool = False
    where: SqlPredicate | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: SqlPredicate | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    pos: Pos = _pos_field()
