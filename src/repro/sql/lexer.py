"""Hand-rolled SQL lexer with line/column-positioned tokens.

Case-insensitive keywords, single-quoted strings with ``''`` escaping,
double-quoted identifiers (the only way to name the flattened dotted
provenance columns like ``"telemetry_at_end.cpu.percent"``), ints,
floats and exponent literals.  Every token remembers its 1-based
line/column so downstream stages can point a caret at it
(:mod:`repro.sql.errors`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.errors import SqlSyntaxError

__all__ = ["SqlToken", "tokenize_sql", "KEYWORDS"]

#: reserved words (matched case-insensitively, token text is uppercased)
KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "IN",
    "LIKE", "BETWEEN", "IS", "NULL", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "AS", "TRUE", "FALSE",
    # recognised so the parser can name them in unsupported-feature
    # diagnostics instead of emitting a generic syntax error
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "UNION",
    "EXCEPT", "INTERSECT", "INSERT", "UPDATE", "DELETE", "CREATE",
    "DROP", "CASE", "EXISTS", "WITH",
})

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_PUNCT = frozenset("(),.*;")


@dataclass(frozen=True)
class SqlToken:
    """One lexical token.

    ``kind`` is one of KEYWORD / NAME / QNAME (double-quoted identifier)
    / STRING / NUMBER / OP / PUNCT / EOF.  ``value`` is the cooked form
    (unquoted string body, numeric value); ``text`` the raw source text.
    """

    kind: str
    text: str
    value: object
    line: int
    column: int


def tokenize_sql(source: str) -> list[SqlToken]:
    """Tokenise ``source``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[SqlToken] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def err(message: str, at_line: int, at_col: int) -> SqlSyntaxError:
        return SqlSyntaxError(message, source=source, line=at_line, column=at_col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("--", i):
            # line comment: skip to end of line
            while i < n and source[i] != "\n":
                i += 1
                col += 1
            continue
        start_line, start_col = line, col
        if ch in _IDENT_START:
            j = i
            while j < n and source[j] in _IDENT_CONT:
                j += 1
            text = source[i:j]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(SqlToken("KEYWORD", upper, upper, start_line, start_col))
            else:
                tokens.append(SqlToken("NAME", text, text, start_line, start_col))
            col += j - i
            i = j
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and source[i + 1] in _DIGITS):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c in _DIGITS:
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    # exponent must be followed by [+-]?digit
                    k = j + 1
                    if k < n and source[k] in "+-":
                        k += 1
                    if k < n and source[k] in _DIGITS:
                        seen_exp = True
                        j = k + 1
                    else:
                        break
                else:
                    break
            text = source[i:j]
            value: object
            if seen_dot or seen_exp:
                value = float(text)
            else:
                value = int(text)
            tokens.append(SqlToken("NUMBER", text, value, start_line, start_col))
            col += j - i
            i = j
            continue
        if ch == "'":
            body: list[str] = []
            j = i + 1
            while True:
                if j >= n:
                    raise err("unterminated string literal", start_line, start_col)
                c = source[j]
                if c == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        body.append("'")  # '' escapes a quote
                        j += 2
                        continue
                    j += 1
                    break
                if c == "\n":
                    raise err("unterminated string literal", start_line, start_col)
                body.append(c)
                j += 1
            text = source[i:j]
            tokens.append(SqlToken("STRING", text, "".join(body), start_line, start_col))
            col += j - i
            i = j
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] not in '"\n':
                j += 1
            if j >= n or source[j] != '"':
                raise err("unterminated quoted identifier", start_line, start_col)
            body_text = source[i + 1:j]
            if not body_text:
                raise err("empty quoted identifier", start_line, start_col)
            j += 1
            tokens.append(
                SqlToken("QNAME", source[i:j], body_text, start_line, start_col)
            )
            col += j - i
            i = j
            continue
        for op in ("<>", "!=", "<=", ">="):
            if source.startswith(op, i):
                # <> is the standard spelling of !=; normalise here
                norm = "!=" if op == "<>" else op
                tokens.append(SqlToken("OP", norm, norm, start_line, start_col))
                i += 2
                col += 2
                break
        else:
            if ch in "<>=":
                norm = "==" if ch == "=" else ch
                tokens.append(SqlToken("OP", norm, norm, start_line, start_col))
                i += 1
                col += 1
            elif ch in _PUNCT or ch == "-" or ch == "+":
                tokens.append(SqlToken("PUNCT", ch, ch, start_line, start_col))
                i += 1
                col += 1
            else:
                raise err(f"unexpected character {ch!r}", start_line, start_col)
    tokens.append(SqlToken("EOF", "", None, line, col))
    return tokens
