"""Semantic checker: resolve names and type-check predicates.

The checker normalises a parsed :class:`~repro.sql.ast.SelectStatement`
into the shape the compiler lowers:

* the FROM table must be ``tasks`` (the flattened provenance document
  set); its name or alias is stripped from dotted column paths, so
  ``t.status`` and ``status`` resolve identically;
* SELECT aliases are resolved in GROUP BY and ORDER BY
  (``SELECT duration AS d ... ORDER BY d``);
* predicates are type-checked against a static catalog of the
  well-known provenance fields — ``LIKE`` on a numeric field, ordering
  comparisons between a string field and a number, and comparisons
  against ``NULL`` are rejected with positioned diagnostics.  Columns
  outside the catalog (the open ``used.* / generated.* / telemetry_*``
  document schema) pass the checker and fail at execution time exactly
  like the other dialects;
* aggregate placement follows SQL rules (none in WHERE, grouped selects
  list only grouping columns or the aggregate), restricted to the one
  aggregate per query the IR's :class:`~repro.query.ast.GroupAgg`
  carries — a second aggregate raises an explicit unsupported-feature
  error.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Union

from repro.sql import ast as sa
from repro.sql.errors import (
    SqlResolutionError,
    SqlUnsupportedError,
)

__all__ = ["check_statement", "STRING_FIELDS", "NUMERIC_FIELDS"]

#: the one queryable table (the provenance document set, flattened)
TABLE_NAME = "tasks"

#: well-known string-typed task-document fields
STRING_FIELDS = frozenset({
    "task_id", "workflow_id", "campaign_id", "activity_id", "status",
    "hostname", "type", "agent_id", "stdout", "stderr",
})

#: well-known numeric task-document fields
NUMERIC_FIELDS = frozenset({
    "started_at", "ended_at", "duration",
})


class _Checker:
    def __init__(self, source: str):
        self.source = source

    def fail(self, message: str, pos: sa.Pos,
             cls: type = SqlResolutionError) -> Exception:
        return cls(message, source=self.source, line=pos.line,
                   column=pos.column)

    # -- column normalisation ------------------------------------------------
    def strip_prefix(self, column: sa.ColumnRef,
                     names: tuple[str, ...]) -> sa.ColumnRef:
        head, dot, rest = column.path.partition(".")
        if dot and head in names:
            return replace(column, path=rest)
        return column

    def field_type(self, path: str) -> str:
        if path in STRING_FIELDS:
            return "string"
        if path in NUMERIC_FIELDS:
            return "numeric"
        return "unknown"

    # -- predicate walk ------------------------------------------------------
    def check_predicate(
        self,
        pred: sa.SqlPredicate,
        names: tuple[str, ...],
        *,
        clause: str,
        agg_ok: bool = False,
    ) -> sa.SqlPredicate:
        if isinstance(pred, sa.AndExpr):
            return replace(
                pred,
                left=self.check_predicate(pred.left, names, clause=clause,
                                          agg_ok=agg_ok),
                right=self.check_predicate(pred.right, names, clause=clause,
                                           agg_ok=agg_ok),
            )
        if isinstance(pred, sa.OrExpr):
            return replace(
                pred,
                left=self.check_predicate(pred.left, names, clause=clause,
                                          agg_ok=agg_ok),
                right=self.check_predicate(pred.right, names, clause=clause,
                                           agg_ok=agg_ok),
            )
        if isinstance(pred, sa.NotExpr):
            return replace(
                pred,
                operand=self.check_predicate(pred.operand, names,
                                             clause=clause, agg_ok=agg_ok),
            )
        if isinstance(pred, sa.Comparison):
            left = pred.left
            if isinstance(left, sa.FuncCall):
                if not agg_ok:
                    raise self.fail(
                        f"aggregate {left.func}() is not allowed in "
                        f"{clause}; use HAVING",
                        left.pos,
                    )
                left = self.check_func(left, names)
            else:
                left = self.strip_prefix(left, names)
                self.check_comparison_types(left, pred.op, pred.value,
                                            pred.pos)
            return replace(pred, left=left)
        if isinstance(pred, sa.InList):
            column = self.strip_prefix(pred.column, names)
            ftype = self.field_type(column.path)
            for v in pred.values:
                if v is None:
                    raise self.fail(
                        "NULL inside IN (...) never matches; use IS NULL",
                        pred.pos,
                    )
                self.check_literal_type(column, ftype, v, pred.pos,
                                        context="IN list")
            return replace(pred, column=column)
        if isinstance(pred, sa.LikePredicate):
            column = self.strip_prefix(pred.column, names)
            if self.field_type(column.path) == "numeric":
                raise self.fail(
                    f"LIKE needs a string column; {column.path!r} is numeric",
                    pred.pos,
                )
            return replace(pred, column=column)
        if isinstance(pred, sa.BetweenPredicate):
            column = self.strip_prefix(pred.column, names)
            ftype = self.field_type(column.path)
            for bound in (pred.low, pred.high):
                if bound is None:
                    raise self.fail(
                        "BETWEEN bounds cannot be NULL", pred.pos
                    )
                self.check_literal_type(column, ftype, bound, pred.pos,
                                        context="BETWEEN bound")
            return replace(pred, column=column)
        if isinstance(pred, sa.NullTest):
            return replace(pred, column=self.strip_prefix(pred.column, names))
        raise self.fail(f"unknown predicate node {type(pred).__name__}",
                        sa.Pos(), SqlUnsupportedError)

    def check_comparison_types(self, column: sa.ColumnRef, op: str,
                               value: object, pos: sa.Pos) -> None:
        if value is None:
            raise self.fail(
                "comparisons with NULL are always unknown; use IS NULL "
                "or IS NOT NULL",
                pos,
            )
        self.check_literal_type(column, self.field_type(column.path), value,
                                pos, context=f"{op} comparison")

    def check_literal_type(self, column: sa.ColumnRef, ftype: str,
                           value: object, pos: sa.Pos, *,
                           context: str) -> None:
        if ftype == "string" and not isinstance(value, str):
            raise self.fail(
                f"{column.path!r} is a string field; {context} against "
                f"{value!r} can never match",
                pos,
            )
        if ftype == "numeric" and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            raise self.fail(
                f"{column.path!r} is a numeric field; {context} against "
                f"{value!r} can never match",
                pos,
            )

    # -- aggregates ----------------------------------------------------------
    def check_func(self, func: sa.FuncCall,
                   names: tuple[str, ...]) -> sa.FuncCall:
        if isinstance(func.arg, sa.ColumnRef):
            arg = self.strip_prefix(func.arg, names)
            if func.func != "COUNT" \
                    and self.field_type(arg.path) == "string":
                raise self.fail(
                    f"{func.func}() needs a numeric column; "
                    f"{arg.path!r} is a string field",
                    func.pos,
                )
            return replace(func, arg=arg)
        return func

    def collect_aggregates(
        self, pred: sa.SqlPredicate | None
    ) -> list[sa.FuncCall]:
        if pred is None:
            return []
        if isinstance(pred, (sa.AndExpr, sa.OrExpr)):
            return self.collect_aggregates(pred.left) \
                + self.collect_aggregates(pred.right)
        if isinstance(pred, sa.NotExpr):
            return self.collect_aggregates(pred.operand)
        if isinstance(pred, sa.Comparison) \
                and isinstance(pred.left, sa.FuncCall):
            return [pred.left]
        return []


def check_statement(statement: sa.SelectStatement,
                    source: str = "") -> sa.SelectStatement:
    """Validate and normalise a parsed statement; raises positioned errors."""
    ck = _Checker(source)

    # -- table ---------------------------------------------------------------
    if statement.table != TABLE_NAME:
        raise ck.fail(
            f"unknown table {statement.table!r}; only {TABLE_NAME!r} is "
            "queryable",
            statement.pos,
        )
    names = (statement.table,)
    if statement.alias:
        names = names + (statement.alias,)

    # -- select list + aliases ----------------------------------------------
    items: list[sa.SelectItem] = []
    aliases: dict[str, Union[sa.ColumnRef, sa.FuncCall]] = {}
    select_aggs: list[sa.FuncCall] = []
    plain_columns: list[sa.ColumnRef] = []
    for item in statement.items:
        expr: Union[sa.ColumnRef, sa.FuncCall]
        if isinstance(item.expr, sa.FuncCall):
            expr = ck.check_func(item.expr, names)
            select_aggs.append(expr)
        else:
            expr = ck.strip_prefix(item.expr, names)
            plain_columns.append(expr)
        if item.alias is not None:
            if item.alias in aliases:
                raise ck.fail(f"duplicate alias {item.alias!r}", item.pos)
            aliases[item.alias] = expr
        items.append(replace(item, expr=expr))

    def resolve(expr: Union[sa.ColumnRef, sa.FuncCall]
                ) -> Union[sa.ColumnRef, sa.FuncCall]:
        """Alias -> select expression; other columns pass through."""
        if isinstance(expr, sa.ColumnRef) and expr.path in aliases:
            return aliases[expr.path]
        if isinstance(expr, sa.ColumnRef):
            return ck.strip_prefix(expr, names)
        return ck.check_func(expr, names)

    # -- WHERE ---------------------------------------------------------------
    where = None
    if statement.where is not None:
        where = ck.check_predicate(statement.where, names, clause="WHERE",
                                   agg_ok=False)

    # -- GROUP BY ------------------------------------------------------------
    group_by: list[sa.ColumnRef] = []
    for key in statement.group_by:
        resolved = resolve(key)
        if isinstance(resolved, sa.FuncCall):
            raise ck.fail("cannot GROUP BY an aggregate", key.pos)
        group_by.append(resolved)
    group_paths = {c.path for c in group_by}

    # -- HAVING --------------------------------------------------------------
    having = None
    if statement.having is not None:
        if not group_by:
            raise ck.fail("HAVING requires GROUP BY", statement.pos)
        having = ck.check_predicate(statement.having, names, clause="HAVING",
                                    agg_ok=True)
        having_aggs = ck.collect_aggregates(having)
        for leaf in _predicate_columns(having):
            if leaf.path not in group_paths \
                    and not _matches_agg_column(leaf, having_aggs) \
                    and not _matches_agg_column(leaf, select_aggs):
                raise ck.fail(
                    f"HAVING column {leaf.path!r} must be a grouping column "
                    "or the aggregate",
                    leaf.pos,
                )

    # -- ORDER BY ------------------------------------------------------------
    order_by: list[sa.OrderItem] = []
    for item in statement.order_by:
        resolved = resolve(item.expr)
        if isinstance(resolved, sa.FuncCall) and not group_by:
            raise ck.fail(
                "ORDER BY an aggregate requires GROUP BY", item.pos
            )
        order_by.append(replace(item, expr=resolved))

    # -- aggregate placement -------------------------------------------------
    all_aggs = (
        select_aggs
        + ck.collect_aggregates(having)
        + [o.expr for o in order_by if isinstance(o.expr, sa.FuncCall)]
    )
    agg_signatures = {(a.func, getattr(a.arg, "path", "*")) for a in all_aggs}
    if len(agg_signatures) > 1:
        described = ", ".join(
            sorted(f"{f}({p})" for f, p in agg_signatures)
        )
        raise ck.fail(
            f"only one aggregate per query is supported, found: {described}",
            all_aggs[0].pos,
            SqlUnsupportedError,
        )
    if group_by:
        if not select_aggs and statement.items:
            # plain GROUP BY without an aggregate is DISTINCT in disguise;
            # keep the subset small and the intent explicit
            raise ck.fail(
                "GROUP BY without an aggregate in the select list is not "
                "supported; use SELECT DISTINCT",
                statement.pos,
                SqlUnsupportedError,
            )
        if not statement.items:
            raise ck.fail(
                "SELECT * cannot be combined with GROUP BY; list the "
                "grouping columns and the aggregate",
                statement.pos,
            )
        for col in plain_columns:
            if col.path not in group_paths:
                raise ck.fail(
                    f"column {col.path!r} must appear in GROUP BY or inside "
                    "an aggregate",
                    col.pos,
                )
        for item in order_by:
            if isinstance(item.expr, sa.ColumnRef) \
                    and item.expr.path not in group_paths \
                    and not _matches_agg_column(item.expr, all_aggs):
                raise ck.fail(
                    f"ORDER BY column {item.expr.path!r} must be a grouping "
                    "column or the aggregate",
                    item.pos,
                )
    else:
        if select_aggs and plain_columns:
            raise ck.fail(
                "mixing aggregates and plain columns needs GROUP BY",
                statement.pos,
            )
        if select_aggs and len(statement.items) > 1:
            raise ck.fail(
                "a scalar aggregate query selects exactly one value",
                statement.pos,
            )
        if select_aggs and (statement.order_by or statement.distinct):
            raise ck.fail(
                "ORDER BY / DISTINCT do not apply to a scalar aggregate",
                statement.pos,
            )
        if select_aggs and (statement.limit is not None
                            or statement.offset is not None):
            raise ck.fail(
                "LIMIT / OFFSET do not apply to a scalar aggregate",
                statement.pos,
            )

    if statement.distinct and group_by:
        raise ck.fail(
            "SELECT DISTINCT with GROUP BY is not supported",
            statement.pos,
            SqlUnsupportedError,
        )
    if statement.distinct and not statement.items:
        raise ck.fail("SELECT DISTINCT * is not supported; name columns",
                      statement.pos, SqlUnsupportedError)
    if statement.distinct:
        selected = {c.path for c in plain_columns}
        for item in order_by:
            if isinstance(item.expr, sa.ColumnRef) \
                    and item.expr.path not in selected:
                raise ck.fail(
                    f"ORDER BY column {item.expr.path!r} must appear in the "
                    "SELECT DISTINCT list",
                    item.pos,
                )

    return replace(
        statement,
        items=tuple(items),
        where=where,
        group_by=tuple(group_by),
        having=having,
        order_by=tuple(order_by),
    )


def _predicate_columns(pred: sa.SqlPredicate) -> list[sa.ColumnRef]:
    """All plain column leaves referenced by a predicate tree."""
    if isinstance(pred, (sa.AndExpr, sa.OrExpr)):
        return _predicate_columns(pred.left) + _predicate_columns(pred.right)
    if isinstance(pred, sa.NotExpr):
        return _predicate_columns(pred.operand)
    if isinstance(pred, sa.Comparison):
        return [pred.left] if isinstance(pred.left, sa.ColumnRef) else []
    return [pred.column]


def _matches_agg_column(column: sa.ColumnRef,
                        aggs: list[sa.FuncCall]) -> bool:
    """True when an ORDER BY column names the aggregate's output column.

    A grouped pipeline's output frame keeps the aggregated column under
    its *source* name (``groupby(keys)[col].mean()`` yields
    ``[*keys, col]``), so ``ORDER BY col`` addresses the aggregate.
    """
    for agg in aggs:
        if isinstance(agg.arg, sa.ColumnRef) and agg.arg.path == column.path:
            return True
    return False
