"""SQL front-end for the provenance query surface.

A hand-rolled SELECT subset (projection, WHERE, GROUP BY + aggregates,
HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT) that compiles onto the
existing query IR (:mod:`repro.query`) — parse → typed AST → semantic
check → lower.  Nothing executes here: a SQL query and its pandas-like
equivalent compile to *equal* pipelines, so they share one executor,
one pushdown path and one :class:`~repro.query.QueryCache` entry.

Stages:

* :mod:`repro.sql.lexer` — positioned tokens;
* :mod:`repro.sql.parser` — recursive descent -> :mod:`repro.sql.ast`;
* :mod:`repro.sql.semantics` — column/alias resolution against the
  flattened ``tasks`` document schema, type-checked predicates;
* :mod:`repro.sql.compiler` — lowering to a query-IR ``Pipeline``;
* :mod:`repro.sql.render` — gold IR -> SQL text (the inverse, used by
  the evaluation harness and round-trip property tests);
* :mod:`repro.sql.errors` — positioned diagnostics with caret snippets.

The supported grammar is documented in ``docs/query_surface.md``.
"""

from repro.sql.ast import AGGREGATE_FUNCS, SelectStatement
from repro.sql.compiler import compile_sql, compile_statement
from repro.sql.errors import (
    SqlError,
    SqlResolutionError,
    SqlSyntaxError,
    SqlUnsupportedError,
    caret_snippet,
)
from repro.sql.lexer import SqlToken, tokenize_sql
from repro.sql.parser import parse_sql
from repro.sql.render import SqlRenderError, render_sql
from repro.sql.semantics import check_statement

__all__ = [
    "AGGREGATE_FUNCS",
    "SelectStatement",
    "SqlError",
    "SqlRenderError",
    "SqlResolutionError",
    "SqlSyntaxError",
    "SqlToken",
    "SqlUnsupportedError",
    "caret_snippet",
    "check_statement",
    "compile_sql",
    "compile_statement",
    "parse_sql",
    "render_sql",
    "tokenize_sql",
]
