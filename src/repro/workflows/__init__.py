"""Workflow engine and the paper's two evaluation workflows.

* :mod:`repro.workflows.engine` — a small DAG engine with simulated
  cluster scheduling, integrated with provenance capture (every task
  emits a Listing-1 message with ``used._upstream`` control-flow edges);
* :mod:`repro.workflows.synthetic` — the synthetic math workflow of
  Figure 5-A (fan-out/fan-in chained transformations), used for rapid
  agent prototyping and the quantitative evaluation;
* :mod:`repro.workflows.chemistry` — the computational-chemistry BDE
  workflow of Figure 5-B on a simulated DFT substrate.
"""

from repro.workflows.engine import Ref, TaskSpec, WorkflowEngine, WorkflowResult
from repro.workflows.synthetic import (
    SYNTHETIC_ACTIVITIES,
    run_synthetic_campaign,
    run_synthetic_workflow,
    synthetic_dag,
)

__all__ = [
    "Ref",
    "TaskSpec",
    "WorkflowEngine",
    "WorkflowResult",
    "SYNTHETIC_ACTIVITIES",
    "synthetic_dag",
    "run_synthetic_workflow",
    "run_synthetic_campaign",
]
