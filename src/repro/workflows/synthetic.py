"""The synthetic math workflow (paper Figure 5-A).

"A small set of chained mathematical transformations forming a
fan-out/fan-in structure that exercises both data dependency tracking
and semantic reasoning over intermediate states" — deterministic, fast,
dependency-free, used to bootstrap and stress-test the agent and to run
the quantitative evaluation at 1..1000 workflow instances.

Structure (activity names straight from the figure)::

    inputs -> scale_and_shift -+-> square_and_divide     -> log_and_shift    -+
                               +-> scale_and_square_root -> power             +-> average_results
                               +-> subtract_and_shift    -> subtract_and_square+
"""

from __future__ import annotations

import math
from typing import Any

from repro.capture.context import CaptureContext
from repro.utils.seeding import derive_rng
from repro.workflows.engine import Ref, TaskSpec, WorkflowEngine, WorkflowResult

__all__ = [
    "SYNTHETIC_ACTIVITIES",
    "synthetic_dag",
    "run_synthetic_workflow",
    "run_synthetic_campaign",
]

SYNTHETIC_ACTIVITIES = (
    "scale_and_shift",
    "square_and_divide",
    "scale_and_square_root",
    "subtract_and_shift",
    "log_and_shift",
    "power",
    "subtract_and_square",
    "average_results",
)


# -- the transformations (plain functions; provenance comes from the engine) --


def scale_and_shift(x: float, factor: float, shift: float) -> dict[str, float]:
    return {"value": x * factor + shift}


def square_and_divide(value: float, divisor: float) -> dict[str, float]:
    return {"value": value * value / divisor}


def scale_and_square_root(value: float, factor: float) -> dict[str, float]:
    return {"value": factor * math.sqrt(abs(value))}


def subtract_and_shift(value: float, subtrahend: float, shift: float) -> dict[str, float]:
    return {"value": value - subtrahend + shift}


def log_and_shift(value: float, shift: float) -> dict[str, float]:
    return {"value": math.log(abs(value) + 1.0) + shift}


def power(value: float, exponent: float) -> dict[str, float]:
    return {"value": math.pow(abs(value), exponent)}


def subtract_and_square(value: float, subtrahend: float) -> dict[str, float]:
    return {"value": (value - subtrahend) ** 2}


def average_results(a: float, b: float, c: float) -> dict[str, float]:
    return {"value": (a + b + c) / 3.0, "n_branches": 3}


def synthetic_dag(x: float, params: dict[str, float] | None = None) -> list[TaskSpec]:
    """Build the Figure 5-A DAG for one input value."""
    p = {
        "factor": 2.0,
        "shift": 1.0,
        "divisor": 4.0,
        "sqrt_factor": 3.0,
        "subtrahend": 0.5,
        "exponent": 1.5,
    }
    if params:
        p.update(params)
    return [
        TaskSpec(
            "scale_and_shift",
            scale_and_shift,
            {"x": x, "factor": p["factor"], "shift": p["shift"]},
            cost_s=0.02,
        ),
        TaskSpec(
            "square_and_divide",
            square_and_divide,
            {"value": Ref("scale_and_shift", "value"), "divisor": p["divisor"]},
            cost_s=0.03,
        ),
        TaskSpec(
            "scale_and_square_root",
            scale_and_square_root,
            {"value": Ref("scale_and_shift", "value"), "factor": p["sqrt_factor"]},
            cost_s=0.03,
        ),
        TaskSpec(
            "subtract_and_shift",
            subtract_and_shift,
            {
                "value": Ref("scale_and_shift", "value"),
                "subtrahend": p["subtrahend"],
                "shift": p["shift"],
            },
            cost_s=0.02,
        ),
        TaskSpec(
            "log_and_shift",
            log_and_shift,
            {"value": Ref("square_and_divide", "value"), "shift": p["shift"]},
            cost_s=0.04,
        ),
        TaskSpec(
            "power",
            power,
            {"value": Ref("scale_and_square_root", "value"), "exponent": p["exponent"]},
            cost_s=0.05,
        ),
        TaskSpec(
            "subtract_and_square",
            subtract_and_square,
            {
                "value": Ref("subtract_and_shift", "value"),
                "subtrahend": p["subtrahend"],
            },
            cost_s=0.02,
        ),
        TaskSpec(
            "average_results",
            average_results,
            {
                "a": Ref("log_and_shift", "value"),
                "b": Ref("power", "value"),
                "c": Ref("subtract_and_square", "value"),
            },
            cost_s=0.03,
        ),
    ]


def run_synthetic_workflow(
    context: CaptureContext | None = None,
    *,
    x: float = 1.0,
    params: dict[str, float] | None = None,
    engine: WorkflowEngine | None = None,
) -> WorkflowResult:
    """Run one synthetic workflow instance with provenance capture."""
    context = context if context is not None else CaptureContext.default()
    engine = engine if engine is not None else WorkflowEngine(context)
    return engine.execute(
        synthetic_dag(x, params), workflow_name="synthetic_math_workflow"
    )


def run_synthetic_campaign(
    context: CaptureContext | None = None,
    *,
    n_inputs: int = 100,
    seed: Any = "synthetic-campaign",
) -> list[WorkflowResult]:
    """Run the paper's evaluation campaign: ``n_inputs`` workflow instances.

    Input values and parameter jitter are seeded so the campaign is
    reproducible; results are streamed to the context's broker, giving
    the agent ``8 * n_inputs`` task messages to work over.
    """
    context = context if context is not None else CaptureContext.default()
    engine = WorkflowEngine(context)
    rng = derive_rng("synthetic", seed, n_inputs)
    out: list[WorkflowResult] = []
    for i in range(n_inputs):
        x = float(rng.uniform(0.5, 10.0))
        params = {"factor": float(rng.uniform(1.0, 3.0))}
        out.append(
            engine.execute(
                synthetic_dag(x, params),
                workflow_name="synthetic_math_workflow",
            )
        )
    context.flush()
    return out
