"""A small provenance-integrated DAG workflow engine.

Tasks declare inputs as literal values or :class:`Ref` references to
upstream outputs; the dependency graph is derived from the references
(plus explicit ``after`` edges for pure control dependencies).  The
engine runs tasks in topological order, assigns each to a simulated
cluster node (least-loaded-first), advances the virtual clock by the
task's ``cost_s``, and emits one task-provenance message per execution
through the ``@flow_task`` machinery — including ``used._upstream``
edges that the provenance graph understands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import networkx as nx

from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.errors import CyclicDependencyError, TaskFailedError, WorkflowError

__all__ = ["Ref", "TaskSpec", "WorkflowEngine", "WorkflowResult"]


@dataclass(frozen=True)
class Ref:
    """Reference to an upstream task's output.

    ``Ref("minimize")`` passes the task's whole result;
    ``Ref("minimize", "energy")`` passes one field of a dict result.
    """

    task: str
    field: str | None = None


@dataclass
class TaskSpec:
    """Declarative description of one task in the DAG."""

    name: str
    fn: Callable[..., Any]
    inputs: dict[str, Any] = field(default_factory=dict)
    after: tuple[str, ...] = ()
    activity_id: str | None = None
    cost_s: float = 0.01
    host: str | None = None

    def dependencies(self) -> set[str]:
        deps = {v.task for v in self.inputs.values() if isinstance(v, Ref)}
        deps.update(self.after)
        return deps


@dataclass
class WorkflowResult:
    """Execution outcome: per-task results, ids, and placements."""

    workflow_id: str
    results: dict[str, Any]
    task_ids: dict[str, str]
    hosts: dict[str, str]
    order: list[str]

    def __getitem__(self, task_name: str) -> Any:
        return self.results[task_name]


class WorkflowEngine:
    """Executes task DAGs on a simulated cluster with provenance capture."""

    def __init__(
        self,
        context: CaptureContext | None = None,
        *,
        cluster_hosts: tuple[str, ...] = ("node-0", "node-1", "node-2", "node-3"),
    ):
        self.context = context if context is not None else CaptureContext.default()
        if not cluster_hosts:
            raise WorkflowError("cluster needs at least one host")
        self.cluster_hosts = cluster_hosts
        self._host_load: dict[str, float] = {h: 0.0 for h in cluster_hosts}

    # -- graph handling -----------------------------------------------------------
    @staticmethod
    def build_graph(tasks: list[TaskSpec]) -> nx.DiGraph:
        by_name: dict[str, TaskSpec] = {}
        for t in tasks:
            if t.name in by_name:
                raise WorkflowError(f"duplicate task name {t.name!r}")
            by_name[t.name] = t
        g = nx.DiGraph()
        for t in tasks:
            g.add_node(t.name, spec=t)
        for t in tasks:
            for dep in t.dependencies():
                if dep not in by_name:
                    raise WorkflowError(
                        f"task {t.name!r} depends on unknown task {dep!r}"
                    )
                g.add_edge(dep, t.name)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise CyclicDependencyError(f"dependency cycle: {cycle}")
        return g

    # -- scheduling ------------------------------------------------------------------
    def _assign_host(self, spec: TaskSpec) -> str:
        if spec.host is not None:
            # pinned tasks still occupy their host: without this the
            # least-loaded choice below under-counts any host that also
            # runs pinned work
            self._host_load[spec.host] = (
                self._host_load.get(spec.host, 0.0) + spec.cost_s
            )
            return spec.host
        host = min(
            self.cluster_hosts, key=lambda h: (self._host_load.get(h, 0.0), h)
        )
        self._host_load[host] += spec.cost_s
        return host

    # -- execution -------------------------------------------------------------------
    def execute(
        self,
        tasks: list[TaskSpec],
        *,
        workflow_name: str = "workflow",
        workflow_id: str | None = None,
    ) -> WorkflowResult:
        graph = self.build_graph(tasks)
        order = list(nx.topological_sort(graph))
        results: dict[str, Any] = {}
        task_ids: dict[str, str] = {}
        hosts: dict[str, str] = {}

        with WorkflowRun(
            workflow_name, self.context, workflow_id=workflow_id
        ) as run:
            for name in order:
                spec: TaskSpec = graph.nodes[name]["spec"]
                kwargs = {
                    k: self._resolve(v, results) for k, v in spec.inputs.items()
                }
                host = self._assign_host(spec)
                hosts[name] = host
                upstream_ids = [task_ids[d] for d in sorted(spec.dependencies())]

                instrumented = flow_task(
                    activity_id=spec.activity_id or spec.name,
                    context=self.context,
                )(self._with_simulated_cost(spec))
                try:
                    result = instrumented(
                        **kwargs,
                        _upstream=upstream_ids,
                        _hostname=host,
                    )
                except Exception as exc:
                    raise TaskFailedError(name, exc) from exc
                results[name] = result
                task_ids[name] = self._last_emitted_task_id()
            wf_id = run.workflow_id
        return WorkflowResult(wf_id, results, task_ids, hosts, order)

    def _with_simulated_cost(self, spec: TaskSpec):
        """Wrap the task fn so the virtual clock advances *inside* the task.

        The provenance wrapper stamps ``ended_at`` after the fn returns, so
        advancing here makes task duration equal the simulated cost — for
        failures too (the sleep is in a ``finally``).
        """
        import functools

        @functools.wraps(spec.fn)
        def timed(*args, **kwargs):
            try:
                return spec.fn(*args, **kwargs)
            finally:
                self.context.clock.sleep(spec.cost_s)

        return timed

    def _last_emitted_task_id(self) -> str:
        # the buffer remembers the last appended task id across flushes;
        # fall back to the broker log for contexts with a foreign buffer
        task_id = self.context.buffer.last_task_id()
        if task_id is not None:
            return task_id
        history = getattr(self.context.broker, "history", None)
        if history is not None:
            envs = self.context.broker.history("provenance.task")
            if envs:
                return envs[-1].payload["task_id"]
        raise WorkflowError("could not locate emitted task id")

    @staticmethod
    def _resolve(value: Any, results: Mapping[str, Any]) -> Any:
        if isinstance(value, Ref):
            out = results[value.task]
            if value.field is None:
                return out
            if isinstance(out, Mapping) and value.field in out:
                return out[value.field]
            raise WorkflowError(
                f"task {value.task!r} result has no field {value.field!r}"
            )
        return value
