"""Thermochemistry for the simulated DFT substrate.

The real workflow derives zero-point energy (``z0``), thermal enthalpy
(``h0``) and entropy (``s0``) from a vibrational analysis; only their
*differences* (fragments minus parent) flow into the reported BDE
quantities.  We therefore use a calibrated linear model whose extensive
parts cancel exactly in that arithmetic::

    z0(mol)   = 0.00892 * n_atoms                          (hartree)
    h0(mol)   = H_CONST + 0.00922 * n_atoms  (+ jitter)    (hartree)
    t*s0(mol) = S_CONST + 0.00576 * n_atoms  (+ jitter)    (hartree)

Breaking a bond conserves total atoms across the fragment pair, so::

    ΔH  = Δ E_elec + H_CONST   -> bd_enthalpy ≈ bd_energy + 1.58 kcal/mol
    ΔG  = ΔH − S_CONST_total   -> bd_free_energy ≈ bd_energy − 6.26 kcal/mol

— exactly the offsets visible in the paper's Listing 1 (98.649 /
100.228 / 92.391 kcal/mol).  For ethanol the absolute values also land
on the Listing: h0 ≈ 0.0855, s0 ≈ 0.0643, z0 ≈ 0.0803 hartree.

A synthetic harmonic frequency ladder is still produced (3N−6 modes,
X–H stretch band on top) for provenance realism: mode counts and the
spectral shape are what downstream consumers display.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.seeding import derive_rng
from repro.workflows.chemistry.molecule import Molecule

__all__ = ["ThermoResult", "vibrational_frequencies", "thermochemistry"]

HARTREE_KCAL = 627.5094740

#: Intensive constants (hartree).  H_CONST ≈ +1.58 kcal/mol is the net
#: thermal enthalpy gain of creating one extra gas-phase species;
#: S_CONST ≈ +7.84 kcal/mol is the corresponding entropy (T*S) gain.
H_CONST = 1.58 / HARTREE_KCAL
S_CONST = 7.84 / HARTREE_KCAL

_Z0_PER_ATOM = 0.00892
_H0_PER_ATOM = 0.00922
_TS_PER_ATOM = 0.00576
_JITTER_KCAL = 0.15  # per-molecule seeded scatter


@dataclass
class ThermoResult:
    """Thermochemical corrections for one structure at temperature T."""

    temperature_k: float
    zpe_hartree: float  # z0
    thermal_enthalpy_hartree: float  # h0
    ts_entropy_hartree: float  # t * s0 (reported as s0 in Listing style)
    n_modes: int

    @property
    def s0(self) -> float:
        return self.ts_entropy_hartree

    def enthalpy(self, e0_hartree: float) -> float:
        return e0_hartree + self.thermal_enthalpy_hartree

    def free_energy(self, e0_hartree: float) -> float:
        return (
            e0_hartree
            + self.thermal_enthalpy_hartree
            - self.ts_entropy_hartree * (self.temperature_k / 298.15)
        )


def vibrational_frequencies(mol: Molecule) -> list[float]:
    """Synthetic 3N-6(5) frequency ladder in cm^-1 (deterministic)."""
    n = mol.n_atoms
    if n <= 1:
        return []
    n_modes = max(0, 3 * n - (5 if n == 2 else 6))
    rng = derive_rng("freqs", mol.name, mol.formula(), mol.multiplicity)
    n_xh = sum(
        1
        for b in mol.bonds()
        if "H" in (mol.atom(b.a).symbol, mol.atom(b.b).symbol)
    )
    freqs: list[float] = []
    for k in range(n_modes):
        if k < min(n_xh, n_modes):  # X-H stretch region
            freqs.append(float(rng.uniform(2800, 3700)))
        elif k < min(n_xh + mol.n_bonds - n_xh, n_modes):  # skeletal stretches
            freqs.append(float(rng.uniform(800, 1600)))
        else:  # bends / torsions
            freqs.append(float(rng.uniform(100, 900)))
    return sorted(freqs)


def thermochemistry(mol: Molecule, temperature_k: float = 298.15) -> ThermoResult:
    """Compute z0 / h0 / t*s0 for one molecule (see module docstring)."""
    if temperature_k <= 0:
        raise ValueError("temperature must be positive")
    n = mol.n_atoms
    freqs = vibrational_frequencies(mol)
    rng = derive_rng("thermo", mol.name, mol.formula(), round(temperature_k, 3))
    jitter = float(rng.normal(0.0, _JITTER_KCAL)) / HARTREE_KCAL

    # temperature scaling: thermal terms grow ~linearly around 298 K
    t_scale = temperature_k / 298.15
    zpe = _Z0_PER_ATOM * n
    h0 = (H_CONST + _H0_PER_ATOM * n) * (0.9 + 0.1 * t_scale) + jitter
    ts0 = (S_CONST + _TS_PER_ATOM * n) * t_scale + jitter * 0.5

    return ThermoResult(
        temperature_k=temperature_k,
        zpe_hartree=zpe,
        thermal_enthalpy_hartree=h0,
        ts_entropy_hartree=ts0,
        n_modes=len(freqs),
    )
