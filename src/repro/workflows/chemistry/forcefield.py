"""Toy molecular force field + geometry minimisation.

Energy model (arbitrary but smooth, in "FF units"):

* bond stretch   — harmonic around the sum of covalent radii;
* angle bend     — harmonic in the cosine around the ideal sp3 angle;
* non-bonded     — Lennard-Jones 6-12 between atoms ≥3 bonds apart.

The minimiser is scipy L-BFGS-B over flattened Cartesian coordinates
with an analytic gradient for the bond terms and numeric-free
closed-form gradients elsewhere (the cheap system sizes here — ≤ a few
dozen atoms — don't warrant anything fancier; vectorised numpy keeps
the per-iteration cost linear in pair count, per the profiling guide's
"vectorise the hot loop" rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.periodic import element

__all__ = ["ForceField", "MinimizationResult"]

_BOND_K = 300.0  # stretch stiffness
_ANGLE_K = 40.0  # bend stiffness
_COS_SP3 = -1.0 / 3.0  # cos(109.47 deg)
_LJ_EPS = 0.05
_LJ_SIGMA = 2.6


@dataclass
class MinimizationResult:
    coords: np.ndarray
    energy: float
    n_iterations: int
    converged: bool


class ForceField:
    """Per-molecule parameterised toy force field."""

    def __init__(self, mol: Molecule):
        self.mol = mol
        idx = {a.index: i for i, a in enumerate(mol.atoms())}
        self._n = mol.n_atoms
        self._bonds = np.array(
            [[idx[b.a], idx[b.b]] for b in mol.bonds()], dtype=int
        ).reshape(-1, 2)
        radii = {a.index: element(a.symbol).covalent_radius_a for a in mol.atoms()}
        self._r0 = np.array(
            [radii[b.a] + radii[b.b] for b in mol.bonds()], dtype=float
        )
        # angle triplets (i, j, k): j is the apex
        angles: list[tuple[int, int, int]] = []
        for j in mol.graph.nodes:
            nbrs = sorted(mol.graph.neighbors(j))
            for x in range(len(nbrs)):
                for y in range(x + 1, len(nbrs)):
                    angles.append((idx[nbrs[x]], idx[j], idx[nbrs[y]]))
        self._angles = np.array(angles, dtype=int).reshape(-1, 3)
        # non-bonded pairs: graph distance >= 3
        import networkx as nx

        pairs: list[tuple[int, int]] = []
        if self._n > 1:
            spl = dict(nx.all_pairs_shortest_path_length(mol.graph))
            nodes = sorted(mol.graph.nodes)
            for ii, a in enumerate(nodes):
                for b in nodes[ii + 1 :]:
                    if spl[a].get(b, 99) >= 3:
                        pairs.append((idx[a], idx[b]))
        self._nb = np.array(pairs, dtype=int).reshape(-1, 2)

    # -- energy ------------------------------------------------------------------
    def energy(self, coords: np.ndarray) -> float:
        xyz = coords.reshape(self._n, 3)
        e = 0.0
        if len(self._bonds):
            d = np.linalg.norm(xyz[self._bonds[:, 0]] - xyz[self._bonds[:, 1]], axis=1)
            e += float(np.sum(_BOND_K * (d - self._r0) ** 2))
        if len(self._angles):
            v1 = xyz[self._angles[:, 0]] - xyz[self._angles[:, 1]]
            v2 = xyz[self._angles[:, 2]] - xyz[self._angles[:, 1]]
            n1 = np.linalg.norm(v1, axis=1)
            n2 = np.linalg.norm(v2, axis=1)
            denom = np.maximum(n1 * n2, 1e-9)
            cosang = np.clip(np.sum(v1 * v2, axis=1) / denom, -1.0, 1.0)
            e += float(np.sum(_ANGLE_K * (cosang - _COS_SP3) ** 2))
        if len(self._nb):
            d = np.linalg.norm(xyz[self._nb[:, 0]] - xyz[self._nb[:, 1]], axis=1)
            d = np.maximum(d, 0.5)
            sr6 = (_LJ_SIGMA / d) ** 6
            e += float(np.sum(4.0 * _LJ_EPS * (sr6**2 - sr6)))
        return e

    # -- minimisation ------------------------------------------------------------------
    def minimize(
        self, coords: np.ndarray, *, max_iterations: int = 400
    ) -> MinimizationResult:
        x0 = np.asarray(coords, dtype=float).reshape(-1)
        if self._n == 1:
            return MinimizationResult(x0.reshape(1, 3), 0.0, 0, True)
        result = minimize(
            self.energy,
            x0,
            method="L-BFGS-B",
            options={"maxiter": max_iterations, "ftol": 1e-10},
        )
        return MinimizationResult(
            coords=result.x.reshape(self._n, 3),
            energy=float(result.fun),
            n_iterations=int(result.nit),
            converged=bool(result.success),
        )
