"""The Bond Dissociation Energy workflow (paper Figure 5-B).

Takes a SMILES string and orchestrates, with full provenance capture:

1.  ``generate_conformer`` xN + ``geometry_minimization`` per conformer,
2.  ``get_lowest_energy`` — select the parent structure,
3.  ``create_parent_structure`` + ``run_dft`` + ``postprocess`` for the parent,
4.  per breakable bond: ``break_bond_generate_fragment``,
    ``create_input_for_fragment`` x2, ``run_dft`` x2, ``postprocess`` x2,
5.  ``run_individual_bde`` per bond — emitting exactly the Listing-1
    message shape (used: e0/frags/h0/s0/z0/outdir; generated: bond_id,
    bd_energy, bd_enthalpy, bd_free_energy).

Tasks are placed on simulated Frontier nodes and advance the virtual
clock by each DFT's simulated wall time, so scheduling and telemetry
provenance look like the paper's HPC runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.workflows.chemistry.conformers import (
    embed_molecule,
    lowest_energy,
)
from repro.workflows.chemistry.dft import HARTREE_KCAL, SimulatedDFT
from repro.workflows.chemistry.forcefield import ForceField
from repro.workflows.chemistry.fragments import break_bond, enumerate_breakable_bonds
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.smiles import parse_smiles
from repro.workflows.chemistry.thermo import thermochemistry

__all__ = ["BondRecord", "BDEReport", "run_bde_workflow", "FRONTIER_HOSTS"]

FRONTIER_HOSTS = tuple(
    f"frontier{n:05d}.frontier.olcf.ornl.gov" for n in (84, 85, 86, 87)
)


@dataclass
class BondRecord:
    """Computed energetics for one broken bond."""

    bond_id: str
    bd_energy: float  # kcal/mol (electronic)
    bd_enthalpy: float  # kcal/mol at T
    bd_free_energy: float  # kcal/mol at T
    fragment1_smiles: str
    fragment2_smiles: str
    fragment1_formula: str
    fragment2_formula: str
    fragment_multiplicity: int
    fragment_charge: int


@dataclass
class BDEReport:
    """Full workflow output."""

    smiles: str
    parent_formula: str
    parent_n_atoms: int
    parent_charge: int
    parent_multiplicity: int
    parent_e0_hartree: float
    functional: str
    basis_set: str
    temperature_k: float
    bonds: list[BondRecord] = field(default_factory=list)
    workflow_id: str = ""
    n_tasks: int = 0

    def bond(self, bond_id: str) -> BondRecord:
        for b in self.bonds:
            if b.bond_id == bond_id:
                return b
        raise KeyError(f"no bond {bond_id!r} in report")

    def lowest_enthalpy_bond(self) -> BondRecord:
        return min(self.bonds, key=lambda b: b.bd_enthalpy)

    def highest_free_energy_bond(self) -> BondRecord:
        return max(self.bonds, key=lambda b: b.bd_free_energy)

    def mean_bde_for(self, pattern: str) -> float:
        vals = [b.bd_enthalpy for b in self.bonds if pattern in b.bond_id]
        if not vals:
            raise KeyError(f"no bonds matching {pattern!r}")
        return sum(vals) / len(vals)

    def total_atoms_including_fragments(self) -> int:
        """Parent atoms + every fragment's atoms (Q5's famous 81 for ethanol)."""
        total = self.parent_n_atoms
        total += self.parent_n_atoms * len(self.bonds)  # each pair sums to parent
        return total


# ---------------------------------------------------------------------------
# Instrumented task bodies (activity names follow Figure 5-B)
# ---------------------------------------------------------------------------


@flow_task("generate_conformer")
def _generate_conformer(smiles: str, conformer_seed: int) -> dict[str, Any]:
    mol = parse_smiles(smiles)
    coords = embed_molecule(mol, seed=conformer_seed)
    return {
        "conformer_id": conformer_seed,
        "n_atoms": mol.n_atoms,
        "coords_checksum": round(float(np.abs(coords).sum()), 6),
    }


@flow_task("geometry_minimization")
def _geometry_minimization(smiles: str, conformer_id: int) -> dict[str, Any]:
    mol = parse_smiles(smiles)
    coords = embed_molecule(mol, seed=conformer_id)
    res = ForceField(mol).minimize(coords)
    return {
        "conformer_id": conformer_id,
        "ff_energy": round(res.energy, 6),
        "n_iterations": res.n_iterations,
        "converged": res.converged,
    }


@flow_task("get_lowest_energy")
def _get_lowest_energy(energies: dict[int, float]) -> dict[str, Any]:
    best = min(energies, key=lambda k: energies[k])
    return {"conformer_id": best, "ff_energy": energies[best]}


@flow_task("create_parent_structure")
def _create_parent_structure(smiles: str, conformer_id: int) -> dict[str, Any]:
    mol = parse_smiles(smiles, name="parent")
    return {
        "structure": mol.to_smiles_like(),
        "formula": mol.formula(),
        "n_atoms": mol.n_atoms,
        "charge": mol.charge,
        "multiplicity": mol.multiplicity,
        "conformer_id": conformer_id,
    }


@flow_task("break_bond_generate_fragment")
def _break_bond_generate_fragment(smiles: str, bond_id: str) -> dict[str, Any]:
    mol = parse_smiles(smiles, name="parent")
    bond = dict(mol.labeled_bonds())[bond_id]
    f1, f2 = break_bond(mol, bond)
    return {
        "bond_id": bond_id,
        "fragment1": f1.to_smiles_like(),
        "fragment2": f2.to_smiles_like(),
        "fragment1_formula": f1.formula(),
        "fragment2_formula": f2.formula(),
        "n_atoms_total": f1.n_atoms + f2.n_atoms,
    }


@flow_task("create_input_for_fragment")
def _create_input_for_fragment(
    fragment: str, bond_id: str, which: int, functional: str, basis_set: str
) -> dict[str, Any]:
    return {
        "input_deck": f"%method {functional}/{basis_set}\n%geometry {fragment}",
        "bond_id": bond_id,
        "which": which,
    }


@flow_task("run_dft")
def _run_dft(
    molecule_name: str,
    n_atoms: int,
    charge: int,
    multiplicity: int,
    e0: float,
    n_scf_iterations: int,
    converged: bool,
    functional: str,
    basis_set: str,
) -> dict[str, Any]:
    return {
        "e0": e0,
        "n_scf_iterations": n_scf_iterations,
        "converged": converged,
        "functional": functional,
        "basis_set": basis_set,
        "charge": charge,
        "multiplicity": multiplicity,
    }


@flow_task("postprocess")
def _postprocess(
    molecule_name: str, e0: float, h0: float, s0: float, z0: float
) -> dict[str, Any]:
    return {
        "e0": e0,
        "enthalpy": e0 + h0,
        "free_energy": e0 + h0 - s0,
        "zpe": z0,
    }


@flow_task("run_individual_bde")
def _run_individual_bde(
    e0: float,
    frags: dict[str, str],
    h0: float,
    outdir: str,
    s0: float,
    z0: float,
    parent_thermo: dict[str, float],
    frag_results: list[dict[str, float]],
) -> dict[str, Any]:
    """Combine parent + fragment energetics into the per-bond BDE record.

    The signature's leading parameters mirror the paper's Listing 1
    ``used`` block exactly (e0, frags, h0, outdir, s0, z0).
    """
    parent_h = e0 + parent_thermo["h0"]
    parent_g = e0 + parent_thermo["h0"] - parent_thermo["ts0"]
    frag_e = sum(f["e0"] for f in frag_results)
    frag_h = sum(f["e0"] + f["h0"] for f in frag_results)
    frag_g = sum(f["e0"] + f["h0"] - f["ts0"] for f in frag_results)
    return {
        "bond_id": frags["label"],
        "bd_energy": (frag_e - e0) * HARTREE_KCAL,
        "bd_enthalpy": (frag_h - parent_h) * HARTREE_KCAL,
        "bd_free_energy": (frag_g - parent_g) * HARTREE_KCAL,
    }


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def run_bde_workflow(
    smiles: str,
    context: CaptureContext | None = None,
    *,
    n_conformers: int = 3,
    temperature_k: float = 298.15,
    functional: str = "B3LYP",
    basis_set: str = "6-31G(2df,p)",
    hosts: tuple[str, ...] = FRONTIER_HOSTS,
    outdir: str = "bde_calc",
) -> BDEReport:
    """Run the full BDE workflow with provenance capture; returns the report."""
    ctx = context if context is not None else CaptureContext.default()
    dft = SimulatedDFT(functional, basis_set)
    parent = parse_smiles(smiles, name="parent")
    n_tasks = 0
    host_cycle = _HostCycle(hosts)

    with WorkflowRun("chemistry_bde_workflow", ctx) as run:
        # 1. conformer search ------------------------------------------------
        ff_energies: dict[int, float] = {}
        conf_task_ids: list[str] = []
        for k in range(n_conformers):
            _generate_conformer(smiles, k, _ctx=ctx, _hostname=host_cycle.next())
            n_tasks += 1
            gm = _geometry_minimization(
                smiles, k, _ctx=ctx, _hostname=host_cycle.next()
            )
            n_tasks += 1
            ff_energies[k] = gm["ff_energy"]
        best = _get_lowest_energy(ff_energies, _ctx=ctx, _hostname=host_cycle.next())
        n_tasks += 1

        # 2. parent structure + DFT ------------------------------------------------
        parent_info = _create_parent_structure(
            smiles, best["conformer_id"], _ctx=ctx, _hostname=host_cycle.next()
        )
        n_tasks += 1
        parent_result = dft.run(parent)
        ctx.clock.sleep(parent_result.simulated_seconds)
        _run_dft(
            "parent",
            parent.n_atoms,
            parent.charge,
            parent.multiplicity,
            parent_result.e0_hartree,
            parent_result.n_scf_iterations,
            parent_result.converged,
            functional,
            basis_set,
            _ctx=ctx,
            _hostname=host_cycle.next(),
        )
        n_tasks += 1
        parent_thermo = thermochemistry(parent, temperature_k)
        _postprocess(
            "parent",
            parent_result.e0_hartree,
            parent_thermo.thermal_enthalpy_hartree,
            parent_thermo.ts_entropy_hartree,
            parent_thermo.zpe_hartree,
            _ctx=ctx,
            _hostname=host_cycle.next(),
        )
        n_tasks += 1

        # 3. per-bond fragmentation + DFT + BDE --------------------------------------
        report = BDEReport(
            smiles=smiles,
            parent_formula=parent.formula(),
            parent_n_atoms=parent.n_atoms,
            parent_charge=parent.charge,
            parent_multiplicity=parent.multiplicity,
            parent_e0_hartree=parent_result.e0_hartree,
            functional=functional,
            basis_set=basis_set,
            temperature_k=temperature_k,
            workflow_id=run.workflow_id,
        )
        for label, bond in enumerate_breakable_bonds(parent):
            frag_info = _break_bond_generate_fragment(
                smiles, label, _ctx=ctx, _hostname=host_cycle.next()
            )
            n_tasks += 1
            f1, f2 = break_bond(parent, bond)
            frag_results: list[dict[str, float]] = []
            for which, frag in ((1, f1), (2, f2)):
                _create_input_for_fragment(
                    frag.to_smiles_like(),
                    label,
                    which,
                    functional,
                    basis_set,
                    _ctx=ctx,
                    _hostname=host_cycle.next(),
                )
                n_tasks += 1
                res = dft.run(frag)
                ctx.clock.sleep(res.simulated_seconds)
                _run_dft(
                    frag.name,
                    frag.n_atoms,
                    frag.charge,
                    frag.multiplicity,
                    res.e0_hartree,
                    res.n_scf_iterations,
                    res.converged,
                    functional,
                    basis_set,
                    _ctx=ctx,
                    _hostname=host_cycle.next(),
                )
                n_tasks += 1
                th = thermochemistry(frag, temperature_k)
                _postprocess(
                    frag.name,
                    res.e0_hartree,
                    th.thermal_enthalpy_hartree,
                    th.ts_entropy_hartree,
                    th.zpe_hartree,
                    _ctx=ctx,
                    _hostname=host_cycle.next(),
                )
                n_tasks += 1
                frag_results.append(
                    {
                        "e0": res.e0_hartree,
                        "h0": th.thermal_enthalpy_hartree,
                        "ts0": th.ts_entropy_hartree,
                    }
                )

            bde = _run_individual_bde(
                parent_result.e0_hartree,
                {
                    "label": label,
                    "fragment1": frag_info["fragment1"],
                    "fragment2": frag_info["fragment2"],
                },
                parent_thermo.thermal_enthalpy_hartree,
                outdir,
                parent_thermo.ts_entropy_hartree,
                parent_thermo.zpe_hartree,
                {
                    "h0": parent_thermo.thermal_enthalpy_hartree,
                    "ts0": parent_thermo.ts_entropy_hartree,
                },
                frag_results,
                _ctx=ctx,
                _hostname=host_cycle.next(),
            )
            n_tasks += 1
            report.bonds.append(
                BondRecord(
                    bond_id=label,
                    bd_energy=bde["bd_energy"],
                    bd_enthalpy=bde["bd_enthalpy"],
                    bd_free_energy=bde["bd_free_energy"],
                    fragment1_smiles=frag_info["fragment1"],
                    fragment2_smiles=frag_info["fragment2"],
                    fragment1_formula=frag_info["fragment1_formula"],
                    fragment2_formula=frag_info["fragment2_formula"],
                    fragment_multiplicity=f1.multiplicity,
                    fragment_charge=f1.charge,
                )
            )
        report.n_tasks = n_tasks
    ctx.flush()
    return report


class _HostCycle:
    """Round-robin placement over the simulated Frontier allocation."""

    def __init__(self, hosts: tuple[str, ...]):
        if not hosts:
            raise ValueError("need at least one host")
        self.hosts = hosts
        self._i = 0

    def next(self) -> str:
        host = self.hosts[self._i % len(self.hosts)]
        self._i += 1
        return host
