"""SMILES parser for simple organic molecules.

Supports the subset the BDE workflow needs: organic-subset atoms
(B-less: C, N, O, S, P, F, Cl, Br, I plus explicit H), bracket atoms
with charges/H-counts (``[OH]``, ``[NH4+]``, ``[O-]``), bond orders
``-``/``=``/``#``, branches with parentheses, and ring-closure digits.
Aromatic (lowercase) notation is intentionally out of scope — the
paper's use case is saturated alcohols and their fragments.

>>> mol = parse_smiles("CCO")   # ethanol
>>> mol.formula()
'C2H6O'
>>> mol.n_atoms
9
"""

from __future__ import annotations

from repro.errors import SmilesParseError
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.periodic import ELEMENTS

__all__ = ["parse_smiles"]

_TWO_LETTER = ("Cl", "Br")
_ORGANIC = ("C", "N", "O", "S", "P", "F", "I", "H")


def parse_smiles(smiles: str, name: str = "") -> Molecule:
    """Parse a SMILES string into a Molecule with implicit H filled in."""
    if not smiles or not smiles.strip():
        raise SmilesParseError("empty SMILES")
    text = smiles.strip()
    mol = Molecule(name or smiles)
    prev_atom: int | None = None
    pending_order = 1
    branch_stack: list[int] = []
    ring_openings: dict[str, tuple[int, int]] = {}
    i = 0

    def attach(idx: int) -> None:
        nonlocal prev_atom, pending_order
        if prev_atom is not None:
            try:
                mol.add_bond(prev_atom, idx, pending_order)
            except Exception as exc:
                raise SmilesParseError(f"{smiles!r}: {exc}") from exc
        prev_atom = idx
        pending_order = 1

    while i < len(text):
        ch = text[i]
        if ch == "(":
            if prev_atom is None:
                raise SmilesParseError(f"{smiles!r}: branch before any atom")
            branch_stack.append(prev_atom)
            i += 1
        elif ch == ")":
            if not branch_stack:
                raise SmilesParseError(f"{smiles!r}: unbalanced ')'")
            prev_atom = branch_stack.pop()
            i += 1
        elif ch == "-":
            pending_order = 1
            i += 1
        elif ch == "=":
            pending_order = 2
            i += 1
        elif ch == "#":
            pending_order = 3
            i += 1
        elif ch.isdigit():
            if prev_atom is None:
                raise SmilesParseError(f"{smiles!r}: ring digit before any atom")
            if ch in ring_openings:
                start, order = ring_openings.pop(ch)
                try:
                    mol.add_bond(start, prev_atom, max(order, pending_order))
                except Exception as exc:
                    raise SmilesParseError(f"{smiles!r}: {exc}") from exc
            else:
                ring_openings[ch] = (prev_atom, pending_order)
            pending_order = 1
            i += 1
        elif ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise SmilesParseError(f"{smiles!r}: unclosed bracket atom")
            idx = _parse_bracket(mol, text[i + 1 : end], smiles)
            attach(idx)
            i = end + 1
        elif text[i : i + 2] in _TWO_LETTER:
            attach(mol.add_atom(text[i : i + 2]))
            i += 2
        elif ch in _ORGANIC:
            attach(mol.add_atom(ch))
            i += 1
        elif ch.isspace():
            i += 1
        else:
            raise SmilesParseError(
                f"{smiles!r}: unsupported character {ch!r} at position {i}"
            )

    if branch_stack:
        raise SmilesParseError(f"{smiles!r}: unbalanced '('")
    if ring_openings:
        raise SmilesParseError(
            f"{smiles!r}: unclosed ring bond(s) {sorted(ring_openings)}"
        )
    mol.fill_hydrogens()
    if mol.n_atoms == 0:
        raise SmilesParseError(f"{smiles!r}: no atoms parsed")
    return mol


def _parse_bracket(mol: Molecule, body: str, smiles: str) -> int:
    """Parse ``[symbol(H<n>)?(+|-)*]`` bracket-atom bodies."""
    if not body:
        raise SmilesParseError(f"{smiles!r}: empty bracket atom")
    j = 0
    symbol = None
    for cand in _TWO_LETTER:
        if body.startswith(cand):
            symbol = cand
            j = len(cand)
            break
    if symbol is None:
        symbol = body[0]
        j = 1
    if symbol not in ELEMENTS:
        raise SmilesParseError(f"{smiles!r}: unknown element {symbol!r}")
    h_count = 0
    charge = 0
    while j < len(body):
        ch = body[j]
        if ch == "H":
            j += 1
            digits = ""
            while j < len(body) and body[j].isdigit():
                digits += body[j]
                j += 1
            h_count = int(digits) if digits else 1
        elif ch == "+":
            charge += 1
            j += 1
        elif ch == "-":
            charge -= 1
            j += 1
        elif ch.isdigit():  # isotope labels etc. are ignored
            j += 1
        else:
            raise SmilesParseError(
                f"{smiles!r}: unsupported bracket content {body!r}"
            )
    idx = mol.add_atom(symbol, formal_charge=charge, suppress_implicit_h=True)
    for _ in range(h_count):
        h = mol.add_atom("H")
        mol.add_bond(idx, h)
    return idx
