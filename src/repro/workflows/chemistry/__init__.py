"""Computational chemistry substrate + the BDE workflow (paper Fig. 5-B).

The paper's real use case runs density functional theory (DFT) on the
Frontier supercomputer to compute bond dissociation energies (BDEs).
Neither Frontier nor a quantum chemistry package is available here, so
this package implements the closest synthetic equivalent exercising the
same code paths (see DESIGN.md):

* :mod:`periodic` / :mod:`molecule` / :mod:`smiles` — molecular graphs
  with implicit hydrogens, built from SMILES input;
* :mod:`fragments` — homolytic bond breaking into radical fragments;
* :mod:`conformers` / :mod:`forcefield` — seeded 3-D embedding and a toy
  force field minimised with scipy;
* :mod:`dft` — a simulated DFT engine (additive atomic/bond energies,
  environment corrections, SCF-iteration model, B3LYP label);
* :mod:`thermo` — rigid-rotor/harmonic-oscillator thermochemistry
  (ZPE, enthalpy, entropy, free energy at 298.15 K);
* :mod:`bde` — the full instrumented workflow: conformer search,
  minimisation, fragment generation, DFT on parent + fragments,
  post-processing into per-bond BDE records shaped like Listing 1.

Energetics are calibrated so ethanol reproduces the paper's reference
points: C–H BDE ≈ 98–101 kcal/mol (Listing 1 shows 98.65), the C–C bond
is the lowest-enthalpy bond (§5.3 Q3), O–H the highest, and the parent
molecule has 9 atoms with 8 breakable bonds (§5.3 Q5: 9 + 8×9 = 81
atoms across parent and all fragments).
"""

from repro.workflows.chemistry.molecule import Atom, Bond, Molecule
from repro.workflows.chemistry.smiles import parse_smiles
from repro.workflows.chemistry.fragments import break_bond, enumerate_breakable_bonds
from repro.workflows.chemistry.dft import DFTResult, SimulatedDFT
from repro.workflows.chemistry.thermo import ThermoResult, thermochemistry
from repro.workflows.chemistry.bde import BDEReport, BondRecord, run_bde_workflow

__all__ = [
    "Atom",
    "Bond",
    "Molecule",
    "parse_smiles",
    "break_bond",
    "enumerate_breakable_bonds",
    "SimulatedDFT",
    "DFTResult",
    "thermochemistry",
    "ThermoResult",
    "run_bde_workflow",
    "BDEReport",
    "BondRecord",
]
