"""Simulated density functional theory engine.

The real workflow runs B3LYP DFT on Frontier; here the electronic energy
is an additive model with the same *analytical structure* the downstream
BDE arithmetic needs:

    E(mol) = Σ_atoms ε(element) − Σ_bonds D(bond type, environment) / HARTREE_KCAL
             + strain(geometry) + ν(seeded noise)

Because fragment energies subtract from the parent's, the per-bond
stabilisations ``D`` *are* the bond dissociation energies (up to thermal
corrections), so the table below is calibrated in kcal/mol against the
paper's reference points: C–H ≈ 98.6 (Listing 1), C–C lowest for
ethanol, O–H highest.  An electronegativity-based environment correction
splits otherwise-identical bonds (methyl vs α C–H), and the seeded noise
(±0.4 kcal/mol) stands in for grid/convergence scatter.

The SCF loop is simulated: iterations shrink the energy geometrically to
its model value, so convergence behaviour (iteration counts, a
convergence flag, simulated wall time proportional to N³) shows up in
provenance just like a real code's would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ChemistryError
from repro.utils.seeding import derive_rng
from repro.workflows.chemistry.forcefield import ForceField
from repro.workflows.chemistry.molecule import Molecule
from repro.workflows.chemistry.periodic import element

__all__ = ["DFTResult", "SimulatedDFT", "HARTREE_KCAL"]

HARTREE_KCAL = 627.5094740  # kcal/mol per hartree

#: Homolytic bond stabilisation in kcal/mol, by sorted element pair and order.
BOND_ENERGIES_KCAL: dict[tuple[str, str, int], float] = {
    ("C", "H", 1): 98.6,
    ("C", "C", 1): 89.5,
    ("C", "O", 1): 94.3,
    ("H", "O", 1): 104.6,
    ("H", "H", 1): 104.2,
    ("C", "N", 1): 83.0,
    ("H", "N", 1): 99.0,
    ("C", "F", 1): 115.0,
    ("C", "Cl", 1): 83.7,
    ("C", "Br", 1): 70.0,
    ("C", "S", 1): 73.0,
    ("H", "S", 1): 87.0,
    ("O", "O", 1): 47.0,
    ("C", "C", 2): 174.0,
    ("C", "O", 2): 179.0,
    ("C", "C", 3): 230.0,
    ("N", "N", 3): 226.0,
}


@dataclass
class DFTResult:
    """Output of one simulated DFT single point / optimisation."""

    molecule_name: str
    formula: str
    e0_hartree: float
    functional: str
    basis_set: str
    charge: int
    multiplicity: int
    n_scf_iterations: int
    converged: bool
    simulated_seconds: float
    homo_ev: float
    lumo_ev: float

    @property
    def e0_kcal(self) -> float:
        return self.e0_hartree * HARTREE_KCAL


class SimulatedDFT:
    """Deterministic stand-in for a DFT code (B3LYP-flavoured)."""

    def __init__(
        self,
        functional: str = "B3LYP",
        basis_set: str = "6-31G(2df,p)",
        *,
        scf_tolerance: float = 1e-8,
        max_scf_iterations: int = 50,
    ):
        self.functional = functional
        self.basis_set = basis_set
        self.scf_tolerance = scf_tolerance
        self.max_scf_iterations = max_scf_iterations

    # -- model energy ----------------------------------------------------------
    def model_energy_hartree(self, mol: Molecule, coords: np.ndarray | None = None) -> float:
        if mol.n_atoms == 0:
            raise ChemistryError("cannot run DFT on an empty molecule")
        e = sum(element(a.symbol).atomic_energy_hartree for a in mol.atoms())
        for bond in mol.bonds():
            e -= self.bond_energy_kcal(mol, bond) / HARTREE_KCAL
        # radical destabilisation: an unpaired electron costs a little
        # (+0.5 kcal/mol; each homolysis creates two radicals, so BDEs sit
        # ~1 kcal/mol above the bare bond table — C-H lands at ~99.6,
        # bracketing the paper's 98.65)
        e += 0.0008 * sum(a.radical_electrons for a in mol.atoms())
        if coords is not None and mol.n_atoms > 1:
            strain = ForceField(mol).energy(np.asarray(coords, dtype=float))
            e += min(strain, 50.0) * 2e-5  # relaxed geometries ~ microhartree
        rng = derive_rng("dft-noise", mol.name, mol.formula(), self.functional)
        e += float(rng.normal(0.0, 0.4)) / HARTREE_KCAL
        return e

    def bond_energy_kcal(self, mol: Molecule, bond) -> float:
        """Bond stabilisation with an electronegativity environment term."""
        a_sym = mol.atom(bond.a).symbol
        b_sym = mol.atom(bond.b).symbol
        key = (*sorted((a_sym, b_sym)), bond.order)
        try:
            base = BOND_ENERGIES_KCAL[key]
        except KeyError:
            raise ChemistryError(
                f"no bond energy parameter for {key}; extend BOND_ENERGIES_KCAL"
            ) from None
        # neighbouring electronegative atoms weaken X-H bonds slightly
        # (alpha C-H in ethanol is ~2 kcal/mol weaker than methyl C-H)
        env = 0.0
        for end in (bond.a, bond.b):
            for nbr in mol.neighbors(end):
                if nbr in (bond.a, bond.b):
                    continue
                chi = element(mol.atom(nbr).symbol).electronegativity
                env -= 0.55 * max(0.0, chi - 2.55)
        return base + env

    # -- SCF simulation -----------------------------------------------------------
    def run(
        self,
        mol: Molecule,
        coords: np.ndarray | None = None,
    ) -> DFTResult:
        """Simulate an SCF to the model energy; returns the full result."""
        target = self.model_energy_hartree(mol, coords)
        rng = derive_rng("scf", mol.name, mol.formula(), mol.multiplicity)
        # start from a superposition-of-atoms guess a few percent high
        guess = target - abs(target) * 0.02
        energy = guess
        n_iter = 0
        converged = False
        # geometric convergence; radicals (open shell) converge slower
        rate = 0.35 if mol.multiplicity == 1 else 0.25
        for n_iter in range(1, self.max_scf_iterations + 1):
            delta = (target - energy) * rate * float(rng.uniform(0.85, 1.15))
            energy += delta
            if abs(target - energy) < self.scf_tolerance:
                converged = True
                break
        energy = target if converged else energy
        # cubic-ish cost scaling: N basis functions ~ atoms
        simulated_seconds = 0.08 * mol.n_atoms**3 / 27.0 + n_iter * 0.02
        homo = -7.5 + float(rng.normal(0, 0.3))
        gap = 6.2 if mol.multiplicity == 1 else 3.1
        return DFTResult(
            molecule_name=mol.name,
            formula=mol.formula(),
            e0_hartree=energy,
            functional=self.functional,
            basis_set=self.basis_set,
            charge=mol.charge,
            multiplicity=mol.multiplicity,
            n_scf_iterations=n_iter,
            converged=converged,
            simulated_seconds=simulated_seconds,
            homo_ev=homo,
            lumo_ev=homo + gap,
        )
