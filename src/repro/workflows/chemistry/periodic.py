"""Element data for the chemistry substrate.

``atomic_energy_hartree`` values are *calibration constants* for the
simulated DFT engine, not physical isolated-atom energies: the total
molecular energy is  Σ atomic energies − Σ bond stabilisations, so only
the bond table (see :mod:`dft`) affects BDEs.  The carbon/oxygen values
are chosen so ethanol's electronic energy lands near the paper's
Listing 1 value (e0 ≈ -155.03 hartree).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Element", "ELEMENTS", "element"]


@dataclass(frozen=True)
class Element:
    symbol: str
    atomic_number: int
    mass_amu: float
    valence: int
    covalent_radius_a: float
    electronegativity: float
    atomic_energy_hartree: float


ELEMENTS: dict[str, Element] = {
    e.symbol: e
    for e in [
        Element("H", 1, 1.008, 1, 0.31, 2.20, -0.500),
        Element("C", 6, 12.011, 4, 0.76, 2.55, -37.845),
        Element("N", 7, 14.007, 3, 0.71, 3.04, -54.585),
        Element("O", 8, 15.999, 2, 0.66, 3.44, -75.065),
        Element("F", 9, 18.998, 1, 0.57, 3.98, -99.735),
        Element("P", 15, 30.974, 3, 1.07, 2.19, -341.260),
        Element("S", 16, 32.06, 2, 1.05, 2.58, -398.110),
        Element("Cl", 17, 35.45, 1, 1.02, 3.16, -460.135),
        Element("Br", 35, 79.904, 1, 1.20, 2.96, -2573.980),
        Element("I", 53, 126.904, 1, 1.39, 2.66, -297.750),
    ]
}


def element(symbol: str) -> Element:
    """Look up an element; raises KeyError with the known set on miss."""
    try:
        return ELEMENTS[symbol]
    except KeyError:
        raise KeyError(
            f"unknown element {symbol!r}; supported: {', '.join(sorted(ELEMENTS))}"
        ) from None
