"""Molecular graphs with implicit hydrogens.

A :class:`Molecule` is an undirected graph of atoms and bonds
(networkx-backed), with the conveniences the BDE workflow needs:
implicit-hydrogen filling by valence, bond enumeration with the paper's
labels (``"C-H_3"``: element pair + 1-based occurrence index), radical
electron bookkeeping (multiplicity), and molecular formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import networkx as nx

from repro.errors import ValenceError
from repro.workflows.chemistry.periodic import element

__all__ = ["Atom", "Bond", "Molecule"]


@dataclass(frozen=True)
class Atom:
    """One atom: element symbol plus bookkeeping."""

    symbol: str
    index: int
    formal_charge: int = 0
    radical_electrons: int = 0

    @property
    def mass(self) -> float:
        return element(self.symbol).mass_amu

    @property
    def valence(self) -> int:
        return element(self.symbol).valence


@dataclass(frozen=True)
class Bond:
    """A bond between two atom indices (order 1/2/3)."""

    a: int
    b: int
    order: int = 1

    def key(self) -> tuple[int, int]:
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)

    def other(self, idx: int) -> int:
        if idx == self.a:
            return self.b
        if idx == self.b:
            return self.a
        raise ValueError(f"atom {idx} not in bond {self.key()}")


class Molecule:
    """Mutable molecular graph."""

    def __init__(self, name: str = ""):
        self.name = name
        self.graph = nx.Graph()
        self._next_index = 0

    # -- construction ----------------------------------------------------------
    def add_atom(
        self,
        symbol: str,
        formal_charge: int = 0,
        radical_electrons: int = 0,
        *,
        suppress_implicit_h: bool = False,
    ) -> int:
        element(symbol)  # validate early
        idx = self._next_index
        self._next_index += 1
        self.graph.add_node(
            idx,
            atom=Atom(symbol, idx, formal_charge, radical_electrons),
            suppress_implicit_h=suppress_implicit_h,
        )
        return idx

    def add_bond(self, a: int, b: int, order: int = 1) -> Bond:
        if a == b:
            raise ValenceError("self-bonds are not allowed")
        for idx in (a, b):
            if idx not in self.graph:
                raise ValenceError(f"unknown atom index {idx}")
        if order not in (1, 2, 3):
            raise ValenceError(f"bond order must be 1..3, got {order}")
        if self.bonded_electrons(a) + order > self.atom(a).valence + abs(
            self.atom(a).formal_charge
        ):
            raise ValenceError(
                f"atom {a} ({self.atom(a).symbol}) would exceed valence"
            )
        if self.bonded_electrons(b) + order > self.atom(b).valence + abs(
            self.atom(b).formal_charge
        ):
            raise ValenceError(
                f"atom {b} ({self.atom(b).symbol}) would exceed valence"
            )
        bond = Bond(a, b, order)
        self.graph.add_edge(a, b, bond=bond)
        return bond

    def fill_hydrogens(self) -> int:
        """Add implicit hydrogens to satisfy each heavy atom's valence.

        Bracket atoms (SMILES ``[...]``) are skipped: per the SMILES
        standard they carry their hydrogen count explicitly.
        """
        added = 0
        for idx in list(self.graph.nodes):
            atom = self.atom(idx)
            if atom.symbol == "H":
                continue
            if self.graph.nodes[idx].get("suppress_implicit_h"):
                continue
            missing = atom.valence - self.bonded_electrons(idx) - atom.radical_electrons
            for _ in range(max(0, missing)):
                h = self.add_atom("H")
                self.add_bond(idx, h)
                added += 1
        return added

    # -- accessors ---------------------------------------------------------------
    def atom(self, idx: int) -> Atom:
        return self.graph.nodes[idx]["atom"]

    def atoms(self) -> Iterator[Atom]:
        for idx in sorted(self.graph.nodes):
            yield self.atom(idx)

    def bonds(self) -> list[Bond]:
        return sorted(
            (data["bond"] for _, _, data in self.graph.edges(data=True)),
            key=lambda b: b.key(),
        )

    def bond_between(self, a: int, b: int) -> Bond | None:
        data = self.graph.get_edge_data(a, b)
        return data["bond"] if data else None

    def neighbors(self, idx: int) -> list[int]:
        return sorted(self.graph.neighbors(idx))

    def bonded_electrons(self, idx: int) -> int:
        return sum(
            data["bond"].order for _, _, data in self.graph.edges(idx, data=True)
        )

    # -- whole-molecule properties ---------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_bonds(self) -> int:
        return self.graph.number_of_edges()

    @property
    def charge(self) -> int:
        return sum(a.formal_charge for a in self.atoms())

    @property
    def multiplicity(self) -> int:
        """Spin multiplicity 2S+1 from unpaired (radical) electrons."""
        return sum(a.radical_electrons for a in self.atoms()) + 1

    @property
    def mass(self) -> float:
        return sum(a.mass for a in self.atoms())

    def formula(self) -> str:
        """Hill-order molecular formula (C first, H second, rest alphabetical)."""
        counts: dict[str, int] = {}
        for a in self.atoms():
            counts[a.symbol] = counts.get(a.symbol, 0) + 1
        parts: list[str] = []
        for sym in ("C", "H"):
            if sym in counts:
                n = counts.pop(sym)
                parts.append(sym if n == 1 else f"{sym}{n}")
        for sym in sorted(counts):
            n = counts[sym]
            parts.append(sym if n == 1 else f"{sym}{n}")
        return "".join(parts)

    def is_connected(self) -> bool:
        if self.n_atoms == 0:
            return True
        return nx.is_connected(self.graph)

    # -- bond labelling (paper style: "C-H_3") ------------------------------------------
    def bond_label(self, bond: Bond) -> str:
        syms = sorted(
            (self.atom(bond.a).symbol, self.atom(bond.b).symbol),
            key=_label_rank,
        )
        pair = f"{syms[0]}-{syms[1]}"
        ordinal = 0
        for other in self.bonds():
            other_syms = sorted(
                (self.atom(other.a).symbol, self.atom(other.b).symbol),
                key=_label_rank,
            )
            if f"{other_syms[0]}-{other_syms[1]}" == pair:
                ordinal += 1
                if other.key() == bond.key():
                    return f"{pair}_{ordinal}"
        raise ValueError(f"bond {bond.key()} not in molecule")

    def labeled_bonds(self) -> list[tuple[str, Bond]]:
        return [(self.bond_label(b), b) for b in self.bonds()]

    # -- copying ------------------------------------------------------------------------
    def copy(self) -> "Molecule":
        out = Molecule(self.name)
        out.graph = self.graph.copy()
        out._next_index = self._next_index
        return out

    def subgraph_molecule(self, nodes: set[int], name: str = "") -> "Molecule":
        """Extract atoms (reindexed 0..n-1) preserving bonds among them."""
        out = Molecule(name)
        mapping: dict[int, int] = {}
        for old in sorted(nodes):
            atom = self.atom(old)
            # fragments keep their exact H count; never re-fill hydrogens
            mapping[old] = out.add_atom(
                atom.symbol,
                atom.formal_charge,
                atom.radical_electrons,
                suppress_implicit_h=True,
            )
        for bond in self.bonds():
            if bond.a in nodes and bond.b in nodes:
                out.add_bond(mapping[bond.a], mapping[bond.b], bond.order)
        return out

    def set_radical(self, idx: int, electrons: int) -> None:
        atom = self.atom(idx)
        self.graph.nodes[idx]["atom"] = replace(atom, radical_electrons=electrons)

    # -- serialisation -------------------------------------------------------------------
    def to_smiles_like(self) -> str:
        """A SMILES-flavoured linear encoding (canonical-ish, H explicit).

        Matches the paper's fragment strings in spirit
        (``"[H]OC([H])([H])[C]([H])[H]"``): radical-bearing atoms are
        bracketed, traversal is DFS from the lowest heavy atom.
        """
        if self.n_atoms == 0:
            return ""
        heavy = [a.index for a in self.atoms() if a.symbol != "H"]
        start = min(heavy) if heavy else 0
        visited: set[int] = set()
        out: list[str] = []

        def emit(idx: int) -> None:
            visited.add(idx)
            atom = self.atom(idx)
            token = (
                f"[{atom.symbol}]" if atom.radical_electrons else atom.symbol
                if atom.symbol != "H"
                else "[H]"
            )
            out.append(token)
            children = [n for n in self.neighbors(idx) if n not in visited]
            for i, child in enumerate(children):
                last = i == len(children) - 1
                if not last:
                    out.append("(")
                emit(child)
                if not last:
                    out.append(")")

        emit(start)
        return "".join(out)

    def __repr__(self) -> str:
        return f"Molecule({self.formula()}, atoms={self.n_atoms}, bonds={self.n_bonds})"


def _label_rank(symbol: str) -> tuple[int, str]:
    # heavy atoms before H, otherwise alphabetical (C-H not H-C)
    return (1 if symbol == "H" else 0, symbol)
