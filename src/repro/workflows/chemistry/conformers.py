"""Conformer generation: seeded 3-D embedding + force-field relaxation.

Mirrors the workflow's "Generate Conformer -> Geometry Minimization ->
Get Lowest Energy" front end (Fig. 5-B): each conformer starts from a
random-but-seeded embedding biased along bonds, is relaxed with the toy
force field, and carries its relaxed energy so the lowest-energy one can
be selected as the parent structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.utils.seeding import derive_rng
from repro.workflows.chemistry.forcefield import ForceField
from repro.workflows.chemistry.molecule import Molecule

__all__ = ["Conformer", "embed_molecule", "generate_conformers", "lowest_energy"]


@dataclass
class Conformer:
    """One relaxed 3-D structure."""

    conformer_id: int
    coords: np.ndarray
    energy: float
    converged: bool


def embed_molecule(mol: Molecule, seed: Any = 0) -> np.ndarray:
    """Rough 3-D embedding: BFS layout along bonds plus seeded jitter."""
    rng = derive_rng("embed", mol.name, mol.formula(), seed)
    order = [a.index for a in mol.atoms()]
    pos_by_index: dict[int, np.ndarray] = {}
    for idx in order:
        placed_nbrs = [n for n in mol.neighbors(idx) if n in pos_by_index]
        if not placed_nbrs:
            pos_by_index[idx] = rng.normal(0.0, 0.1, size=3)
        else:
            anchor = pos_by_index[placed_nbrs[0]]
            direction = rng.normal(0.0, 1.0, size=3)
            direction /= max(np.linalg.norm(direction), 1e-9)
            pos_by_index[idx] = anchor + 1.4 * direction + rng.normal(0, 0.05, 3)
    return np.array([pos_by_index[i] for i in order])


def generate_conformers(
    mol: Molecule, n_conformers: int = 5, seed: Any = 0
) -> list[Conformer]:
    """Embed and relax ``n_conformers`` structures (deterministic per seed)."""
    ff = ForceField(mol)
    out: list[Conformer] = []
    for k in range(n_conformers):
        coords = embed_molecule(mol, seed=(seed, k))
        res = ff.minimize(coords)
        out.append(Conformer(k, res.coords, res.energy, res.converged))
    return out


def lowest_energy(conformers: list[Conformer]) -> Conformer:
    if not conformers:
        raise ValueError("no conformers given")
    return min(conformers, key=lambda c: c.energy)
