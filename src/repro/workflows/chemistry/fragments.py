"""Homolytic bond breaking: molecule -> two radical fragments.

Breaking bond A–B homolytically gives each side one unpaired electron
(a radical site), so fragments of a closed-shell parent are doublets
(multiplicity 2).  The BDE workflow breaks every *single, acyclic* bond
of the parent (breaking a ring bond yields one fragment, not two — the
paper's diagram always produces fragment pairs, so ring bonds are
excluded from enumeration).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ChemistryError
from repro.workflows.chemistry.molecule import Bond, Molecule

__all__ = ["enumerate_breakable_bonds", "break_bond"]


def enumerate_breakable_bonds(mol: Molecule) -> list[tuple[str, Bond]]:
    """All single, non-ring bonds with their labels, in label order.

    For ethanol: 1 C-C, 1 C-O, 5 C-H, 1 O-H = 8 bonds.
    """
    out: list[tuple[str, Bond]] = []
    for label, bond in mol.labeled_bonds():
        if bond.order != 1:
            continue
        g = mol.graph.copy()
        g.remove_edge(bond.a, bond.b)
        if nx.has_path(g, bond.a, bond.b):
            continue  # ring bond: no fragmentation
        out.append((label, bond))
    return out


def break_bond(mol: Molecule, bond: Bond) -> tuple[Molecule, Molecule]:
    """Split ``mol`` across ``bond``; returns the two radical fragments.

    The fragment containing the bond's lower-index atom comes first.
    Each fragment atom that lost the bond gains one radical electron.
    """
    if mol.bond_between(bond.a, bond.b) is None:
        raise ChemistryError(f"bond {bond.key()} not present in molecule")
    g = mol.graph.copy()
    g.remove_edge(bond.a, bond.b)
    components = list(nx.connected_components(g))
    if len(components) != 2:
        raise ChemistryError(
            f"breaking bond {bond.key()} does not split the molecule "
            f"({len(components)} component(s)); is it a ring bond?"
        )
    first_nodes = next(c for c in components if bond.a in c)
    second_nodes = next(c for c in components if bond.b in c)

    label = mol.bond_label(bond)
    frag1 = mol.subgraph_molecule(set(first_nodes), name=f"{mol.name}|{label}|1")
    frag2 = mol.subgraph_molecule(set(second_nodes), name=f"{mol.name}|{label}|2")

    # the atoms that lost the bond become radical sites
    _mark_radical(frag1, mol, first_nodes, bond.a)
    _mark_radical(frag2, mol, second_nodes, bond.b)
    return frag1, frag2


def _mark_radical(
    fragment: Molecule, parent: Molecule, nodes: set[int], parent_idx: int
) -> None:
    # subgraph_molecule reindexes atoms by sorted(parent index)
    sorted_nodes = sorted(nodes)
    new_idx = sorted_nodes.index(parent_idx)
    current = fragment.atom(new_idx).radical_electrons
    fragment.set_radical(new_idx, current + 1)
