"""Additive manufacturing (metal 3-D printing) workflow.

The paper notes (§5.4): "In addition to these two workflows, we are
already using the agent in a third workflow in the additive
manufacturing (metal 3D printing) domain."  This module provides that
third domain as a simulated laser powder-bed fusion (LPBF) build:

    slice_geometry -> generate_scan_paths
        -> per layer: laser_melt -> monitor_melt_pool -> detect_defects
    -> quality_report

The dataflow schema is distinct from both evaluation workflows (melt
pool temperatures, laser power, porosity, defect counts), exercising the
agent's claim of generalising across domains without domain-specific
prompt engineering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.capture.context import CaptureContext, WorkflowRun
from repro.capture.instrumentation import flow_task
from repro.utils.seeding import derive_rng

__all__ = ["BuildReport", "run_lpbf_build"]

MELT_POOL_NOMINAL_K = 1923.0  # stainless steel melt pool, Kelvin


@dataclass
class BuildReport:
    """Outcome of one simulated LPBF build."""

    part_name: str
    n_layers: int
    laser_power_w: float
    defect_layers: list[int] = field(default_factory=list)
    porosity_percent: float = 0.0
    workflow_id: str = ""
    n_tasks: int = 0

    @property
    def passed_qa(self) -> bool:
        return self.porosity_percent < 1.0 and len(self.defect_layers) <= max(
            1, self.n_layers // 20
        )


@flow_task("slice_geometry")
def _slice_geometry(part_name: str, height_mm: float, layer_height_um: float) -> dict[str, Any]:
    n_layers = max(1, int(height_mm * 1000.0 / layer_height_um))
    return {"n_layers": n_layers, "layer_height_um": layer_height_um}


@flow_task("generate_scan_paths")
def _generate_scan_paths(n_layers: int, hatch_spacing_um: float) -> dict[str, Any]:
    return {
        "n_vectors": n_layers * int(2000.0 / hatch_spacing_um),
        "hatch_spacing_um": hatch_spacing_um,
    }


@flow_task("laser_melt")
def _laser_melt(layer: int, laser_power_w: float, scan_speed_mm_s: float, seed: Any) -> dict[str, Any]:
    rng = derive_rng("lpbf-melt", seed, layer)
    # melt pool temperature responds to power/speed with process noise;
    # calibrated so the default recipe (280 W @ 960 mm/s, ED ~0.29 J/mm)
    # sits at the nominal melt pool temperature
    energy_density = laser_power_w / max(scan_speed_mm_s, 1.0)
    temp = MELT_POOL_NOMINAL_K * (0.85 + 0.5143 * energy_density)
    temp += float(rng.normal(0.0, 25.0))
    return {
        "layer": layer,
        "melt_pool_temp_k": round(temp, 1),
        "energy_density": round(energy_density, 4),
    }


@flow_task("monitor_melt_pool")
def _monitor_melt_pool(layer: int, melt_pool_temp_k: float) -> dict[str, Any]:
    deviation = melt_pool_temp_k - MELT_POOL_NOMINAL_K
    return {
        "layer": layer,
        "deviation_k": round(deviation, 1),
        "stable": abs(deviation) < 120.0,
    }


@flow_task("detect_defects")
def _detect_defects(layer: int, deviation_k: float, seed: Any) -> dict[str, Any]:
    rng = derive_rng("lpbf-defect", seed, layer)
    # hot/cold layers risk keyholing / lack-of-fusion porosity
    p_defect = min(0.95, 0.01 + (abs(deviation_k) / 400.0) ** 2)
    has_defect = bool(rng.random() < p_defect)
    return {
        "layer": layer,
        "defect": has_defect,
        "defect_type": (
            ("keyhole" if deviation_k > 0 else "lack_of_fusion") if has_defect else "none"
        ),
    }


@flow_task("quality_report")
def _quality_report(n_layers: int, defect_layers: list[int]) -> dict[str, Any]:
    # each defective layer contributes a fraction of its volume as pores
    porosity = 100.0 * len(defect_layers) / max(n_layers, 1) * 0.15
    return {
        "porosity_percent": round(porosity, 3),
        "n_defect_layers": len(defect_layers),
        "qa_passed": porosity < 1.0,
    }


def run_lpbf_build(
    part_name: str = "bracket-A7",
    context: CaptureContext | None = None,
    *,
    height_mm: float = 2.0,
    layer_height_um: float = 40.0,
    laser_power_w: float = 280.0,
    scan_speed_mm_s: float = 960.0,
    hatch_spacing_um: float = 110.0,
    seed: Any = "lpbf",
    hosts: tuple[str, ...] = ("printer-edge-0", "printer-edge-1"),
) -> BuildReport:
    """Run a simulated LPBF build with provenance capture."""
    ctx = context if context is not None else CaptureContext.default()
    n_tasks = 0
    with WorkflowRun("lpbf_build_workflow", ctx) as run:
        sliced = _slice_geometry(
            part_name, height_mm, layer_height_um, _ctx=ctx, _hostname=hosts[0]
        )
        n_tasks += 1
        _generate_scan_paths(
            sliced["n_layers"], hatch_spacing_um, _ctx=ctx, _hostname=hosts[0]
        )
        n_tasks += 1

        defect_layers: list[int] = []
        for layer in range(sliced["n_layers"]):
            host = hosts[layer % len(hosts)]
            melt = _laser_melt(
                layer, laser_power_w, scan_speed_mm_s, seed,
                _ctx=ctx, _hostname=host,
            )
            monitor = _monitor_melt_pool(
                layer, melt["melt_pool_temp_k"], _ctx=ctx, _hostname=host
            )
            defects = _detect_defects(
                layer, monitor["deviation_k"], seed, _ctx=ctx, _hostname=host
            )
            n_tasks += 3
            if defects["defect"]:
                defect_layers.append(layer)
            ctx.clock.sleep(0.05)

        qa = _quality_report(
            sliced["n_layers"], defect_layers, _ctx=ctx, _hostname=hosts[0]
        )
        n_tasks += 1
        report = BuildReport(
            part_name=part_name,
            n_layers=sliced["n_layers"],
            laser_power_w=laser_power_w,
            defect_layers=defect_layers,
            porosity_percent=qa["porosity_percent"],
            workflow_id=run.workflow_id,
            n_tasks=n_tasks,
        )
    ctx.flush()
    return report
