"""Committed baseline for grandfathered findings.

The baseline is the migration path for turning a rule on against an
existing codebase: findings recorded in it do not fail the gate, but
*new* occurrences of the same rule do.  Entries match findings by
``(rule, path, stripped source line)`` — never by line number — so a
baselined site survives unrelated edits but stops matching the moment
its code changes (at which point it must be fixed or re-baselined,
deliberately, with ``--update-baseline``).

Every entry carries a ``note`` explaining *why* the site is
grandfathered rather than fixed; ``--update-baseline`` preserves notes
for entries that still match.  Stale entries (matching nothing — the
code was fixed or deleted) fail ``--check`` so the baseline can only
shrink by being edited, never by silently rotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

_FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    line: int = 0  # informational only; refreshed by --update-baseline
    note: str = ""
    matched: int = field(default=0, compare=False)

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


class Baseline:
    """Load, match and rewrite the grandfathered-findings file."""

    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = entries if entries is not None else []

    # -- persistence ----------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, encoding="utf-8") as fobj:
                data = json.load(fobj)
        except FileNotFoundError:
            return cls([])
        except (ValueError, OSError) as exc:
            raise ValueError(f"unreadable baseline {path!r}: {exc}") from None
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"baseline {path!r} is not a version-{_FORMAT_VERSION} "
                f"provlint baseline"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                snippet=item["snippet"],
                line=int(item.get("line", 0)),
                note=item.get("note", ""),
            )
            for item in data.get("findings", [])
        ]
        return cls(entries)

    def dump(self, path: str) -> None:
        data = {
            "version": _FORMAT_VERSION,
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "line": e.line,
                    "snippet": e.snippet,
                    "note": e.note,
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.line, e.rule)
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as fobj:
            json.dump(data, fobj, indent=2, sort_keys=False)
            fobj.write("\n")

    # -- matching -------------------------------------------------------------
    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined).

        N entries with the same key absorb at most N findings with that
        key, so duplicating a baselined pattern still fails the gate.
        """
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            entry.matched = 0
            budget[entry.key()] = budget.get(entry.key(), 0) + 1
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            remaining = budget.get(finding.key(), 0)
            if remaining > 0:
                budget[finding.key()] = remaining - 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        matched_per_key: dict[tuple[str, str, str], int] = {}
        for finding in grandfathered:
            matched_per_key[finding.key()] = (
                matched_per_key.get(finding.key(), 0) + 1
            )
        for entry in self.entries:
            take = matched_per_key.get(entry.key(), 0)
            if take > 0:
                entry.matched = 1
                matched_per_key[entry.key()] = take - 1
        return new, grandfathered

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries whose code no longer produces a finding (call after
        :meth:`partition`)."""
        return [e for e in self.entries if not e.matched]

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Baseline for the current findings, keeping existing notes."""
        notes: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                if entry.note:
                    notes.setdefault(entry.key(), entry.note)
        entries = [
            BaselineEntry(
                rule=f.rule,
                path=f.path,
                snippet=f.snippet,
                line=f.line,
                note=notes.get(f.key(), "TODO: justify or fix"),
            )
            for f in sorted(findings, key=Finding.sort_key)
        ]
        return cls(entries)
