"""Rule registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.analysis.rules` imports every rule module, so importing it
once populates the registry.  Each rule carries a stable kebab-case id
(the name used in ``# provlint: disable=<id>`` suppressions and in the
baseline file), a one-line summary, and the historical bug it encodes —
``python -m repro.analysis --list-rules`` prints the catalogue.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]


class Rule:
    """Base class every provlint rule extends.

    Subclasses set :attr:`id`, :attr:`summary` and :attr:`rationale`
    (the historical bug the rule encodes) and implement
    :meth:`check`, yielding :class:`Finding` objects.  ``check``
    receives the whole :class:`~repro.analysis.project.Project` so
    cross-module rules (the lock race detector) and single-file rules
    share one interface.
    """

    id: str = ""
    summary: str = ""
    #: the concrete bug in this repo's history that motivates the rule
    rationale: str = ""

    def check(self, project: "Project") -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers shared by path-scoped rules ----------------------------------
    @staticmethod
    def modules_named(project: "Project", basename: str):
        """Modules whose file name is exactly ``basename`` (rule scoping).

        Scoped rules (WAL discipline, schema discipline) key on the file
        name, not an absolute path, so the fixture suites can exercise
        them on miniature trees.
        """
        for module in project.modules:
            if module.path.rsplit("/", 1)[-1] == basename:
                yield module


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by id (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401 - side effect: registration

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    import repro.analysis.rules  # noqa: F401 - side effect: registration

    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401 - side effect: registration

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None
