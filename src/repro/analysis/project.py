"""Project model: every analysed file, parsed once, shared by all rules.

A :class:`ModuleInfo` pairs a file's AST with everything the rules need
per file — source lines (for snippets), the suppression index, a parent
map (child AST node -> parent, for context-sensitive rules like
falsy-or-default), and the dotted module name used by the call graph.
A :class:`Project` aggregates the modules and lazily builds the
cross-module :class:`~repro.analysis.callgraph.CallGraph`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionIndex, scan_suppressions

__all__ = ["ModuleInfo", "Project", "collect_files"]


def _module_name(relpath: str) -> str:
    """Dotted module name from a posix relpath, rooted past ``src/``."""
    parts = relpath.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  # posix-style path as given on the command line
    name: str  # dotted module name ("repro.messaging.buffer")
    source: str
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionIndex
    #: child node -> parent node, for context-sensitive checks
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(
            path=path,
            name=_module_name(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=scan_suppressions(path, source),
            parents=parents,
        )

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        **detail: Any,
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
            snippet=self.snippet(line),
            detail=dict(detail),
        )


class Project:
    """The full set of modules under analysis plus shared passes."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = sorted(modules, key=lambda m: m.path)
        self.by_name = {m.name: m for m in self.modules}
        self._callgraph = None
        #: files that failed to parse: (path, error) — reported, not fatal
        self.parse_errors: list[tuple[str, str]] = []

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        modules: list[ModuleInfo] = []
        project = cls([])
        for path in collect_files(paths):
            try:
                with open(path, encoding="utf-8") as fobj:
                    source = fobj.read()
                modules.append(ModuleInfo.parse(path, source))
            except (OSError, SyntaxError, ValueError) as exc:
                project.parse_errors.append((path, str(exc)))
        project.modules = sorted(modules, key=lambda m: m.path)
        project.by_name = {m.name: m for m in project.modules}
        return project

    @property
    def callgraph(self):
        """The cross-module call graph, built on first use."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph


def collect_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` paths."""
    out: list[str] = []
    for path in paths:
        norm = path.replace(os.sep, "/").rstrip("/")
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for fname in sorted(filenames):
                    if fname.endswith(".py"):
                        full = os.path.join(dirpath, fname)
                        out.append(full.replace(os.sep, "/"))
        elif norm.endswith(".py"):
            out.append(norm)
    return sorted(dict.fromkeys(out))
