"""provlint CLI: ``python -m repro.analysis [--check] <paths>``.

Modes:

* default — report all new findings; exit 1 if there are any;
* ``--check`` — the CI gate: additionally fail on unused suppressions,
  stale baseline entries and unparseable files, so the suppression and
  baseline machinery can never silently rot;
* ``--update-baseline`` — rewrite the baseline file to grandfather the
  current findings (notes on surviving entries are preserved);
* ``--list-rules`` — print the rule catalogue with the historical bug
  each rule encodes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.registry import all_rules

DEFAULT_BASELINE = "provlint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="provlint",
        description=(
            "project-invariant static analysis: lock discipline, falsy "
            "defaults, exception contracts, schema discipline, WAL writes"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyse"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "strict gate: also fail on unused suppressions, stale "
            "baseline entries and parse errors (the CI mode)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules(out) -> int:
    for rule in all_rules():
        print(f"{rule.id}", file=out)
        print(f"    {rule.summary}", file=out)
        if rule.rationale:
            print(f"    history: {rule.rationale}", file=out)
    return 0


def _report_text(result: AnalysisResult, check: bool, out) -> None:
    for finding in result.findings:
        print(finding.render(), file=out)
    for path, error in result.parse_errors:
        print(f"{path}:0:0: [parse-error] {error}", file=out)
    if check:
        for sup, rule_id in result.unused_suppressions:
            print(
                f"{sup.path}:{sup.comment_line}:0: [unused-suppression] "
                f"'disable={rule_id}' silenced nothing — remove it or fix "
                f"the marker placement",
                file=out,
            )
        for entry in result.stale_baseline:
            print(
                f"{entry.path}:{entry.line}:0: [stale-baseline] "
                f"[{entry.rule}] {entry.snippet!r} no longer fires — "
                f"remove the entry (or run --update-baseline)",
                file=out,
            )
    counts = (
        f"provlint: {len(result.findings)} finding(s), "
        f"{len(result.grandfathered)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    if check:
        counts += (
            f", {len(result.unused_suppressions)} unused suppression(s), "
            f"{len(result.stale_baseline)} stale baseline entr(ies)"
        )
    print(counts, file=out)


def _report_json(result: AnalysisResult, check: bool, out) -> None:
    def finding_dict(finding):
        data = {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "hint": finding.hint,
            "snippet": finding.snippet,
        }
        if finding.detail.get("chain"):
            data["chain"] = list(finding.detail["chain"])
        return data

    data = {
        "findings": [finding_dict(f) for f in result.findings],
        "grandfathered": [finding_dict(f) for f in result.grandfathered],
        "suppressed": [finding_dict(f) for f in result.suppressed],
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
        "unused_suppressions": [
            {"path": s.path, "line": s.comment_line, "rule": r}
            for s, r in result.unused_suppressions
        ],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "snippet": e.snippet}
            for e in result.stale_baseline
        ],
        "ok": result.ok if check else not result.findings,
    }
    json.dump(data, out, indent=2)
    out.write("\n")


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules(out)
    if not args.paths:
        print("provlint: no paths given (try: provlint src)", file=out)
        return 2
    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(f"provlint: {exc}", file=out)
        return 2

    result = run_analysis(args.paths, baseline=baseline)

    if args.update_baseline:
        updated = Baseline.from_findings(
            result.findings + result.grandfathered, previous=baseline
        )
        updated.dump(args.baseline)
        print(
            f"provlint: baseline {args.baseline} rewritten with "
            f"{len(updated.entries)} entr(ies)",
            file=out,
        )
        return 0

    if args.format == "json":
        _report_json(result, args.check, out)
    else:
        _report_text(result, args.check, out)

    if args.check:
        return 0 if result.ok else 1
    return 0 if not (result.findings or result.parse_errors) else 1


if __name__ == "__main__":
    sys.exit(main())
