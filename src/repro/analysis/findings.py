"""Structured lint findings.

A :class:`Finding` is the one currency every layer of the analyser
trades in: rules emit them, suppressions filter them, the baseline
grandfathers them, and the CLI renders them as ``path:line: [rule]
message (hint)``.  The identity used for baseline matching is
deliberately *line-number free* (rule id + path + stripped source
text), so unrelated edits that shift a file do not churn the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path as given to the analyser
    line: int  # 1-based line of the offending node
    message: str
    hint: str = ""  # how to fix (or how to suppress, for intended sites)
    col: int = 0
    #: stripped text of the offending source line (baseline identity)
    snippet: str = ""
    #: extra context, e.g. the call chain for reachability findings
    detail: dict = field(default_factory=dict, compare=False)

    def key(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        chain = self.detail.get("chain")
        if chain:
            text += f"\n    via: {' -> '.join(chain)}"
        return text
