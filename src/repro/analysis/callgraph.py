"""Cross-module, lock-aware call graph.

The lock-discipline rules need more than lexical inspection: the PR 4
broker restructure exists precisely because a blocking call *two helper
frames below* a ``with self._lock:`` body is still a call under the
lock.  This pass builds, for every function and method in the project:

* the calls it makes, with the set of locks held at each call site
  (tracked statement-accurately through nested ``with`` blocks,
  including ``ExitStack.enter_context(lock)`` acquisitions);
* the locks it acquires, again with the locks already held (the edges
  the lock-ordering check runs cycle detection over);
* best-effort resolution of each call to a project function, so
  reachability ("publish is reachable from this lock body via
  ``_flush_locked``") works across modules.

Resolution is deliberately conservative — ``self.method()``, local and
imported functions, ``module.func()``, class constructors, and
``self.attr.method()`` where ``attr``'s class is inferable from
``__init__`` (assignment of a constructor call or an annotated
parameter).  Anything else stays unresolved: the rules then fall back
to *name-category* matching (a call spelled ``.publish_batch(...)`` is
broker traffic no matter what object it lands on), which is what
catches calls through ``StorageBackend``-style protocols.

Lock identity is ``ClassName.attr`` for ``self``-rooted locks (with
subscripts collapsed: every ``self._stripe_locks[i]`` is one identity —
conservative for ordering, exact for "a lock is held").  Locks rooted
in locals or parameters get a per-function identity, which can never
produce a false ordering cycle.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.project import ModuleInfo, Project

__all__ = ["CallGraph", "FunctionInfo", "CallSite", "LockAcquire"]

#: attribute/variable names that denote a lock even without seeing the
#: ``threading.Lock()`` assignment (suffix match on the terminal name)
_LOCKISH_NAME = re.compile(r"(^|_)(lock|locks|dlock|rlock|mutex)e?s?$", re.I)

#: constructors whose result is a lock-like object
_LOCK_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

#: Condition methods that are safe on the lock you are holding (wait
#: releases it; notify never blocks)
_CONDITION_METHODS = {"wait", "wait_for", "notify", "notify_all"}


def dotted(expr: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains (subscripts collapsed), else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dotted(expr.value)
        return f"{base}.{expr.attr}" if base else None
    if isinstance(expr, ast.Subscript):
        return dotted(expr.value)
    if isinstance(expr, ast.Call):
        return None
    return None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # terminal name: "publish_batch"
    dotted: str  # full chain: "self.broker.publish_batch"
    line: int
    #: qualnames of project functions this call may land on
    resolved: tuple[str, ...]
    #: lock identities held when the call executes
    held: tuple[str, ...]


@dataclass
class LockAcquire:
    """One lock acquisition (``with`` item, ``.acquire()``, or
    ``enter_context(lock)``)."""

    lock_id: str
    line: int
    held: tuple[str, ...]  # locks already held at this acquisition
    #: constructor name if the declaration was seen ("Lock", "RLock", ...)
    ctor: str | None = None


@dataclass
class FunctionInfo:
    """Static summary of one function/method."""

    qualname: str  # "repro.messaging.buffer.MessageBuffer._flush_locked"
    module: ModuleInfo
    node: ast.AST
    cls: str | None
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)

    @property
    def short(self) -> str:
        """Readable name for chains: ``ClassName.method`` or ``func``."""
        parts = self.qualname.split(".")
        return ".".join(parts[-2:]) if self.cls else parts[-1]


class _ClassInfo:
    def __init__(self, name: str, module: ModuleInfo):
        self.name = name
        self.module = module
        self.methods: dict[str, str] = {}  # method name -> qualname
        self.lock_attrs: dict[str, str] = {}  # attr -> ctor name
        self.attr_types: dict[str, str] = {}  # attr -> class dotted name


class CallGraph:
    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}  # "module.Class" -> info
        self._effects: dict[str, tuple] = {}

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for module in project.modules:
            graph._index_module(module)
        for module in project.modules:
            graph._analyse_module(module)
        return graph

    def _index_module(self, module: ModuleInfo) -> None:
        """First pass: classes, methods, lock attrs, attribute types."""
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = _ClassInfo(node.name, module)
                qual = f"{module.name}.{node.name}"
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[item.name] = f"{qual}.{item.name}"
                        self._index_self_assignments(info, item)
                self.classes[qual] = info

    def _index_self_assignments(
        self, info: _ClassInfo, func: ast.AST
    ) -> None:
        """Record ``self.x = <lock ctor>()`` and ``self.x = <Class>()`` /
        ``self.x = annotated_param`` so locks and collaborator types
        resolve later."""
        ann: dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is not None:
            for a in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                if a.annotation is not None:
                    name = dotted(a.annotation)
                    if name:
                        ann[a.arg] = name.removesuffix(" | None")
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                ctor = self._lock_ctor_of(value)
                if ctor is not None:
                    info.lock_attrs[target.attr] = ctor
                elif isinstance(value, ast.Call):
                    name = dotted(value.func)
                    if name and name[:1].isupper() or (
                        name and "." in name and name.split(".")[-1][:1].isupper()
                    ):
                        info.attr_types[target.attr] = name
                elif isinstance(value, ast.Name) and value.id in ann:
                    info.attr_types[target.attr] = ann[value.id]

    @staticmethod
    def _lock_ctor_of(value: ast.AST) -> str | None:
        """Ctor name if ``value`` builds a lock (or a list/dict of locks)."""
        if isinstance(value, ast.Call):
            name = dotted(value.func)
            if name in _LOCK_CTORS:
                return name.split(".")[-1]
        if isinstance(value, (ast.ListComp, ast.SetComp)):
            return CallGraph._lock_ctor_of(value.elt)
        if isinstance(value, (ast.List, ast.Tuple)) and value.elts:
            return CallGraph._lock_ctor_of(value.elts[0])
        return None

    # -- second pass: function bodies -----------------------------------------
    def _analyse_module(self, module: ModuleInfo) -> None:
        imports = self._imports_of(module)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyse_function(module, node, None, imports)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._analyse_function(
                            module, item, node.name, imports
                        )

    @staticmethod
    def _imports_of(module: ModuleInfo) -> dict[str, str]:
        """local name -> dotted target ("InProcessBroker" ->
        "repro.messaging.broker.InProcessBroker")."""
        out: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative import: anchor on this package
                    pkg = module.name.split(".")
                    pkg = pkg[: len(pkg) - node.level]
                    base = ".".join(pkg + [node.module])
                for alias in node.names:
                    out[alias.asname or alias.name] = f"{base}.{alias.name}"
        return out

    def _analyse_function(
        self,
        module: ModuleInfo,
        func: ast.AST,
        cls_name: str | None,
        imports: dict[str, str],
    ) -> None:
        qual = (
            f"{module.name}.{cls_name}.{func.name}"
            if cls_name
            else f"{module.name}.{func.name}"
        )
        info = FunctionInfo(qual, module, func, cls_name)
        self.functions[qual] = info
        walker = _BodyWalker(self, info, imports)
        for stmt in func.body:
            walker.visit_stmt(stmt)

    # -- resolution -----------------------------------------------------------
    def resolve_call(
        self,
        call_dotted: str,
        module: ModuleInfo,
        cls_name: str | None,
        imports: dict[str, str],
    ) -> tuple[str, ...]:
        """Project qualnames a call chain may land on (possibly empty)."""
        parts = call_dotted.split(".")
        # self.method() / self.attr.method()
        if parts[0] == "self" and cls_name:
            cls = self.classes.get(f"{module.name}.{cls_name}")
            if cls is None:
                return ()
            if len(parts) == 2:
                target = cls.methods.get(parts[1])
                return (target,) if target else ()
            if len(parts) == 3:
                attr_type = cls.attr_types.get(parts[1])
                if attr_type:
                    target_cls = self._resolve_class(
                        attr_type, module, imports
                    )
                    if target_cls is not None:
                        target = target_cls.methods.get(parts[2])
                        return (target,) if target else ()
            return ()
        # bare name: local function, imported function, or constructor
        if len(parts) == 1:
            name = parts[0]
            target = self.functions.get(f"{module.name}.{name}")
            if target:
                return (target.qualname,)
            cls = self._resolve_class(name, module, imports)
            if cls is not None:
                init = cls.methods.get("__init__")
                return (init,) if init else ()
            imported = imports.get(name)
            if imported and imported in self.functions:
                return (imported,)
            return ()
        # module.func() through an import
        head = imports.get(parts[0])
        if head:
            candidate = ".".join([head] + parts[1:])
            if candidate in self.functions:
                return (candidate,)
            cls = self.classes.get(".".join([head] + parts[1:-1]))
            if cls is not None:
                target = cls.methods.get(parts[-1])
                return (target,) if target else ()
        return ()

    def _resolve_class(
        self, name: str, module: ModuleInfo, imports: dict[str, str]
    ) -> _ClassInfo | None:
        if f"{module.name}.{name}" in self.classes:
            return self.classes[f"{module.name}.{name}"]
        imported = imports.get(name.split(".")[0])
        if imported is None:
            return None
        if "." in name:
            imported = ".".join([imported] + name.split(".")[1:])
        return self.classes.get(imported)

    # -- transitive effects ---------------------------------------------------
    def effects(self, qualname: str, _depth: int = 0, _seen=None):
        """(blocking_callsites, lock_acquires) transitively reachable by
        *calling* ``qualname`` — each paired with the call chain that
        reaches it.  Internal lock regions of callees are irrelevant
        here: their code still runs while the caller's lock is held.
        """
        if qualname in self._effects:
            return self._effects[qualname]
        if _seen is None:
            _seen = set()
        if qualname in _seen or _depth > 8:
            return ((), ())
        _seen = _seen | {qualname}
        info = self.functions.get(qualname)
        if info is None:
            return ((), ())
        calls: list[tuple[CallSite, tuple[str, ...]]] = []
        acquires: list[tuple[LockAcquire, tuple[str, ...]]] = []
        for site in info.calls:
            calls.append((site, (info.short,)))
            for target in site.resolved:
                sub_calls, sub_acquires = self.effects(
                    target, _depth + 1, _seen
                )
                for sub, chain in sub_calls:
                    calls.append((sub, (info.short,) + chain))
                for sub, chain in sub_acquires:
                    acquires.append((sub, (info.short,) + chain))
        for acq in info.acquires:
            acquires.append((acq, (info.short,)))
        result = (tuple(calls), tuple(acquires))
        if _depth == 0:
            self._effects[qualname] = result
        return result


class _BodyWalker:
    """Statement-accurate walk of one function body, tracking held locks."""

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        imports: dict[str, str],
    ):
        self.graph = graph
        self.info = info
        self.imports = imports
        self.held: list[str] = []

    # -- lock identity --------------------------------------------------------
    def lock_id_of(self, expr: ast.AST) -> tuple[str, str | None] | None:
        """(lock identity, ctor) if ``expr`` denotes a lock, else None."""
        chain = dotted(expr)
        if chain is None:
            ctor = CallGraph._lock_ctor_of(expr)
            if ctor is not None:  # e.g. ``with threading.Lock():``
                return (f"{self.info.qualname}:<anonymous>", ctor)
            return None
        parts = chain.split(".")
        cls_info = None
        if parts[0] == "self" and self.info.cls:
            cls_info = self.graph.classes.get(
                f"{self.info.module.name}.{self.info.cls}"
            )
        terminal = parts[-1]
        declared = None
        if cls_info is not None and len(parts) == 2:
            declared = cls_info.lock_attrs.get(terminal)
        if declared is None and not _LOCKISH_NAME.search(terminal):
            return None
        if parts[0] == "self" and self.info.cls:
            ident = ".".join([self.info.cls] + parts[1:])
        elif cls_info is None and len(parts) == 1:
            # a bare local: unique per function, can't create false cycles
            ident = f"{self.info.qualname}:{chain}"
        else:
            # rooted in a local/parameter: scope the identity to the function
            ident = f"{self.info.qualname}:{chain}"
        return (ident, declared)

    # -- statement walk -------------------------------------------------------
    def visit_stmt(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                lock = self.lock_id_of(item.context_expr)
                self.visit_expr(item.context_expr)
                if lock is not None:
                    ident, ctor = lock
                    self.info.acquires.append(
                        LockAcquire(
                            ident,
                            item.context_expr.lineno,
                            tuple(self.held),
                            ctor,
                        )
                    )
                    self.held.append(ident)
                    acquired.append(ident)
            # enter_context(lock) anywhere in this body holds the lock
            # until the with exits: treat the whole body as covered
            for extra in self._enter_context_locks(node):
                self.info.acquires.append(extra)
                self.held.append(extra.lock_id)
                acquired.append(extra.lock_id)
            for stmt in node.body:
                self.visit_stmt(stmt)
            for _ in acquired:
                self.held.pop()
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def does not run here; analyse it as its own
            # function (resolvable by bare name within this module)
            self.graph._analyse_function(
                self.info.module,
                node,
                self.info.cls,
                self.imports,
            )
            return
        if isinstance(node, ast.ClassDef):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.stmt, ast.ExceptHandler, ast.match_case)
            ):
                self.visit_stmt(child)
            else:
                self.visit_expr(child)

    def _enter_context_locks(
        self, with_node: ast.AST
    ) -> list[LockAcquire]:
        out: list[LockAcquire] = []
        for sub in ast.walk(with_node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "enter_context"
                and sub.args
            ):
                lock = self.lock_id_of(sub.args[0])
                if lock is not None:
                    ident, ctor = lock
                    out.append(
                        LockAcquire(
                            ident, sub.lineno, tuple(self.held), ctor
                        )
                    )
        return out

    def visit_expr(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = dotted(sub.func)
            if chain is None:
                continue
            name = chain.split(".")[-1]
            if name == "acquire":
                base = dotted(
                    sub.func.value
                ) if isinstance(sub.func, ast.Attribute) else None
                if base is not None:
                    lock = self.lock_id_of(sub.func.value)
                    if lock is not None:
                        ident, ctor = lock
                        self.info.acquires.append(
                            LockAcquire(
                                ident, sub.lineno, tuple(self.held), ctor
                            )
                        )
                        continue
            resolved = self.graph.resolve_call(
                chain, self.info.module, self.info.cls, self.imports
            )
            self.info.calls.append(
                CallSite(
                    name=name,
                    dotted=chain,
                    line=sub.lineno,
                    resolved=resolved,
                    held=tuple(self.held),
                )
            )
