"""Inline suppressions: ``# provlint: disable=rule-a,rule-b``.

A suppression comment silences the named rules on its own physical
line; a comment that stands alone on a line silences the *next* code
line instead (so long statements can carry the marker above them).
Suppressions are a contract, not an escape hatch: every one must
actually silence a finding, or the ``--check`` gate reports it as
*unused* and fails — stale suppressions are how disabled rules quietly
rot (the same reasoning as the unused-``noqa`` check in flake8).

Put the justification in the same comment, after the rule list::

    self.body = body or b"{}"  # provlint: disable=falsy-or-default - empty body means empty JSON object

Unknown rule ids in a suppression are reported as findings themselves
(a typo must not silently disable nothing).
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

__all__ = ["Suppression", "scan_suppressions", "SuppressionIndex"]

# rule ids are kebab-case, comma-separated; anything after the id list
# (the " - justification" tail) is commentary, not part of the list
_MARKER = re.compile(
    r"provlint:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)


@dataclass
class Suppression:
    """One ``disable=`` marker: where it sits and what it silences."""

    path: str
    comment_line: int  # line the comment physically occupies
    target_line: int  # line whose findings it silences
    rules: tuple[str, ...]
    used: set = field(default_factory=set)  # rule ids that matched a finding


class SuppressionIndex:
    """Per-file lookup: is (line, rule) suppressed, and was it ever used?"""

    def __init__(self, suppressions: list[Suppression]):
        self.suppressions = suppressions
        self._by_line: dict[int, list[Suppression]] = {}
        for sup in suppressions:
            self._by_line.setdefault(sup.target_line, []).append(sup)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True (and marks the suppression used) if ``rule_id`` is
        disabled on ``line``."""
        for sup in self._by_line.get(line, ()):
            if rule_id in sup.rules:
                sup.used.add(rule_id)
                return True
        return False

    def unused(self) -> list[tuple[Suppression, str]]:
        """(suppression, rule id) pairs that silenced nothing."""
        out = []
        for sup in self.suppressions:
            for rule_id in sup.rules:
                if rule_id not in sup.used:
                    out.append((sup, rule_id))
        return out


def scan_suppressions(path: str, source: str) -> SuppressionIndex:
    """Tokenize ``source`` and collect every ``provlint: disable=`` marker."""
    suppressions: list[Suppression] = []
    #: comment-only lines, so a standalone marker can bind forward
    standalone: list[Suppression] = []
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionIndex([])
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _MARKER.search(tok.string)
            if not match:
                continue
            rules = tuple(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            line = tok.start[0]
            sup = Suppression(path, line, line, rules)
            suppressions.append(sup)
            if tok.start[1] == 0 or not tok.line[: tok.start[1]].strip():
                standalone.append(sup)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    # a standalone comment binds to the next line that holds code
    for sup in standalone:
        nxt = sup.comment_line + 1
        while nxt <= sup.comment_line + 5 and nxt not in code_lines:
            nxt += 1
        if nxt in code_lines:
            sup.target_line = nxt
    return SuppressionIndex(suppressions)
