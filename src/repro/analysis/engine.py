"""Analysis pipeline: rules -> suppressions -> baseline -> result.

:func:`run_analysis` is the one entry point both the CLI and the test
suite use.  It loads the project, runs every registered rule, filters
findings through the per-file suppression indexes, partitions the
remainder against the committed baseline, and returns an
:class:`AnalysisResult` that also carries the gate's side conditions:
unused suppressions, stale baseline entries and files that failed to
parse.  ``result.ok`` is exactly the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import all_rules, rule_ids
from repro.analysis.suppressions import Suppression

__all__ = ["AnalysisResult", "run_analysis"]

#: synthetic rule id for malformed suppression comments (a typo in a
#: ``disable=`` list must not silently disable nothing)
BAD_SUPPRESSION = "bad-suppression"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, already triaged."""

    #: gate-failing findings (not suppressed, not baselined)
    findings: list[Finding] = field(default_factory=list)
    #: findings absorbed by the committed baseline
    grandfathered: list[Finding] = field(default_factory=list)
    #: findings silenced by an inline ``provlint: disable=`` marker
    suppressed: list[Finding] = field(default_factory=list)
    #: ``disable=`` entries that silenced nothing — strict-mode failures
    unused_suppressions: list[tuple[Suppression, str]] = field(
        default_factory=list
    )
    #: baseline entries whose code no longer fires — strict-mode failures
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: (path, error) for files the analyser could not parse
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    project: Project | None = field(default=None, repr=False)
    baseline: Baseline | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """The strict (``--check``) gate: nothing new, nothing rotting."""
        return not (
            self.findings
            or self.unused_suppressions
            or self.stale_baseline
            or self.parse_errors
        )


def run_analysis(
    paths: Iterable[str], baseline: Baseline | None = None
) -> AnalysisResult:
    project = Project.load(paths)
    known = set(rule_ids())
    raw: list[Finding] = []
    for rule in all_rules():
        raw.extend(rule.check(project))
    raw.extend(_bad_suppression_findings(project, known))

    by_path = {m.path: m for m in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        module = by_path.get(finding.path)
        if module is not None and module.suppressions.is_suppressed(
            finding.line, finding.rule
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)

    baseline = baseline if baseline is not None else Baseline([])
    new, grandfathered = baseline.partition(kept)

    unused: list[tuple[Suppression, str]] = []
    for module in project.modules:
        for sup, rule_id in module.suppressions.unused():
            # unknown ids are already reported as bad-suppression findings
            if rule_id in known:
                unused.append((sup, rule_id))

    return AnalysisResult(
        findings=new,
        grandfathered=grandfathered,
        suppressed=suppressed,
        unused_suppressions=unused,
        stale_baseline=baseline.stale_entries(),
        parse_errors=list(project.parse_errors),
        project=project,
        baseline=baseline,
    )


def _bad_suppression_findings(
    project: Project, known: set[str]
) -> list[Finding]:
    out: list[Finding] = []
    for module in project.modules:
        for sup in module.suppressions.suppressions:
            for rule_id in sup.rules:
                if rule_id not in known:
                    out.append(
                        Finding(
                            rule=BAD_SUPPRESSION,
                            path=module.path,
                            line=sup.comment_line,
                            message=(
                                f"suppression names unknown rule "
                                f"{rule_id!r} — it disables nothing"
                            ),
                            hint=(
                                "known rules: "
                                + ", ".join(sorted(known))
                            ),
                            snippet=module.snippet(sup.comment_line),
                        )
                    )
    return out
