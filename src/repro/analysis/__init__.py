"""provlint: project-invariant static analysis for this codebase.

Generic linters check style; this package checks the *invariants this
repository's history proved it needs*.  Two real bugs came from the
``x or Default()`` falsy-default idiom (the PR 6 ``QueryCache`` sharing
bug, re-audited across eight sites in PR 7), and the broker /
sharded-store / admission layers all depend on a hand-enforced "never
call out while holding a lock" discipline (PR 4's broker restructure).
Reviewer memory does not scale with the codebase; these rules do.

The framework is ~stdlib-``ast`` only:

* a rule registry (:mod:`repro.analysis.registry`) — each rule is a
  class with a stable id, a rationale, and a ``check(project)`` hook;
* a project model (:mod:`repro.analysis.project`) — every file parsed
  once, shared by all rules;
* a cross-module call graph (:mod:`repro.analysis.callgraph`) — so the
  lock-discipline rule sees a blocking call *reachable through helper
  functions*, not just lexically inside a ``with self._lock:`` body;
* structured findings with ``file:line``, rule id and a fix hint
  (:mod:`repro.analysis.findings`);
* inline suppressions — ``# provlint: disable=RULE`` — with an
  unused-suppression check (:mod:`repro.analysis.suppressions`);
* a committed baseline for grandfathered findings
  (:mod:`repro.analysis.baseline`).

Run it as ``python -m repro.analysis --check src`` (the CI gate) or via
the ``provlint`` console script.  See ``docs/static_analysis.md`` for
the rule catalogue and the historical bug each rule encodes.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, all_rules, get_rule, register

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "run_analysis",
]
