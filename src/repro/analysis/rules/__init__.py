"""Rule modules — importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    exceptions,
    falsy_or,
    locks,
    schemas,
    wal,
)
