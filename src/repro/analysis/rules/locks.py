"""Lock-discipline rules: the race/deadlock detector.

PR 4 restructured :class:`~repro.messaging.broker.InProcessBroker` so
subscriber callbacks run *outside* the broker lock — a slow or
re-entrant consumer must convoy neither publishers nor other
subscriptions, and a callback that calls back into the broker must not
deadlock.  The sharded store, admission controller and LLM server all
follow the same hand-enforced discipline: never call out (publish, I/O,
executor traffic, user callbacks, sleeps) while holding a lock.  These
rules machine-check it through the call graph, so a blocking call three
helper frames below a ``with self._lock:`` body is still caught.

``blocking-call-under-lock``
    A call that can block or re-enter user code is reachable while a
    lock is held.  Blocking is classified by *name category* (a call
    spelled ``.publish_batch(...)`` is broker traffic no matter what
    object it lands on — that is what catches protocol-typed
    collaborators) plus callback-shaped names (``callback``, ``on_*``,
    ``*_hook``).

``lock-ordering``
    Nested lock acquisition is fine *if the order is globally
    consistent*.  This rule builds the held->acquired edge set across
    the whole project (through the call graph) and flags cycles — and
    re-acquisition of a lock known to be a non-reentrant
    ``threading.Lock``, the ``MessageBuffer`` deadlock class.

``storage/durable.py`` is excluded from ``blocking-call-under-lock`` by
design: the WAL write happening under the store lock is the durability
contract (one record, one syscall, ack inside the critical section) and
is policed by ``wal-write-discipline`` instead.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.analysis.callgraph import _CONDITION_METHODS, CallSite, LockAcquire
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register

#: call names that block, do I/O, or hand control to foreign code
BLOCKING_NAMES: dict[str, str] = {
    "publish": "broker publish: delivers to subscriber callbacks",
    "publish_batch": "broker publish: delivers to subscriber callbacks",
    "replay": "broker replay: delivers retained history to a callback",
    "submit": "executor handoff: queues work and can wake workers",
    "result": "future wait: blocks until another thread finishes",
    "shutdown": "executor shutdown: joins worker threads",
    "sleep": "timed sleep",
    "fsync": "disk flush: blocks on storage hardware",
    "fsync_dir": "disk flush: blocks on storage hardware",
    "write": "file/socket write: blocks on the kernel buffer",
    "writelines": "file/socket write: blocks on the kernel buffer",
    "flush": "flush: blocks on the kernel buffer or re-enters a buffer",
    "sendall": "socket send: blocks on the peer",
    "recv": "socket receive: blocks on the peer",
    "connect": "socket connect: blocks on the network",
    "accept": "socket accept: blocks on the network",
    "join": "thread join: blocks until the thread exits",
    "wait": "blocking wait",
    "wait_for": "blocking wait",
}

#: call targets that re-enter user code by shape of their name
_CALLBACK_NAME = re.compile(r"(^|_)(callback|hook)s?$|^on_[a-z0-9_]+$")

#: files whose under-lock writes are the *point* (policed by
#: wal-write-discipline instead of this rule)
_BLOCKING_EXEMPT_FILES = ("durable.py",)

_BLOCK_HINT = (
    "restructure so the lock covers only bookkeeping: snapshot state "
    "under the lock, release it, then call out (see InProcessBroker's "
    "enqueue-then-drain split, PR 4)"
)


def _is_condition_idiom(site: CallSite) -> bool:
    """``with self._cond: self._cond.wait()`` — wait releases the lock,
    notify never blocks: the designed Condition usage, not a violation."""
    if site.name not in _CONDITION_METHODS:
        return False
    base = site.dotted.rsplit(".", 1)[0]
    return any(held.endswith(base.replace("self.", ".")) for held in site.held)


def _blocking_reason(site: CallSite) -> str | None:
    reason = BLOCKING_NAMES.get(site.name)
    if reason is not None:
        return reason
    if _CALLBACK_NAME.search(site.name):
        return "callback invocation: re-enters arbitrary user code"
    return None


@register
class BlockingCallUnderLockRule(Rule):
    id = "blocking-call-under-lock"
    summary = "a blocking/re-entrant call is reachable while a lock is held"
    rationale = (
        "PR 4: broker delivery had to move outside the lock so slow or "
        "re-entrant subscribers cannot convoy publishers or deadlock"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = project.callgraph
        for qualname, info in sorted(graph.functions.items()):
            fname = info.module.path.rsplit("/", 1)[-1]
            if fname in _BLOCKING_EXEMPT_FILES:
                continue
            for site in info.calls:
                if not site.held:
                    continue
                # direct blocking call inside the lock body
                reason = _blocking_reason(site)
                if reason is not None and not _is_condition_idiom(site):
                    yield info.module.finding(
                        self.id,
                        _At(site.line),
                        f"'{site.dotted}(...)' while holding "
                        f"{_fmt_locks(site.held)} — {reason}",
                        hint=_BLOCK_HINT,
                        chain=[info.short],
                    )
                    continue
                # blocking call reachable through resolved callees
                for target in site.resolved:
                    sub_calls, _ = graph.effects(target)
                    for sub, chain in sub_calls:
                        sub_reason = _blocking_reason(sub)
                        if sub_reason is None or _is_condition_idiom(sub):
                            continue
                        yield info.module.finding(
                            self.id,
                            _At(site.line),
                            f"'{sub.dotted}(...)' (via '{site.dotted}') is "
                            f"reachable while holding "
                            f"{_fmt_locks(site.held)} — {sub_reason}",
                            hint=_BLOCK_HINT,
                            chain=[info.short, *chain, sub.dotted],
                        )
                        break  # one finding per reachable callee is enough
                    else:
                        continue
                    break


@register
class LockOrderingRule(Rule):
    id = "lock-ordering"
    summary = "inconsistent lock acquisition order, or non-reentrant re-acquire"
    rationale = (
        "the sharded store holds stripe -> shard -> stray locks in one "
        "global order (PR 3); an edge against that order is a deadlock"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = project.callgraph
        # edge (held -> acquired) -> first witnessing (module, line, chain)
        edges: dict[tuple[str, str], tuple] = {}
        ctor_of: dict[str, str] = {}
        for qualname, info in sorted(graph.functions.items()):
            for acq in info.acquires:
                if acq.ctor:
                    ctor_of.setdefault(acq.lock_id, acq.ctor)
                for held in acq.held:
                    edges.setdefault(
                        (held, acq.lock_id),
                        (info.module, acq.line, [info.short]),
                    )
            # locks acquired inside callees while this function holds one
            for site in info.calls:
                if not site.held:
                    continue
                for target in site.resolved:
                    _, sub_acquires = graph.effects(target)
                    for sub, chain in sub_acquires:
                        if sub.ctor:
                            ctor_of.setdefault(sub.lock_id, sub.ctor)
                        for held in site.held:
                            edges.setdefault(
                                (held, sub.lock_id),
                                (
                                    info.module,
                                    site.line,
                                    [info.short, *chain],
                                ),
                            )
        # self-edges: re-acquiring a known non-reentrant lock deadlocks
        reported: set[tuple[str, str]] = set()
        for (held, acquired), (module, line, chain) in sorted(
            edges.items(), key=lambda kv: (kv[1][0].path, kv[1][1])
        ):
            if held == acquired and ctor_of.get(held) == "Lock":
                if (held, acquired) in reported:
                    continue
                reported.add((held, acquired))
                yield module.finding(
                    self.id,
                    _At(line),
                    f"re-acquisition of non-reentrant threading.Lock "
                    f"'{held}' while already held — guaranteed deadlock",
                    hint=(
                        "split the locked section so the re-entrant path "
                        "runs outside the lock, or make the lock an RLock "
                        "if re-entry is genuinely intended"
                    ),
                    chain=chain,
                )
        # cycles among distinct locks
        adjacency: dict[str, set[str]] = {}
        for held, acquired in edges:
            if held != acquired:
                adjacency.setdefault(held, set()).add(acquired)
        for cycle in _find_cycles(adjacency):
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            module, line, chain = edges[first_edge]
            if (cycle[0], cycle[-1]) in reported:
                continue
            reported.add((cycle[0], cycle[-1]))
            pretty = " -> ".join(list(cycle) + [cycle[0]])
            yield module.finding(
                self.id,
                _At(line),
                f"lock-ordering cycle: {pretty} — two threads entering "
                f"from different ends deadlock",
                hint=(
                    "pick one global acquisition order (the sharded store "
                    "sorts shard indices before taking their locks) and "
                    "restructure the path that violates it"
                ),
                chain=chain,
            )


class _At:
    """Minimal location shim for :meth:`ModuleInfo.finding`."""

    def __init__(self, line: int, col: int = 0):
        self.lineno = line
        self.col_offset = col


def _fmt_locks(held: tuple[str, ...]) -> str:
    pretty = ", ".join(f"'{_short_lock(h)}'" for h in held)
    return f"lock {pretty}" if len(held) == 1 else f"locks {pretty}"


def _short_lock(lock_id: str) -> str:
    # function-scoped ids look like "pkg.mod.Cls.fn:obj._lock" — show
    # only the readable tail
    return lock_id.rsplit(":", 1)[-1]


def _find_cycles(adjacency: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Small deterministic cycle enumeration (one witness per cycle set)."""
    cycles: list[tuple[str, ...]] = []
    seen_sets: set[frozenset] = set()

    def dfs(start: str, node: str, path: list[str], visited: set[str]):
        for nxt in sorted(adjacency.get(node, ())):
            if nxt == start and len(path) > 0:
                key = frozenset(path + [start])
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(tuple([start] + path))
            elif nxt not in visited and len(path) < 6:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in sorted(adjacency):
        dfs(start, start, [], {start})
    return cycles
