"""schema-discipline: wire dataclasses stay frozen, paired, immutable.

The gateway's schema layer (PR 5) promises ``from_json(to_json(x)) ==
x`` for every wire type, canonical bytes, and hashable requests (the
query cache keys on them).  That only holds while every schema
dataclass in ``api/schemas.py``:

* is ``@dataclass(frozen=True)`` — a mutable schema instance breaks
  hashing and lets a handler mutate a request mid-flight;
* has no mutable literal default (``= {}`` / ``= []`` is shared across
  *all* instances; use ``field(default_factory=...)``);
* keeps its serialisation pair complete — a class with a ``_jsonable``
  (the ``to_json`` half) must be registered in ``SCHEMA_TYPES`` and
  every registered class must define ``_parse`` (the ``from_json``
  half), or payloads serialise but can never be read back.

Scoped to files named ``schemas.py`` (the wire-schema module and its
test fixtures).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import Rule, register

_MUTABLE_DEFAULTS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp)


def _dataclass_decorator(cls: ast.ClassDef) -> ast.AST | None:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", None)
        )
        if name == "dataclass":
            return dec
    return None


def _is_frozen(dec: ast.AST) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        item.name
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _registered_classes(module: ModuleInfo) -> set[str] | None:
    """Class names registered in the SCHEMA_TYPES dispatch table."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "SCHEMA_TYPES" in targets and isinstance(node.value, ast.Dict):
                names = set()
                for value in node.value.values:
                    if isinstance(value, ast.Name):
                        names.add(value.id)
                return names
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "SCHEMA_TYPES"
                and isinstance(node.value, ast.Dict)
            ):
                return {
                    v.id
                    for v in node.value.values
                    if isinstance(v, ast.Name)
                }
    return None


@register
class SchemaDisciplineRule(Rule):
    id = "schema-discipline"
    summary = "wire dataclasses: frozen, no mutable defaults, parse/json pairs"
    rationale = (
        "PR 5: round-trip exactness and cache-key hashability depend on "
        "frozen, fully-paired schema dataclasses"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in self.modules_named(project, "schemas.py"):
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        registered = _registered_classes(module)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            dec = _dataclass_decorator(node)
            if dec is None:
                continue
            if not _is_frozen(dec):
                yield module.finding(
                    self.id,
                    node,
                    f"schema dataclass {node.name} is not frozen — wire "
                    f"payloads must be immutable and hashable",
                    hint="@dataclass(frozen=True)",
                )
            yield from self._check_defaults(module, node)
            methods = _method_names(node)
            if registered is not None:
                if "_jsonable" in methods and node.name not in registered:
                    yield module.finding(
                        self.id,
                        node,
                        f"{node.name} defines _jsonable (the to_json half) "
                        f"but is not registered in SCHEMA_TYPES — it can "
                        f"serialise but from_json can never dispatch to it",
                        hint="register the class in SCHEMA_TYPES",
                    )
                if node.name in registered and "_parse" not in methods:
                    yield module.finding(
                        self.id,
                        node,
                        f"{node.name} is registered in SCHEMA_TYPES but has "
                        f"no _parse classmethod — its to_json has no "
                        f"from_json partner",
                        hint="add a _parse(cls, data) classmethod",
                    )

    def _check_defaults(self, module: ModuleInfo, cls: ast.ClassDef):
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            if isinstance(stmt.value, _MUTABLE_DEFAULTS):
                target = getattr(stmt.target, "id", "?")
                yield module.finding(
                    self.id,
                    stmt,
                    f"field {target!r} has a mutable literal default — the "
                    f"one instance is shared by every payload",
                    hint="use dataclasses.field(default_factory=...)",
                )
