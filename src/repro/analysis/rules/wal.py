"""wal-write-discipline: one record, one syscall, in the append path.

The durable store's crash contract (PR 6) is that the bytes a crash can
tear are exactly the bytes of one framed record: the active WAL segment
is opened **unbuffered** and every logical record is emitted as **one
``write()`` call** of one pre-framed buffer.  Two writes per record (or
a buffered file object) create a window where a crash persists half a
record *ahead of* the frame length that says it is whole — recovery
would then truncate a record the caller was told was acked, violating
the 111-point crash-injection matrix's invariant.

Checks, scoped to files named ``durable.py``:

* any function with more than one ``write()`` call on the active
  segment handle (``*_seg_file.write``), or such a write inside a
  ``for``/``while`` loop — multi-write record emission;
* ``.writelines(...)`` anywhere — inherently multi-buffer;
* ``open(path, "ab"/"wb", ...)`` without ``buffering=0`` — a buffered
  handle turns "ack means bytes reached the file" into "ack means bytes
  reached a Python buffer".
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import Rule, register

#: attribute names that denote the active WAL segment handle
_SEGMENT_ATTR_SUFFIX = "_seg_file"


def _is_segment_write(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "write"
        and isinstance(node.func.value, ast.Attribute)
        and node.func.value.attr.endswith(_SEGMENT_ATTR_SUFFIX)
    )


def _loop_ancestors(node: ast.AST, parents: dict) -> bool:
    cur = parents.get(node)
    while cur is not None and not isinstance(
        cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(cur, (ast.For, ast.While, ast.AsyncFor)):
            return True
        cur = parents.get(cur)
    return False


@register
class WalWriteDisciplineRule(Rule):
    id = "wal-write-discipline"
    summary = "WAL appends: one record, one unbuffered write syscall"
    rationale = (
        "PR 6: the crash-injection matrix's recovery guarantee assumes a "
        "torn write can only tear one framed record"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in self.modules_named(project, "durable.py"):
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_open(module, node)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "writelines"
                ):
                    yield module.finding(
                        self.id,
                        node,
                        "writelines() emits multiple buffers — a crash can "
                        "tear between them, ahead of the frame header",
                        hint="frame the record and emit one write() call",
                    )

    def _check_function(self, module: ModuleInfo, func: ast.AST):
        writes = [
            node
            for node in ast.walk(func)
            if isinstance(node, ast.Call) and _is_segment_write(node)
        ]
        if len(writes) > 1:
            yield module.finding(
                self.id,
                writes[1],
                f"{func.name}() writes the active WAL segment "
                f"{len(writes)} times — a crash between the writes "
                f"persists a torn record the caller saw acked",
                hint="build the full framed record, then write once",
            )
        for node in writes:
            if _loop_ancestors(node, module.parents):
                yield module.finding(
                    self.id,
                    node,
                    f"{func.name}() writes the WAL segment inside a loop — "
                    f"multi-write record emission",
                    hint="accumulate into one framed buffer, write once",
                )

    def _check_open(self, module: ModuleInfo, node: ast.Call):
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if name != "open" or len(node.args) < 2:
            return
        mode = node.args[1]
        if not (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and "b" in mode.value
            and any(m in mode.value for m in ("a", "w"))
        ):
            return
        buffering = None
        if len(node.args) >= 3:
            buffering = node.args[2]
        for kw in node.keywords:
            if kw.arg == "buffering":
                buffering = kw.value
        if not (
            isinstance(buffering, ast.Constant) and buffering.value == 0
        ):
            yield module.finding(
                self.id,
                node,
                f"binary {mode.value!r} open without buffering=0 — 'acked' "
                f"bytes would sit in a Python buffer a crash erases",
                hint="open(path, mode, buffering=0)",
            )
