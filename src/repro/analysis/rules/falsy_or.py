"""falsy-or-default: ``x or Default()`` silently replaces falsy values.

The PR 6 bug: ``self.cache = cache or QueryCache()`` discarded an
*explicitly shared, currently empty* ``QueryCache`` and silently built
a private one — the gateway and the agent stopped sharing cache
entries, and nothing failed loudly.  PR 7 re-audited eight more sites.
The pattern is only correct when every falsy value of ``x`` (empty
container, empty string, zero, a collaborator whose ``__bool__`` says
idle) genuinely means "use the default" — which is almost never what a
dependency-injection default intends.

Flagged shapes (outside boolean-test positions, where ``or`` is genuine
logic):

* ``<parameter> or <call>``  — the injected-collaborator bug class;
* ``<parameter> or <literal>`` — collapses legitimate falsy arguments;
* ``<attr chain> or <call or literal>`` — same bug on stored state.

Fix with an explicit None test::

    cache if cache is not None else QueryCache()

or, where collapsing falsy *is* the contract (an empty request body
means an empty JSON object), keep the ``or`` and suppress with a
justification::

    body = request.body or b"{}"  # provlint: disable=falsy-or-default - empty body == empty object
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import Rule, register

#: right-hand shapes that read as "the default": construct/compute a
#: fresh value, or a literal
_DEFAULT_RHS = (
    ast.Call,
    ast.Dict,
    ast.List,
    ast.Tuple,
    ast.Set,
    ast.JoinedStr,
)

_HINT = (
    "use 'x if x is not None else <default>' so falsy-but-valid values "
    "survive; if collapsing falsy is the contract, suppress with "
    "'# provlint: disable=falsy-or-default - <why>'"
)


def _parameters(func: ast.AST) -> set[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested defs (which get
    their own pass, with their own parameter set)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _in_test_position(node: ast.AST, parents: dict) -> bool:
    """True when the ``or`` feeds a boolean context (genuine logic)."""
    parent = parents.get(node)
    if isinstance(parent, (ast.If, ast.While)) and parent.test is node:
        return True
    if isinstance(parent, ast.IfExp) and parent.test is node:
        return True
    if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.Not):
        return True
    if isinstance(parent, ast.BoolOp):
        return True
    if isinstance(parent, ast.Assert):
        return True
    if isinstance(parent, ast.comprehension):  # an ``if`` filter clause
        return node in parent.ifs
    return False


@register
class FalsyOrDefaultRule(Rule):
    id = "falsy-or-default"
    summary = "'x or Default()' replaces legitimately-falsy values"
    rationale = (
        "PR 6: 'cache or QueryCache()' silently discarded a shared empty "
        "cache in QueryAPI/AgentService; PR 7 re-audited 8 more sites"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _parameters(func)
            for node in _walk_own_body(func):
                if not (
                    isinstance(node, ast.BoolOp)
                    and isinstance(node.op, ast.Or)
                    and len(node.values) == 2
                ):
                    continue
                left, right = node.values
                finding = self._classify(module, func, params, node, left, right)
                if finding is not None:
                    yield finding

    def _classify(
        self,
        module: ModuleInfo,
        func: ast.AST,
        params: set[str],
        node: ast.BoolOp,
        left: ast.AST,
        right: ast.AST,
    ) -> Finding | None:
        if _in_test_position(node, module.parents):
            return None
        is_param = isinstance(left, ast.Name) and left.id in params
        is_attr = isinstance(left, ast.Attribute)
        if not (is_param or is_attr):
            return None
        if isinstance(right, ast.Constant):
            # ``x or None`` normalises falsy to None — not a default
            # substitution, and the None survives later ``is None`` checks
            if right.value is None:
                return None
        elif not isinstance(right, _DEFAULT_RHS):
            return None
        left_src = ast.unparse(left)
        right_src = ast.unparse(right)
        kind = "parameter" if is_param else "attribute"
        return module.finding(
            self.id,
            node,
            f"'{left_src} or {right_src}' replaces every falsy value of "
            f"{kind} '{left_src}' with the default, not just None "
            f"(the PR 6 QueryCache-sharing bug class)",
            hint=_HINT,
        )
